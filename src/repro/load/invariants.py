"""Post-phase invariant checks: the properties churn must never break.

After every phase the engine hands the checker its members and the
accounting window of the rekey it just performed.  Four families of
invariants, straight from the paper's claims:

* **zero-unicast rekey** -- inside the rekey window, everything a
  publisher sent was a single accounted multicast per publish; no
  targeted frame, no inbound registration traffic rode along.
* **derivation** -- every current member holds plaintexts exactly
  matching the ground-truth policy evaluation of its (engine-known)
  attribute values: entitled segments decrypt, nothing else does.
* **lockout** -- a revoked member's latest broadcast decrypts to
  nothing, and its pseudonym is gone from the publisher's CSS table.
* **bucket layout** (bucketed strategy only) -- the broadcast's
  :class:`~repro.gkm.buckets.BucketedHeader` matches the layout the
  publisher's *current* table implies: the right number of buckets of
  the right capacity, every qualified row deriving the configuration
  key from exactly its row-order bucket, and no foreign bucket (e.g. a
  stale pre-revocation one) deriving it.
* **exactly-once delivery** -- every live member received each broadcast
  package exactly once (a relay tree that looped or replayed would
  over-deliver; one that dropped would under-deliver).
* **per-hop relay invariants** (relay topology only) -- across the rekey
  window every relay forwarded each multicast exactly once and routed
  **zero unicast frames downward**: the distribution tier adds no
  per-member traffic to a rekey at any depth, which is the paper's
  O(l'N)-broadcast claim surviving federation.

Violations raise :class:`repro.errors.InvariantViolation` with enough
context to debug the phase; they are never warnings.
"""

from __future__ import annotations

from typing import Dict, Sequence

from repro.errors import InvariantViolation
from repro.gkm.acv import AcvBgkm
from repro.gkm.buckets import BucketedHeader
from repro.policy.evaluate import satisfies_policy
from repro.system.transport import BROADCAST, Message

__all__ = [
    "REGISTRATION_KINDS",
    "check_bucket_layout",
    "check_bucketed_package",
    "check_exact_delivery",
    "check_members",
    "check_rekey_window",
    "check_relay_hops",
    "expected_plaintexts",
]

#: Accounting kinds that belong to the registration protocol: none of
#: them may appear inside a rekey window (rekeying must not trigger any
#: per-subscriber exchange) nor during a flap recovery (durable CSSs are
#: completed registrations).
REGISTRATION_KINDS = frozenset(
    {
        "token+condition-request",
        "registration-ack",
        "ocbe-bit-commitments",
        "ocbe-envelope",
    }
)


def check_rekey_window(
    records: Sequence[Message],
    publisher_names: Sequence[str],
    expected_broadcasts: int,
    context: str,
) -> None:
    """Assert the paper's rekey shape over one accounting window."""
    broadcasts = 0
    for record in records:
        if record.kind in REGISTRATION_KINDS:
            raise InvariantViolation(
                "%s: rekey window carries registration traffic "
                "(%s from %r to %r)"
                % (context, record.kind, record.sender, record.receiver)
            )
        if record.sender in publisher_names:
            if record.receiver != BROADCAST:
                raise InvariantViolation(
                    "%s: publisher %r sent a unicast %s frame to %r during "
                    "a rekey (must be broadcast-only)"
                    % (context, record.sender, record.kind, record.receiver)
                )
            broadcasts += 1
        elif record.receiver in publisher_names:
            raise InvariantViolation(
                "%s: publisher %r received %d bytes (%s from %r) during a "
                "rekey; the window must be outbound-multicast only"
                % (context, record.receiver, record.size, record.kind,
                   record.sender)
            )
    if broadcasts != expected_broadcasts:
        raise InvariantViolation(
            "%s: expected %d accounted broadcast transmissions in the rekey "
            "window, saw %d"
            % (context, expected_broadcasts, broadcasts)
        )


def expected_plaintexts(publisher_spec, attributes, document_spec) -> Dict[str, bytes]:
    """Ground-truth entitlement: the segments of ``document_spec`` that
    ``attributes`` unlock under ``publisher_spec``'s policies."""
    entitled: Dict[str, bytes] = {}
    content = {seg: text.encode("utf-8") for seg, text in document_spec.segments}
    for policy_spec in publisher_spec.policies:
        if policy_spec.document != document_spec.name:
            continue
        if satisfies_policy(attributes, policy_spec.parse()):
            for segment in policy_spec.segments:
                entitled[segment] = content[segment]
    return entitled


def check_members(engine, context: str) -> None:
    """Derivation + lockout for every member that has a live client."""
    for member in engine.members.values():
        if not member.alive:
            continue  # killed mid-flap: checked again after recovery
        service = engine.services[member.publisher]
        publisher_spec = engine.publisher_spec(member.publisher)
        for document_spec in publisher_spec.documents:
            actual = member.client.documents.get(document_spec.name)
            if actual is None:
                raise InvariantViolation(
                    "%s: member %s never received a broadcast of %r"
                    % (context, member.user, document_spec.name)
                )
            if member.revoked:
                if actual:
                    raise InvariantViolation(
                        "%s: REVOKED member %s still derives %s of %r"
                        % (context, member.user, sorted(actual),
                           document_spec.name)
                    )
                continue
            expected = expected_plaintexts(
                publisher_spec, member.attributes, document_spec
            )
            if actual != expected:
                raise InvariantViolation(
                    "%s: member %s derived %s of %r, entitled to %s"
                    % (context, member.user, sorted(actual),
                       document_spec.name, sorted(expected))
                )
        if member.revoked and member.nym in service.publisher.table.pseudonyms():
            raise InvariantViolation(
                "%s: revoked member %s still has CSS table rows"
                % (context, member.user)
            )


def check_exact_delivery(engine, context: str) -> None:
    """Every live member holds each owed broadcast package exactly once.

    The engine settles on ``>=`` (packages arrived); equality on top of
    that is the duplicate detector -- a relay tree that replayed a
    multicast, or routed it to a member along two paths, shows up here
    as an over-count even though every plaintext still decrypts.
    """
    for member in engine.alive_members():
        received = len(member.client.packages)
        if received != member.expected_packages:
            raise InvariantViolation(
                "%s: member %s received %d broadcast packages, owed exactly "
                "%d (%s)"
                % (context, member.user, received, member.expected_packages,
                   "duplicates" if received > member.expected_packages
                   else "losses")
            )


def check_relay_hops(engine, context: str) -> None:
    """Per-hop invariants over the last (globally quiet) rekey window.

    ``engine.last_rekey_relay_stats`` maps relay name to its local
    ``(before, after)`` :class:`~repro.net.protocol.StatsReply` samples
    bracketing the window.  Asserted per relay, per window:

    * ``unicast_down`` unchanged -- a rekey pushes **zero** targeted
      frames through any hop (join/flap phases legitimately route
      unicast; the rekey window itself never does);
    * ``broadcasts_down`` grew by exactly the window's publish count --
      each multicast crossed the hop exactly once;
    * ``dupes_dropped``, ``bounced_up`` and ``slow_consumer_disconnects``
      unchanged -- a healthy tree neither replays, misroutes, nor sheds
      load during a rekey.
    """
    samples = getattr(engine, "last_rekey_relay_stats", {})
    expected = engine.last_rekey_broadcasts
    for name, (before, after) in samples.items():
        deltas = {
            counter: after.counter(counter) - before.counter(counter)
            for counter in (
                "unicast_down", "broadcasts_down", "dupes_dropped",
                "bounced_up", "slow_consumer_disconnects",
            )
        }
        if deltas["unicast_down"] != 0:
            raise InvariantViolation(
                "%s: relay %r routed %d unicast frames downward during a "
                "rekey window; rekeying must be broadcast-only at every hop"
                % (context, name, deltas["unicast_down"])
            )
        if deltas["broadcasts_down"] != expected:
            raise InvariantViolation(
                "%s: relay %r accepted %d multicasts during a rekey window "
                "of %d publishes (each must cross each hop exactly once)"
                % (context, name, deltas["broadcasts_down"], expected)
            )
        for counter in ("dupes_dropped", "bounced_up",
                        "slow_consumer_disconnects"):
            if deltas[counter] != 0:
                raise InvariantViolation(
                    "%s: relay %r counted %d %s during a rekey window"
                    % (context, name, deltas[counter], counter)
                )


def check_bucketed_package(publisher, package, context: str) -> None:
    """Bucket-layout invariants for one broadcast of a bucketed publisher.

    The layout is *recomputed* from the publisher's current CSS table
    (via the condition-key lists each header carries) and compared
    against the broadcast header, so a header that kept a stale
    pre-revocation bucket, dropped one, or filed a member's row in the
    wrong bucket is caught even though every bucket looks like a valid
    ACV in isolation.
    """
    core = AcvBgkm(publisher.params.gkm_field, publisher.params.hash_fn)
    for header in package.headers:
        if header.acv is None:
            continue
        if not isinstance(header.acv, BucketedHeader):
            raise InvariantViolation(
                "%s: bucketed publisher %r broadcast a dense header for "
                "configuration %r" % (context, publisher.name, header.config_id)
            )
        key = publisher.last_keys.get((package.document, header.config_id))
        if key is None:
            raise InvariantViolation(
                "%s: no recorded key for (%r, %r); cannot audit the layout"
                % (context, package.document, header.config_id)
            )
        rows = [
            row
            for bucket in publisher.table.rows_for_policies(list(header.policies))
            for row in bucket
        ]
        chunks = publisher.bucket_layout_for(rows)
        if chunks is None:
            raise InvariantViolation(
                "%s: publisher %r runs the dense strategy; its broadcasts "
                "have no bucket layout to audit" % (context, publisher.name)
            )
        if len(header.acv.buckets) != len(chunks):
            raise InvariantViolation(
                "%s: configuration %r broadcast %d buckets, the current "
                "table implies %d (stale or missing bucket)"
                % (context, header.config_id, len(header.acv.buckets),
                   len(chunks))
            )
        # A row may legitimately appear in several chunks when two member
        # policies share a condition-key list; such a row derives the key
        # from each of its own buckets, so only genuinely foreign buckets
        # count as violations below.
        chunks_of: Dict[tuple, set] = {}
        for index, chunk in enumerate(chunks):
            for row in chunk:
                chunks_of.setdefault(row, set()).add(index)
        for index, chunk in enumerate(chunks):
            bucket = header.acv.buckets[index]
            expected_capacity = max(len(chunk), 1) + publisher.capacity_slack
            if bucket.capacity != expected_capacity:
                raise InvariantViolation(
                    "%s: configuration %r bucket %d has capacity %d, the "
                    "current table implies %d"
                    % (context, header.config_id, index, bucket.capacity,
                       expected_capacity)
                )
            for row in chunk:
                if core.derive(bucket, row) != key:
                    raise InvariantViolation(
                        "%s: configuration %r: a qualified row does not "
                        "derive the key from its assigned bucket %d "
                        "(member in the wrong bucket?)"
                        % (context, header.config_id, index)
                    )
                for other_index, other in enumerate(header.acv.buckets):
                    if other_index in chunks_of[row]:
                        continue
                    if core.derive(other, row) == key:
                        raise InvariantViolation(
                            "%s: configuration %r: a row of bucket %d also "
                            "derives the key from foreign bucket %d (stale "
                            "bucket surviving a rekey?)"
                            % (context, header.config_id, index, other_index)
                        )


def check_bucket_layout(engine, context: str) -> None:
    """Bucket-layout invariants over the engine's last rekey window."""
    for publisher_name, package in getattr(engine, "last_rekey_packages", []):
        publisher = engine.services[publisher_name].publisher
        if publisher.gkm != "bucketed":
            continue
        check_bucketed_package(publisher, package, context)
