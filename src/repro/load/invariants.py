"""Post-phase invariant checks: the properties churn must never break.

After every phase the engine hands the checker its members and the
accounting window of the rekey it just performed.  Three families of
invariants, straight from the paper's claims:

* **zero-unicast rekey** -- inside the rekey window, everything a
  publisher sent was a single accounted multicast per publish; no
  targeted frame, no inbound registration traffic rode along.
* **derivation** -- every current member holds plaintexts exactly
  matching the ground-truth policy evaluation of its (engine-known)
  attribute values: entitled segments decrypt, nothing else does.
* **lockout** -- a revoked member's latest broadcast decrypts to
  nothing, and its pseudonym is gone from the publisher's CSS table.

Violations raise :class:`repro.errors.InvariantViolation` with enough
context to debug the phase; they are never warnings.
"""

from __future__ import annotations

from typing import Dict, Sequence

from repro.errors import InvariantViolation
from repro.policy.evaluate import satisfies_policy
from repro.system.transport import BROADCAST, Message

__all__ = [
    "REGISTRATION_KINDS",
    "check_members",
    "check_rekey_window",
    "expected_plaintexts",
]

#: Accounting kinds that belong to the registration protocol: none of
#: them may appear inside a rekey window (rekeying must not trigger any
#: per-subscriber exchange) nor during a flap recovery (durable CSSs are
#: completed registrations).
REGISTRATION_KINDS = frozenset(
    {
        "token+condition-request",
        "registration-ack",
        "ocbe-bit-commitments",
        "ocbe-envelope",
    }
)


def check_rekey_window(
    records: Sequence[Message],
    publisher_names: Sequence[str],
    expected_broadcasts: int,
    context: str,
) -> None:
    """Assert the paper's rekey shape over one accounting window."""
    broadcasts = 0
    for record in records:
        if record.kind in REGISTRATION_KINDS:
            raise InvariantViolation(
                "%s: rekey window carries registration traffic "
                "(%s from %r to %r)"
                % (context, record.kind, record.sender, record.receiver)
            )
        if record.sender in publisher_names:
            if record.receiver != BROADCAST:
                raise InvariantViolation(
                    "%s: publisher %r sent a unicast %s frame to %r during "
                    "a rekey (must be broadcast-only)"
                    % (context, record.sender, record.kind, record.receiver)
                )
            broadcasts += 1
        elif record.receiver in publisher_names:
            raise InvariantViolation(
                "%s: publisher %r received %d bytes (%s from %r) during a "
                "rekey; the window must be outbound-multicast only"
                % (context, record.receiver, record.size, record.kind,
                   record.sender)
            )
    if broadcasts != expected_broadcasts:
        raise InvariantViolation(
            "%s: expected %d accounted broadcast transmissions in the rekey "
            "window, saw %d"
            % (context, expected_broadcasts, broadcasts)
        )


def expected_plaintexts(publisher_spec, attributes, document_spec) -> Dict[str, bytes]:
    """Ground-truth entitlement: the segments of ``document_spec`` that
    ``attributes`` unlock under ``publisher_spec``'s policies."""
    entitled: Dict[str, bytes] = {}
    content = {seg: text.encode("utf-8") for seg, text in document_spec.segments}
    for policy_spec in publisher_spec.policies:
        if policy_spec.document != document_spec.name:
            continue
        if satisfies_policy(attributes, policy_spec.parse()):
            for segment in policy_spec.segments:
                entitled[segment] = content[segment]
    return entitled


def check_members(engine, context: str) -> None:
    """Derivation + lockout for every member that has a live client."""
    for member in engine.members.values():
        if not member.alive:
            continue  # killed mid-flap: checked again after recovery
        service = engine.services[member.publisher]
        publisher_spec = engine.publisher_spec(member.publisher)
        for document_spec in publisher_spec.documents:
            actual = member.client.documents.get(document_spec.name)
            if actual is None:
                raise InvariantViolation(
                    "%s: member %s never received a broadcast of %r"
                    % (context, member.user, document_spec.name)
                )
            if member.revoked:
                if actual:
                    raise InvariantViolation(
                        "%s: REVOKED member %s still derives %s of %r"
                        % (context, member.user, sorted(actual),
                           document_spec.name)
                    )
                continue
            expected = expected_plaintexts(
                publisher_spec, member.attributes, document_spec
            )
            if actual != expected:
                raise InvariantViolation(
                    "%s: member %s derived %s of %r, entitled to %s"
                    % (context, member.user, sorted(actual),
                       document_spec.name, sorted(expected))
                )
        if member.revoked and member.nym in service.publisher.table.pseudonyms():
            raise InvariantViolation(
                "%s: revoked member %s still has CSS table rows"
                % (context, member.user)
            )
