"""repro.load: the declarative load & churn engine.

The ROADMAP's "what happens at N=500 with 5% churn/min" subsystem: a
:class:`~repro.load.spec.LoadScenario` (JSON-serializable dataclasses)
describes publishers, attribute mixes and a phase script; a
:class:`~repro.load.engine.LoadEngine` runs it over the in-memory or
the TCP driver; :mod:`~repro.load.invariants` asserts lockout,
derivation and zero-unicast after every phase; and the
:class:`~repro.load.metrics.LoadReport` lands in the
``BENCH_<name>.json`` trajectory that CI's bench-gate compares.

Run one from the shell::

    python -m repro.load --builtin smoke --driver memory --bench

See DESIGN.md ("Load & churn engine") for the scenario schema.
"""

from repro.load.engine import LoadEngine, run_scenario
from repro.load.invariants import (
    REGISTRATION_KINDS,
    check_bucket_layout,
    check_bucketed_package,
    check_exact_delivery,
    check_members,
    check_rekey_window,
    check_relay_hops,
    expected_plaintexts,
)
from repro.load.metrics import LoadReport, MetricsCollector, PhaseMetrics
from repro.load.scenarios import (
    BUILTIN_SCENARIOS,
    bucketed,
    builtin_scenario,
    churn_scenario,
    feed_publisher,
    smoke_scenario,
    with_relays,
)
from repro.load.spec import (
    AttributeSpec,
    DocumentSpec,
    LoadScenario,
    PhaseSpec,
    PolicySpec,
    PublisherSpec,
    RelaySpec,
    churn_phases,
    load_scenario_file,
    save_scenario_file,
)

__all__ = [
    "AttributeSpec",
    "BUILTIN_SCENARIOS",
    "DocumentSpec",
    "LoadEngine",
    "LoadReport",
    "LoadScenario",
    "MetricsCollector",
    "PhaseMetrics",
    "PhaseSpec",
    "PolicySpec",
    "PublisherSpec",
    "REGISTRATION_KINDS",
    "RelaySpec",
    "bucketed",
    "builtin_scenario",
    "check_bucket_layout",
    "check_bucketed_package",
    "check_exact_delivery",
    "check_members",
    "check_rekey_window",
    "check_relay_hops",
    "churn_phases",
    "churn_scenario",
    "expected_plaintexts",
    "feed_publisher",
    "load_scenario_file",
    "run_scenario",
    "save_scenario_file",
    "smoke_scenario",
    "with_relays",
]
