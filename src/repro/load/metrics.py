"""Per-phase metrics and the machine-readable load report.

The engine marks the broker accounting before each phase and hands the
delta (plus wall time and membership counters) to a
:class:`MetricsCollector`; :class:`LoadReport` renders the collected
phases as the usual fixed-width table and emits them through
:func:`repro.bench.runner.emit_bench_json`, so a load run lands in the
same ``BENCH_<name>.json`` trajectory CI's bench-gate compares.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.bench.runner import Measurement, emit_bench_json, format_table
from repro.obs.metrics import estimate_quantiles
from repro.system.transport import BROADCAST, Message

__all__ = ["LoadReport", "MetricsCollector", "PhaseMetrics"]


@dataclass(frozen=True)
class PhaseMetrics:
    """Everything one phase did, as numbers."""

    label: str
    kind: str
    wall_s: float
    frames: int
    bytes_total: int
    bytes_by_kind: Dict[str, int]
    broadcasts: int
    publisher_unicast_frames: int
    rekeys: int
    members_alive: int
    members_revoked: int
    #: Wall time inside ``service.publish`` for the phase's closing rekey
    #: window: the publisher-side ACV build + encryption cost, isolated
    #: from settling/delivery.  This is the dense-vs-bucketed number.
    rekey_publish_s: float = 0.0
    #: Point-in-time :mod:`repro.obs` snapshots taken at the end of the
    #: phase, keyed by vantage point (``local`` = this process's
    #: registry; ``root`` = the broker's root-aggregated subtree;
    #: ``relay:<name>`` = one relay's local view).  ``None`` when the
    #: engine ran without obs sampling -- the JSON round trip simply
    #: omits the key then.
    obs: Optional[Dict[str, dict]] = None
    #: ``(wall-clock start, end)`` of the phase in the engine's clock
    #: frame -- the bucket the post-run trace attribution assigns traces
    #: into.  ``None`` when the engine did not record one.
    window: Optional[Tuple[float, float]] = None
    #: Per-stage latency attribution for the traces whose corrected
    #: start fell inside this phase's window (the
    #: :func:`repro.obs.analyze.attribution_table` payload); ``None``
    #: when the run had no ``obs_dir``.
    attribution: Optional[dict] = None

    def to_payload(self) -> dict:
        payload = {
            "label": self.label,
            "kind": self.kind,
            "wall_s": self.wall_s,
            "rekey_publish_s": self.rekey_publish_s,
            "frames": self.frames,
            "bytes_total": self.bytes_total,
            "bytes_by_kind": dict(sorted(self.bytes_by_kind.items())),
            "broadcasts": self.broadcasts,
            "publisher_unicast_frames": self.publisher_unicast_frames,
            "rekeys": self.rekeys,
            "members_alive": self.members_alive,
            "members_revoked": self.members_revoked,
        }
        if self.obs is not None:
            payload["obs"] = self.obs
        if self.window is not None:
            payload["window"] = list(self.window)
        if self.attribution is not None:
            payload["attribution"] = self.attribution
        return payload


class MetricsCollector:
    """Aggregates phase windows of the transport's accounting log."""

    def __init__(self) -> None:
        self.phases: List[PhaseMetrics] = []

    def record(
        self,
        label: str,
        kind: str,
        wall_s: float,
        records: Sequence[Message],
        publisher_names: Sequence[str],
        rekeys: int,
        members_alive: int,
        members_revoked: int,
        rekey_publish_s: float = 0.0,
        obs: Optional[Dict[str, dict]] = None,
        window: Optional[Tuple[float, float]] = None,
    ) -> PhaseMetrics:
        """Fold one phase's accounting window into a :class:`PhaseMetrics`."""
        bytes_by_kind: Dict[str, int] = {}
        broadcasts = 0
        unicast = 0
        for record in records:
            bytes_by_kind[record.kind] = (
                bytes_by_kind.get(record.kind, 0) + record.size
            )
            if record.sender in publisher_names:
                if record.receiver == BROADCAST:
                    broadcasts += 1
                else:
                    unicast += 1
        metrics = PhaseMetrics(
            label=label,
            kind=kind,
            wall_s=wall_s,
            frames=len(records),
            bytes_total=sum(record.size for record in records),
            bytes_by_kind=bytes_by_kind,
            broadcasts=broadcasts,
            publisher_unicast_frames=unicast,
            rekeys=rekeys,
            members_alive=members_alive,
            members_revoked=members_revoked,
            rekey_publish_s=rekey_publish_s,
            obs=obs,
            window=window,
        )
        self.phases.append(metrics)
        return metrics


@dataclass
class LoadReport:
    """The outcome of one scenario run, ready to print or emit."""

    scenario: str
    driver: str
    phases: List[PhaseMetrics] = field(default_factory=list)
    params: Dict[str, object] = field(default_factory=dict)

    @property
    def wall_s(self) -> float:
        return sum(phase.wall_s for phase in self.phases)

    @property
    def rekey_publish_s(self) -> float:
        """Total publisher-side rekey (publish-call) wall time."""
        return sum(phase.rekey_publish_s for phase in self.phases)

    def bytes_by_kind(self) -> Dict[str, int]:
        totals: Dict[str, int] = {}
        for phase in self.phases:
            for kind, size in phase.bytes_by_kind.items():
                totals[kind] = totals.get(kind, 0) + size
        return totals

    def format(self) -> str:
        rows = [
            [
                phase.label,
                phase.kind,
                phase.wall_s * 1e3,
                phase.rekey_publish_s * 1e3,
                phase.frames,
                phase.bytes_total,
                phase.broadcasts,
                phase.rekeys,
                phase.members_alive,
                phase.members_revoked,
            ]
            for phase in self.phases
        ]
        return format_table(
            "load scenario %r over the %s driver (%.0f ms total)"
            % (self.scenario, self.driver, self.wall_s * 1e3),
            ["phase", "kind", "ms", "rekey ms", "frames", "bytes", "bcasts",
             "rekeys", "alive", "revoked"],
            rows,
        )

    def format_obs(self) -> str:
        """The per-phase :mod:`repro.obs` metrics table, or ``""``.

        One row per (phase, vantage point, metric): counters and gauges
        verbatim, histograms as mean + interpolated p50/p95/p99
        latencies (:func:`repro.obs.metrics.estimate_quantiles` over the
        fixed bucket edges -- latencies, not raw bucket counts).  Values
        are cumulative per vantage (each phase samples the same live
        registries), so reading down a column shows the series growing
        phase over phase.
        """
        rows = []
        for phase in self.phases:
            for vantage, snapshot in sorted((phase.obs or {}).items()):
                for name, value in snapshot.get("counters", {}).items():
                    rows.append([phase.label, vantage, name, int(value)])
                for name, value in snapshot.get("gauges", {}).items():
                    rows.append([phase.label, vantage, name, value])
                for name, hist in snapshot.get("histograms", {}).items():
                    count = hist.get("count", 0)
                    mean_ms = (hist.get("sum", 0.0) / count * 1e3) if count else 0.0
                    quantiles = estimate_quantiles(hist)
                    rows.append([
                        phase.label, vantage, name,
                        "%d obs, mean %.3f, p50 %.3f, p95 %.3f, "
                        "p99 %.3f ms" % (
                            count, mean_ms, quantiles[0.5] * 1e3,
                            quantiles[0.95] * 1e3, quantiles[0.99] * 1e3,
                        ),
                    ])
        if not rows:
            return ""
        return format_table(
            "obs metrics per phase (cumulative per vantage)",
            ["phase", "vantage", "metric", "value"],
            rows,
        )

    def format_attribution(self) -> str:
        """The per-phase latency attribution tables, or ``""`` when the
        run carried no ``obs_dir`` (no spans means nothing to stitch)."""
        rows = []
        for phase in self.phases:
            table = phase.attribution
            if not table or not table.get("stages"):
                continue
            stages = sorted(
                table["stages"].items(),
                key=lambda item: -item[1]["total_s"],
            )
            for name, cut in stages:
                rows.append([
                    phase.label, name, cut["count"],
                    cut["total_s"] * 1e3,
                    "%5.1f%%" % (cut["share"] * 100.0),
                    cut["p50_s"] * 1e3, cut["p95_s"] * 1e3,
                    cut["p99_s"] * 1e3,
                ])
        if not rows:
            return ""
        return format_table(
            "latency attribution per phase (share of union trace wall)",
            ["phase", "stage", "n", "total ms", "share", "p50 ms",
             "p95 ms", "p99 ms"],
            rows,
        )

    def to_payload(self) -> dict:
        return {
            "scenario": self.scenario,
            "driver": self.driver,
            "params": dict(self.params),
            "wall_s": self.wall_s,
            "phases": [phase.to_payload() for phase in self.phases],
        }

    def emit_bench(self, name: Optional[str] = None) -> str:
        """Write ``BENCH_<name>.json`` (default name ``load_<scenario>``).

        Per-phase wall times become the ``measurements`` (one round
        each: a load phase is a trajectory point, not a microbenchmark);
        per-kind byte totals become the deterministic ``bytes`` section
        the bench-gate can compare exactly.
        """
        measurements = {
            phase.label: Measurement(
                mean=phase.wall_s,
                minimum=phase.wall_s,
                maximum=phase.wall_s,
                rounds=1,
            )
            for phase in self.phases
        }
        for phase in self.phases:
            # The publisher-side rekey cost per phase, tracked separately
            # so the dense-vs-bucketed trajectory is gateable on the
            # matrix-build number alone.
            measurements["%s:rekey-publish" % phase.label] = Measurement(
                mean=phase.rekey_publish_s,
                minimum=phase.rekey_publish_s,
                maximum=phase.rekey_publish_s,
                rounds=1,
            )
        measurements["total"] = Measurement(
            mean=self.wall_s, minimum=self.wall_s, maximum=self.wall_s, rounds=1
        )
        measurements["rekey_publish_total"] = Measurement(
            mean=self.rekey_publish_s,
            minimum=self.rekey_publish_s,
            maximum=self.rekey_publish_s,
            rounds=1,
        )
        bytes_counts = self.bytes_by_kind()
        bytes_counts["total"] = sum(
            phase.bytes_total for phase in self.phases
        )
        return emit_bench_json(
            name or "load_%s" % self.scenario,
            op="load-scenario",
            params=dict(self.params, driver=self.driver),
            measurements=measurements,
            bytes_counts=bytes_counts,
            extra={"phases": [phase.to_payload() for phase in self.phases]},
        )
