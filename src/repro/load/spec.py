"""Declarative load/churn scenario specifications.

A :class:`LoadScenario` describes a whole population experiment without
any live objects: which publishers exist (each with its own attribute
mix, policies and broadcast documents), and a script of *phases* --
arrival waves, revoke storms, flapping subscribers that kill-and-recover
from their durable state, pure broadcast fan-out.  The spec is plain
data with an exact JSON round trip, so the same scenario file drives the
in-process driver, the TCP driver and the ``python -m repro.load`` CLI.

Churn rates are expressed as phases: a "5%/min departure rate at N=500
over 10 minutes" is ten ``revoke`` phases of 25 -- the helper
:func:`churn_phases` expands exactly that arithmetic so scenario authors
write rates and the engine still sees discrete, checkable steps (every
phase ends in a rekey whose invariants are asserted).

Multi-publisher scenarios must keep their attribute universes disjoint:
condition keys are strings shared across a subscriber's publishers, so
two publishers announcing the same condition would alias each other's
registrations.  :meth:`LoadScenario.validate` enforces this.
"""

from __future__ import annotations

import json
import math
import os
import re
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.documents.model import Document
from repro.errors import InvalidParameterError
from repro.gkm.acv import FAST_FIELD, PAPER_FIELD
from repro.gkm.strategy import GKM_STRATEGIES
from repro.mathx.field import PrimeField
from repro.policy.acp import AccessControlPolicy, parse_policy

__all__ = [
    "AttributeSpec",
    "DocumentSpec",
    "GKM_FIELDS",
    "LoadScenario",
    "PHASE_KINDS",
    "PhaseSpec",
    "PolicySpec",
    "PublisherSpec",
    "RelaySpec",
    "churn_phases",
    "load_scenario_file",
    "save_scenario_file",
]

#: The GKM fields a scenario may name (mirrors ``repro.net.bootstrap``).
GKM_FIELDS: Dict[str, PrimeField] = {"fast": FAST_FIELD, "paper": PAPER_FIELD}

#: What a phase can do to the population.  Every kind ends in a rekey
#: broadcast whose invariants the engine asserts.
PHASE_KINDS = ("join", "revoke", "flap", "broadcast")

_NAME_RE = re.compile(r"^[A-Za-z0-9][A-Za-z0-9_-]*$")


def _require_name(label: str, value: str) -> str:
    if not isinstance(value, str) or not _NAME_RE.match(value):
        raise InvalidParameterError(
            "%s %r must match %s" % (label, value, _NAME_RE.pattern)
        )
    return value


@dataclass(frozen=True)
class AttributeSpec:
    """One attribute of a publisher's mix: integer values drawn uniformly
    from the inclusive ``[low, high]`` range per joining subscriber."""

    name: str
    low: int
    high: int

    def validate(self, attribute_bits: int) -> None:
        _require_name("attribute name", self.name)
        if self.low > self.high:
            raise InvalidParameterError(
                "attribute %r has an empty range (%d, %d)"
                % (self.name, self.low, self.high)
            )
        if self.low < 0 or self.high >= (1 << attribute_bits):
            raise InvalidParameterError(
                "attribute %r range (%d, %d) exceeds %d-bit encoding"
                % (self.name, self.low, self.high, attribute_bits)
            )


@dataclass(frozen=True)
class PolicySpec:
    """One access control policy: a condition string protecting segments
    of one of the publisher's documents."""

    condition: str
    segments: Tuple[str, ...]
    document: str

    def parse(self) -> AccessControlPolicy:
        return parse_policy(self.condition, list(self.segments), self.document)


@dataclass(frozen=True)
class DocumentSpec:
    """One broadcast document: named text segments."""

    name: str
    segments: Tuple[Tuple[str, str], ...]

    def build(self) -> Document:
        return Document.of(
            self.name,
            {seg: text.encode("utf-8") for seg, text in self.segments},
        )

    def segment_names(self) -> Tuple[str, ...]:
        return tuple(seg for seg, _ in self.segments)


@dataclass(frozen=True)
class PublisherSpec:
    """One publisher: attribute mix, policies, broadcast documents."""

    name: str
    attributes: Tuple[AttributeSpec, ...]
    policies: Tuple[PolicySpec, ...]
    documents: Tuple[DocumentSpec, ...]

    def mix(self) -> Dict[str, Tuple[int, int]]:
        """The attribute mix in :func:`repro.workloads.generator.
        draw_attribute_values` form."""
        return {a.name: (a.low, a.high) for a in self.attributes}

    def parsed_policies(self) -> List[AccessControlPolicy]:
        return [p.parse() for p in self.policies]

    def conditions_per_attribute(self) -> Dict[str, int]:
        """Distinct condition keys naming each attribute -- what one
        subscriber is expected to register per held token."""
        conditions: Dict[str, str] = {}
        for policy in self.parsed_policies():
            for condition in policy.conditions:
                conditions[condition.key()] = condition.name
        counts: Dict[str, int] = {}
        for name in conditions.values():
            counts[name] = counts.get(name, 0) + 1
        return counts

    def validate(self, attribute_bits: int) -> None:
        _require_name("publisher name", self.name)
        if not self.attributes or not self.policies or not self.documents:
            raise InvalidParameterError(
                "publisher %r needs at least one attribute, policy and "
                "document" % self.name
            )
        for attribute in self.attributes:
            attribute.validate(attribute_bits)
        declared = {a.name for a in self.attributes}
        if len(declared) != len(self.attributes):
            raise InvalidParameterError(
                "publisher %r declares duplicate attributes" % self.name
            )
        documents = {d.name: d for d in self.documents}
        if len(documents) != len(self.documents):
            raise InvalidParameterError(
                "publisher %r declares duplicate documents" % self.name
            )
        for document in self.documents:
            names = document.segment_names()
            if len(set(names)) != len(names):
                raise InvalidParameterError(
                    "document %r declares duplicate segments" % document.name
                )
        for spec in self.policies:
            policy = spec.parse()  # raises PolicyParseError on bad syntax
            for condition in policy.conditions:
                if condition.name not in declared:
                    raise InvalidParameterError(
                        "policy %r references attribute %r outside the "
                        "mix of publisher %r"
                        % (spec.condition, condition.name, self.name)
                    )
            if spec.document not in documents:
                raise InvalidParameterError(
                    "policy %r protects unknown document %r"
                    % (spec.condition, spec.document)
                )
            known = set(documents[spec.document].segment_names())
            for segment in spec.segments:
                if segment not in known:
                    raise InvalidParameterError(
                        "policy %r protects unknown segment %r of %r"
                        % (spec.condition, segment, spec.document)
                    )


@dataclass(frozen=True)
class RelaySpec:
    """One node of the relay fan-out tree (:mod:`repro.net.relay`).

    ``upstream`` names an **earlier** relay in the scenario's topology
    list, or ``None`` for the root broker -- so a valid topology is a
    tree by construction, and its declaration order is a valid spawn
    order for the supervisor.
    """

    name: str
    upstream: Optional[str] = None

    def validate(self) -> None:
        _require_name("relay name", self.name)


@dataclass(frozen=True)
class PhaseSpec:
    """One step of the scenario script.

    * ``join``  -- ``count`` new subscribers arrive (round-robin across
      publishers, or all to ``publisher``), obtain tokens and register.
    * ``revoke`` -- ``count`` current members lose their subscription
      (a batch revocation; the rekey is the following broadcast).
    * ``flap``  -- ``count`` members are killed (connection + process
      state dropped), miss a rekey, then recover from their durable
      data dir without re-registering.
    * ``broadcast`` -- ``repeat`` extra broadcast rounds with no
      membership change (pure fan-out load).
    """

    kind: str
    count: int = 0
    publisher: Optional[str] = None
    repeat: int = 1

    def validate(self) -> None:
        if self.kind not in PHASE_KINDS:
            raise InvalidParameterError(
                "phase kind %r not in %s" % (self.kind, PHASE_KINDS)
            )
        if self.kind in ("join", "revoke", "flap") and self.count < 1:
            raise InvalidParameterError(
                "%s phase needs a positive count" % self.kind
            )
        if self.repeat < 1:
            raise InvalidParameterError("phase repeat must be >= 1")


def _segments(document_payload: dict) -> Tuple[Tuple[str, str], ...]:
    """Segment pairs from a document payload, order-preserving.

    The canonical encoding is a list of ``[name, text]`` pairs; a JSON
    object (hand-written scenario) is accepted with sorted order, since
    objects carry none.
    """
    raw = document_payload["segments"]
    if isinstance(raw, dict):
        return tuple(sorted(raw.items()))
    return tuple((seg, text) for seg, text in raw)


@dataclass(frozen=True)
class LoadScenario:
    """A complete, serializable load/churn experiment."""

    name: str
    seed: int
    publishers: Tuple[PublisherSpec, ...]
    phases: Tuple[PhaseSpec, ...]
    group: str = "nist-p192"
    gkm_field: str = "fast"
    attribute_bits: int = 8
    capacity_slack: int = 0
    #: Publish-path GKM strategy for every publisher: "dense" (one ACV
    #: per configuration) or "bucketed" (Section VIII-C row-order
    #: buckets, shared key).
    gkm: str = "dense"
    #: Fixed rows-per-bucket for the bucketed strategy; 0 = the auto
    #: ceil(sqrt(m)) policy.
    gkm_bucket_size: int = 0
    #: The relay fan-out tree the run deploys (TCP driver only; empty =
    #: the classic single-broker topology).  Subscribers attach
    #: round-robin across the tree's *leaf* relays; publishers and the
    #: IdMgr stay at the root.
    topology: Tuple[RelaySpec, ...] = ()
    #: Seconds between metrics pushes/snapshots in the broker/relay tier
    #: (:mod:`repro.obs`); 0 disables the periodic push entirely (the
    #: engine still samples on demand at phase boundaries).
    metrics_interval: float = 0.0
    #: Minimum fraction of publish-trace wall that must be attributed to
    #: named stages + transit by :mod:`repro.obs.analyze` for the run to
    #: pass (engine runs with an ``obs_dir`` only); 0 disables the gate.
    min_attribution_coverage: float = 0.0
    #: OCBE worker-pool size for the publisher/IdMgr registration path;
    #: 0 = serial.  Replies are delivery-ordered either way, so this
    #: changes wall-clock only, never the transcript.
    ocbe_workers: int = 0
    #: Publisher-side ACV build cache (exact-hit recombine + incremental
    #: join extension).  Disabling it forces every publish to re-solve the
    #: access matrix from scratch -- the differential baseline the
    #: warm-churn scenarios compare against.
    acv_cache: bool = True

    # -- validation --------------------------------------------------------

    def validate(self) -> "LoadScenario":
        _require_name("scenario name", self.name)
        if not isinstance(self.seed, int):
            raise InvalidParameterError("seed must be an int")
        if self.gkm_field not in GKM_FIELDS:
            raise InvalidParameterError(
                "gkm_field must be one of %s" % sorted(GKM_FIELDS)
            )
        if self.attribute_bits < 1 or self.capacity_slack < 0:
            raise InvalidParameterError("invalid attribute_bits/capacity_slack")
        if self.gkm not in GKM_STRATEGIES:
            raise InvalidParameterError(
                "gkm must be one of %s" % (GKM_STRATEGIES,)
            )
        if not isinstance(self.gkm_bucket_size, int) or self.gkm_bucket_size < 0:
            raise InvalidParameterError("gkm_bucket_size must be an int >= 0")
        if (
            not isinstance(self.metrics_interval, (int, float))
            or isinstance(self.metrics_interval, bool)
            or self.metrics_interval < 0
        ):
            raise InvalidParameterError("metrics_interval must be a number >= 0")
        if (
            not isinstance(self.min_attribution_coverage, (int, float))
            or isinstance(self.min_attribution_coverage, bool)
            or not 0.0 <= self.min_attribution_coverage <= 1.0
        ):
            raise InvalidParameterError(
                "min_attribution_coverage must be a number in [0, 1]"
            )
        if (
            not isinstance(self.ocbe_workers, int)
            or isinstance(self.ocbe_workers, bool)
            or self.ocbe_workers < 0
        ):
            raise InvalidParameterError("ocbe_workers must be an int >= 0")
        if not isinstance(self.acv_cache, bool):
            raise InvalidParameterError("acv_cache must be a bool")
        if not self.publishers:
            raise InvalidParameterError("scenario needs at least one publisher")
        names = [p.name for p in self.publishers]
        if len(set(names)) != len(names):
            raise InvalidParameterError("duplicate publisher names: %s" % names)
        seen_attributes: Dict[str, str] = {}
        seen_documents: Dict[str, str] = {}
        for publisher in self.publishers:
            publisher.validate(self.attribute_bits)
            for attribute in publisher.attributes:
                owner = seen_attributes.setdefault(attribute.name, publisher.name)
                if owner != publisher.name:
                    # Shared attribute names would alias condition keys in
                    # the subscribers' shared results/CSS stores.
                    raise InvalidParameterError(
                        "attribute %r appears in publishers %r and %r; "
                        "multi-publisher universes must be disjoint"
                        % (attribute.name, owner, publisher.name)
                    )
            for document in publisher.documents:
                owner = seen_documents.setdefault(document.name, publisher.name)
                if owner != publisher.name:
                    raise InvalidParameterError(
                        "document %r appears in publishers %r and %r"
                        % (document.name, owner, publisher.name)
                    )
        seen_relays: List[str] = []
        for relay in self.topology:
            relay.validate()
            if relay.name in seen_relays:
                raise InvalidParameterError(
                    "duplicate relay name %r" % relay.name
                )
            if relay.upstream is not None and relay.upstream not in seen_relays:
                raise InvalidParameterError(
                    "relay %r names upstream %r, which is not an earlier "
                    "relay in the topology (None means the root broker)"
                    % (relay.name, relay.upstream)
                )
            seen_relays.append(relay.name)
        if not self.phases:
            raise InvalidParameterError("scenario needs at least one phase")
        if self.phases[0].kind != "join":
            raise InvalidParameterError(
                "the first phase must be a join (an empty population has "
                "nothing to revoke, flap or broadcast to)"
            )
        for phase in self.phases:
            phase.validate()
            if phase.publisher is not None and phase.publisher not in names:
                raise InvalidParameterError(
                    "phase targets unknown publisher %r" % phase.publisher
                )
        return self

    # -- JSON round trip ---------------------------------------------------

    def to_payload(self) -> dict:
        return {
            "name": self.name,
            "seed": self.seed,
            "group": self.group,
            "gkm_field": self.gkm_field,
            "gkm": self.gkm,
            "gkm_bucket_size": self.gkm_bucket_size,
            "attribute_bits": self.attribute_bits,
            "capacity_slack": self.capacity_slack,
            "metrics_interval": self.metrics_interval,
            "min_attribution_coverage": self.min_attribution_coverage,
            "ocbe_workers": self.ocbe_workers,
            "acv_cache": self.acv_cache,
            "publishers": [
                {
                    "name": p.name,
                    "attributes": [
                        {"name": a.name, "low": a.low, "high": a.high}
                        for a in p.attributes
                    ],
                    "policies": [
                        {
                            "condition": spec.condition,
                            "segments": list(spec.segments),
                            "document": spec.document,
                        }
                        for spec in p.policies
                    ],
                    "documents": [
                        # Pairs, not an object: JSON objects are
                        # unordered, and segment order is part of the
                        # exact round trip (same seed => same Document
                        # build => bit-identical runs from file or API).
                        {
                            "name": d.name,
                            "segments": [[seg, text] for seg, text in d.segments],
                        }
                        for d in p.documents
                    ],
                }
                for p in self.publishers
            ],
            "phases": [
                {
                    "kind": phase.kind,
                    "count": phase.count,
                    "publisher": phase.publisher,
                    "repeat": phase.repeat,
                }
                for phase in self.phases
            ],
            "topology": [
                {"name": relay.name, "upstream": relay.upstream}
                for relay in self.topology
            ],
        }

    @classmethod
    def from_payload(cls, payload: dict) -> "LoadScenario":
        try:
            publishers = tuple(
                PublisherSpec(
                    name=p["name"],
                    attributes=tuple(
                        AttributeSpec(a["name"], a["low"], a["high"])
                        for a in p["attributes"]
                    ),
                    policies=tuple(
                        PolicySpec(
                            condition=spec["condition"],
                            segments=tuple(spec["segments"]),
                            document=spec["document"],
                        )
                        for spec in p["policies"]
                    ),
                    documents=tuple(
                        DocumentSpec(name=d["name"], segments=_segments(d))
                        for d in p["documents"]
                    ),
                )
                for p in payload["publishers"]
            )
            phases = tuple(
                PhaseSpec(
                    kind=phase["kind"],
                    count=phase.get("count", 0),
                    publisher=phase.get("publisher"),
                    repeat=phase.get("repeat", 1),
                )
                for phase in payload["phases"]
            )
            topology = tuple(
                RelaySpec(
                    name=relay["name"], upstream=relay.get("upstream")
                )
                for relay in payload.get("topology", [])
            )
            scenario = cls(
                name=payload["name"],
                seed=payload["seed"],
                publishers=publishers,
                phases=phases,
                topology=topology,
                group=payload.get("group", "nist-p192"),
                gkm_field=payload.get("gkm_field", "fast"),
                gkm=payload.get("gkm", "dense"),
                gkm_bucket_size=payload.get("gkm_bucket_size", 0),
                attribute_bits=payload.get("attribute_bits", 8),
                capacity_slack=payload.get("capacity_slack", 0),
                metrics_interval=payload.get("metrics_interval", 0.0),
                min_attribution_coverage=payload.get(
                    "min_attribution_coverage", 0.0
                ),
                ocbe_workers=payload.get("ocbe_workers", 0),
                acv_cache=payload.get("acv_cache", True),
            )
        except (KeyError, TypeError) as exc:
            raise InvalidParameterError(
                "malformed load scenario payload: %s" % exc
            ) from exc
        return scenario.validate()


def churn_phases(
    population: int,
    arrival_rate: float,
    departure_rate: float,
    steps: int,
    publisher: Optional[str] = None,
) -> Tuple[PhaseSpec, ...]:
    """Expand per-step arrival/departure *rates* into discrete phases.

    Rates are fractions of ``population`` per step (``0.05`` = 5% churn
    per step); counts are rounded up so a nonzero rate always moves at
    least one member.  Each step contributes its revoke phase before its
    join phase, so the population dips and recovers -- the worst case
    for capacity reuse.
    """
    if population < 1 or steps < 1:
        raise InvalidParameterError("population and steps must be >= 1")
    if arrival_rate < 0 or departure_rate < 0:
        raise InvalidParameterError("rates must be >= 0")
    phases: List[PhaseSpec] = []
    for _ in range(steps):
        departures = math.ceil(population * departure_rate)
        arrivals = math.ceil(population * arrival_rate)
        if departures:
            phases.append(
                PhaseSpec(kind="revoke", count=departures, publisher=publisher)
            )
        if arrivals:
            phases.append(
                PhaseSpec(kind="join", count=arrivals, publisher=publisher)
            )
    return tuple(phases)


def load_scenario_file(path: str) -> LoadScenario:
    """Read and validate a scenario JSON file."""
    with open(path, "r", encoding="utf-8") as handle:
        return LoadScenario.from_payload(json.load(handle))


def save_scenario_file(scenario: LoadScenario, path: str) -> None:
    """Write a validated scenario as JSON (atomically)."""
    scenario.validate()
    tmp = path + ".tmp"
    with open(tmp, "w", encoding="utf-8") as handle:
        json.dump(scenario.to_payload(), handle, indent=2, sort_keys=True)
        handle.write("\n")
    os.replace(tmp, path)
