"""Abstract interface shared by all cyclic-group backends.

The paper writes its groups multiplicatively (``c = g^x h^r``); we keep that
notation, so for elliptic-curve and Jacobian backends ``a * b`` is point or
divisor addition and ``a ** n`` is scalar multiplication.

Every group has *prime* order, exposes a canonical generator and supports
deterministic hashing to group elements (used to derive the second Pedersen
base ``h`` with provably unknown discrete log relative to ``g``).
"""

from __future__ import annotations

import abc
import hashlib
import random
from typing import Optional

__all__ = ["CyclicGroup", "GroupElement"]


class GroupElement(abc.ABC):
    """An element of a :class:`CyclicGroup` (multiplicative notation)."""

    __slots__ = ()

    @property
    @abc.abstractmethod
    def group(self) -> "CyclicGroup":
        """The group this element belongs to."""

    @abc.abstractmethod
    def __mul__(self, other: "GroupElement") -> "GroupElement":
        """The group operation."""

    @abc.abstractmethod
    def inverse(self) -> "GroupElement":
        """The group inverse."""

    @abc.abstractmethod
    def __pow__(self, exponent: int) -> "GroupElement":
        """Scalar exponentiation; negative exponents invert first."""

    @abc.abstractmethod
    def is_identity(self) -> bool:
        """True for the neutral element."""

    @abc.abstractmethod
    def to_bytes(self) -> bytes:
        """Canonical fixed-format serialization (used for hashing)."""

    @abc.abstractmethod
    def __eq__(self, other: object) -> bool: ...

    @abc.abstractmethod
    def __hash__(self) -> int: ...

    def __truediv__(self, other: "GroupElement") -> "GroupElement":
        """``a / b`` is shorthand for ``a * b.inverse()``."""
        if not isinstance(other, GroupElement):
            return NotImplemented
        return self * other.inverse()


class CyclicGroup(abc.ABC):
    """A cyclic group of (large) prime order with a canonical generator."""

    __slots__ = ()

    @property
    @abc.abstractmethod
    def name(self) -> str:
        """Short human-readable backend/parameter-set name."""

    @property
    @abc.abstractmethod
    def order(self) -> int:
        """The (prime) group order."""

    @abc.abstractmethod
    def identity(self) -> GroupElement:
        """The neutral element."""

    @abc.abstractmethod
    def generator(self) -> GroupElement:
        """The canonical generator ``g``."""

    @abc.abstractmethod
    def hash_to_element(self, tag: bytes) -> GroupElement:
        """Deterministically map ``tag`` to a non-identity element.

        The discrete log of the result with respect to :meth:`generator` is
        unknown to everyone, which is exactly the property the Pedersen base
        ``h`` needs.
        """

    @abc.abstractmethod
    def element_from_bytes(self, data: bytes) -> GroupElement:
        """Inverse of :meth:`GroupElement.to_bytes` (validates membership)."""

    # -- generic helpers ------------------------------------------------------

    def random_scalar(self, rng: Optional[random.Random] = None) -> int:
        """Uniform scalar in ``[1, order)`` (the exponent group ``F_p^*``)."""
        rng = rng or random
        return rng.randrange(1, self.order)

    def random_element(self, rng: Optional[random.Random] = None) -> GroupElement:
        """Uniform non-identity element, as ``g**k`` for random ``k``."""
        return self.generator() ** self.random_scalar(rng)

    def second_generator(self, domain: bytes = b"repro/pedersen/h") -> GroupElement:
        """A second generator ``h`` with unknown dlog relative to ``g``."""
        return self.hash_to_element(domain)

    def scalar_byte_length(self) -> int:
        """Bytes needed to encode one scalar."""
        return (self.order.bit_length() + 7) // 8

    def _hash_counter_stream(self, tag: bytes, counter: int, width: int) -> int:
        """Expand ``tag || counter`` into a ``width``-byte integer (helper)."""
        out = b""
        block = 0
        while len(out) < width:
            h = hashlib.sha256()
            h.update(b"repro/h2g")
            h.update(tag)
            h.update(counter.to_bytes(4, "big"))
            h.update(block.to_bytes(4, "big"))
            out += h.digest()
            block += 1
        return int.from_bytes(out[:width], "big")

    def __repr__(self) -> str:
        return "%s(name=%r, order_bits=%d)" % (
            type(self).__name__,
            self.name,
            self.order.bit_length(),
        )
