"""Genus-2 hyperelliptic Jacobians (Mumford representation + Cantor).

The paper's implementation builds Pedersen commitments over the Jacobian
group of the Gaudry--Schost genus-2 curve

    C : y^2 = x^5 + f3 x^3 + f2 x^2 + f1 x + f0   over F_q,
    q = 5*10^24 + 8503491,

whose Jacobian has prime order p (164/165 bits).  This module implements the
same construction from scratch:

* divisor classes in **Mumford representation** ``(u, v)`` with ``u`` monic,
  ``deg u <= 2``, ``deg v < deg u`` and ``u | v^2 - f``;
* the group law via **Cantor's algorithm** (composition followed by
  reduction), specialised to ``h = 0`` (odd characteristic);
* deterministic hash-to-Jacobian via degree-1 (weight-one) divisors, used to
  derive independent Pedersen bases.

Because the shipped curve's Jacobian order is prime with cofactor 1, every
non-identity divisor class generates the full group.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional, Tuple

from repro.errors import (
    GroupError,
    InvalidParameterError,
    NoSquareRootError,
    NotOnCurveError,
)
from repro.groups.base import CyclicGroup, GroupElement
from repro.mathx.field import PrimeField
from repro.mathx.modular import modsqrt
from repro.mathx.polynomial import Poly

__all__ = ["JacobianParams", "GenusTwoJacobian", "MumfordDivisor"]


@dataclass(frozen=True)
class JacobianParams:
    """Domain parameters of a genus-2 curve ``y^2 = f(x)`` with prime-order
    Jacobian.

    ``f_coeffs`` lists the coefficients of the degree-5 monic ``f`` from the
    constant term upward (six entries, last one 1).
    """

    name: str
    q: int                      # base-field modulus
    f_coeffs: Tuple[int, ...]   # (f0, f1, f2, f3, f4, 1)
    order: int                  # prime order of the Jacobian group

    def validate(self) -> None:
        """Check the shape of the parameters (degree-5 monic f)."""
        if len(self.f_coeffs) != 6 or self.f_coeffs[-1] % self.q != 1:
            raise InvalidParameterError("f must be monic of degree 5")


class GenusTwoJacobian(CyclicGroup):
    """Jacobian group of a genus-2 curve in multiplicative notation."""

    __slots__ = ("params", "field", "f", "_coord_len")

    def __init__(self, params: JacobianParams, check: bool = True):
        if check:
            params.validate()
        self.params = params
        self.field = PrimeField(params.q, check_prime=check)
        self.f = Poly(self.field, params.f_coeffs)
        self._coord_len = (params.q.bit_length() + 7) // 8

    # -- CyclicGroup interface ----------------------------------------------

    @property
    def name(self) -> str:
        return self.params.name

    @property
    def order(self) -> int:
        return self.params.order

    def identity(self) -> "MumfordDivisor":
        return MumfordDivisor(self, Poly.one(self.field), Poly.zero(self.field))

    def generator(self) -> "MumfordDivisor":
        return self.hash_to_element(b"repro/genus2/generator")

    def divisor(self, u: Poly, v: Poly, check: bool = True) -> "MumfordDivisor":
        """Wrap a Mumford pair, validating the divisor conditions."""
        if check:
            self._validate(u, v)
        return MumfordDivisor(self, u, v)

    def _validate(self, u: Poly, v: Poly) -> None:
        if u.is_zero() or not u.is_monic() or u.degree > 2:
            raise NotOnCurveError("u must be monic of degree <= 2")
        if not v.is_zero() and v.degree >= max(u.degree, 1):
            if u.degree == 0:
                raise NotOnCurveError("identity element must have v = 0")
            raise NotOnCurveError("deg v must be < deg u")
        if not ((v * v - self.f) % u).is_zero():
            raise NotOnCurveError("u does not divide v^2 - f")

    def point_divisor(self, x: int, y: int) -> "MumfordDivisor":
        """Weight-one divisor class of the affine curve point ``(x, y)``."""
        fe = self.field
        if self.f(x) != fe(y) * fe(y):
            raise NotOnCurveError("(%d, %d) is not on the curve" % (x, y))
        u = Poly(fe, (-fe(x), 1))
        v = Poly.constant(fe, y)
        return MumfordDivisor(self, u, v)

    def two_point_divisor(
        self, x1: int, y1: int, x2: int, y2: int
    ) -> "MumfordDivisor":
        """Weight-two divisor class of two distinct affine points."""
        fe = self.field
        if int(fe(x1)) == int(fe(x2)):
            raise InvalidParameterError("points must have distinct x coordinates")
        for x, y in ((x1, y1), (x2, y2)):
            if self.f(x) != fe(y) * fe(y):
                raise NotOnCurveError("(%d, %d) is not on the curve" % (x, y))
        u = Poly.from_roots(fe, (x1, x2))
        v = Poly.interpolate(fe, ((x1, y1), (x2, y2)))
        return MumfordDivisor(self, u, v)

    def lift_x(self, x: int, y_parity: int = 0) -> Tuple[int, int]:
        """An affine curve point with the given x (raises on non-residue)."""
        q = self.params.q
        rhs = int(self.f(x))
        y = modsqrt(rhs, q)
        if y % 2 != y_parity % 2 and y != 0:
            y = q - y
        return (x % q, y)

    def hash_to_element(self, tag: bytes) -> "MumfordDivisor":
        counter = 0
        while True:
            x = self._hash_counter_stream(tag, counter, self._coord_len + 8)
            x %= self.params.q
            try:
                px, py = self.lift_x(x)
            except NoSquareRootError:
                counter += 1
                continue
            divisor = self.point_divisor(px, py)
            if not divisor.is_identity():
                return divisor
            counter += 1

    def random_element(self, rng: Optional[random.Random] = None) -> "MumfordDivisor":
        """Random divisor class built from random curve points.

        Unlike the generic ``g**k`` default this samples fresh points, which
        exercises the weight-two code paths in tests.
        """
        rng = rng or random
        q = self.params.q
        points = []
        while len(points) < 2:
            x = rng.randrange(q)
            try:
                pt = self.lift_x(x, rng.randrange(2))
            except NoSquareRootError:
                continue
            if all(existing[0] != pt[0] for existing in points):
                points.append(pt)
        return self.two_point_divisor(*points[0], *points[1])

    def element_from_bytes(self, data: bytes) -> "MumfordDivisor":
        expected = 1 + 4 * self._coord_len
        if len(data) != expected:
            raise GroupError("expected %d bytes, got %d" % (expected, len(data)))
        deg = data[0]
        if deg > 2:
            raise GroupError("invalid degree marker %d" % deg)
        w = self._coord_len
        vals = [
            int.from_bytes(data[1 + i * w : 1 + (i + 1) * w], "big") for i in range(4)
        ]
        u0, u1, v0, v1 = vals
        fe = self.field
        if deg == 0:
            if u0 or u1 or v0 or v1:
                raise GroupError("non-canonical identity encoding")
            u = Poly.one(fe)
            v = Poly.zero(fe)
        elif deg == 1:
            if u1 or v1:
                raise GroupError("non-canonical weight-1 encoding")
            u = Poly(fe, (u0, 1))
            v = Poly(fe, (v0,))
        else:
            u = Poly(fe, (u0, u1, 1))
            v = Poly(fe, (v0, v1))
        return self.divisor(u, v, check=True)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, GenusTwoJacobian) and other.params == self.params

    def __hash__(self) -> int:
        return hash(("GenusTwoJacobian", self.params))

    # -- Cantor's algorithm (internal) ---------------------------------------

    def _compose(
        self, a: Tuple[Poly, Poly], b: Tuple[Poly, Poly]
    ) -> Tuple[Poly, Poly]:
        """Cantor composition (h = 0): returns a possibly unreduced pair."""
        u1, v1 = a
        u2, v2 = b
        d1, e1, e2 = u1.xgcd(u2)
        d, c1, c2 = d1.xgcd(v1 + v2)
        s1 = c1 * e1
        s2 = c1 * e2
        s3 = c2
        dd = d * d
        u, rem = divmod(u1 * u2, dd)
        if not rem.is_zero():
            raise GroupError("Cantor composition: d^2 does not divide u1*u2")
        numerator = s1 * u1 * v2 + s2 * u2 * v1 + s3 * (v1 * v2 + self.f)
        vq, vrem = divmod(numerator, d)
        if not vrem.is_zero():
            raise GroupError("Cantor composition: d does not divide v numerator")
        v = vq % u
        return u, v

    def _reduce(self, pair: Tuple[Poly, Poly]) -> Tuple[Poly, Poly]:
        """Cantor reduction to a Mumford pair with ``deg u <= 2``."""
        u, v = pair
        while u.degree > 2:
            u_next, rem = divmod(self.f - v * v, u)
            if not rem.is_zero():
                raise GroupError("Cantor reduction: u does not divide f - v^2")
            u_next = u_next.monic()
            v = (-v) % u_next
            u = u_next
        u = u.monic()
        return u, v % u

    def _cantor_add(
        self, a: Tuple[Poly, Poly], b: Tuple[Poly, Poly]
    ) -> Tuple[Poly, Poly]:
        u, v = self._reduce(self._compose(a, b))
        return u.monic(), v

    # -- formatting ----------------------------------------------------------

    def __repr__(self) -> str:
        return "GenusTwoJacobian(name=%r, q_bits=%d, order_bits=%d)" % (
            self.name,
            self.params.q.bit_length(),
            self.order.bit_length(),
        )


class MumfordDivisor(GroupElement):
    """A divisor class ``(u, v)`` on a :class:`GenusTwoJacobian`."""

    __slots__ = ("_group", "u", "v")

    def __init__(self, group: GenusTwoJacobian, u: Poly, v: Poly):
        self._group = group
        self.u = u
        self.v = v

    @property
    def group(self) -> GenusTwoJacobian:
        return self._group

    @property
    def weight(self) -> int:
        """The weight (degree of u): 0 for identity, 1 or 2 otherwise."""
        return self.u.degree

    def _check(self, other: "MumfordDivisor") -> None:
        if other._group.params != self._group.params:
            raise GroupError("divisors on different Jacobians")

    def __mul__(self, other: GroupElement) -> "MumfordDivisor":
        if not isinstance(other, MumfordDivisor):
            return NotImplemented
        self._check(other)
        u, v = self._group._cantor_add((self.u, self.v), (other.u, other.v))
        return MumfordDivisor(self._group, u, v)

    def inverse(self) -> "MumfordDivisor":
        if self.is_identity():
            return self
        return MumfordDivisor(self._group, self.u, (-self.v) % self.u)

    def __pow__(self, exponent: int) -> "MumfordDivisor":
        g = self._group
        e = exponent % g.order
        if e == 0 or self.is_identity():
            return g.identity()
        result: Optional[Tuple[Poly, Poly]] = None
        base = (self.u, self.v)
        while e:
            if e & 1:
                result = base if result is None else g._cantor_add(result, base)
            e >>= 1
            if e:
                base = g._cantor_add(base, base)
        assert result is not None
        return MumfordDivisor(g, result[0], result[1])

    def is_identity(self) -> bool:
        return self.u.degree == 0

    def to_bytes(self) -> bytes:
        w = self._group._coord_len
        deg = max(self.u.degree, 0)
        u0 = int(self.u.coefficient(0)) if deg >= 1 else 0
        u1 = int(self.u.coefficient(1)) if deg == 2 else 0
        v0 = int(self.v.coefficient(0))
        v1 = int(self.v.coefficient(1))
        return (
            bytes([deg])
            + u0.to_bytes(w, "big")
            + u1.to_bytes(w, "big")
            + v0.to_bytes(w, "big")
            + v1.to_bytes(w, "big")
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, MumfordDivisor):
            return NotImplemented
        return (
            self._group.params == other._group.params
            and self.u == other.u
            and self.v == other.v
        )

    def __hash__(self) -> int:
        return hash(("MumfordDivisor", self._group.params.name, self.u, self.v))

    def __repr__(self) -> str:
        return "MumfordDivisor(u=%r, v=%r)" % (self.u, self.v)
