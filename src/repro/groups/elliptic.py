"""Short-Weierstrass elliptic-curve groups.

Affine points on ``y^2 = x^3 + ax + b`` over a prime field, with scalar
multiplication performed internally in Jacobian projective coordinates to
avoid per-step modular inversions.  All shipped parameter sets have prime
order (cofactor 1), so every non-identity point is a generator -- which is
what :class:`~repro.crypto.pedersen.PedersenParams` requires.

This is the fastest backend in pure Python and the default for the OCBE
protocol layer; the genus-2 backend reproduces the paper's exact setup.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from repro.errors import GroupError, InvalidParameterError, NotOnCurveError
from repro.groups import _native
from repro.groups.base import CyclicGroup, GroupElement
from repro.mathx.modular import modinv, modsqrt
from repro.errors import NoSquareRootError

__all__ = ["CurveParams", "EllipticCurveGroup", "ECPoint"]

_INFINITY_BYTE = b"\x00"
_UNCOMPRESSED_BYTE = b"\x04"


@dataclass(frozen=True)
class CurveParams:
    """Domain parameters of a prime-order short-Weierstrass curve."""

    name: str
    p: int          # field modulus
    a: int          # curve coefficient a
    b: int          # curve coefficient b
    gx: int         # base point x
    gy: int         # base point y
    n: int          # (prime) group order

    def validate(self) -> None:
        """Sanity-check the parameter set (discriminant, base point)."""
        if (4 * pow(self.a, 3, self.p) + 27 * pow(self.b, 2, self.p)) % self.p == 0:
            raise InvalidParameterError("singular curve (zero discriminant)")
        lhs = (self.gy * self.gy) % self.p
        rhs = (self.gx * self.gx * self.gx + self.a * self.gx + self.b) % self.p
        if lhs != rhs:
            raise InvalidParameterError("base point is not on the curve")


class EllipticCurveGroup(CyclicGroup):
    """The group of rational points of a prime-order curve."""

    __slots__ = ("params", "_coord_len", "_pn", "_an")

    def __init__(self, params: CurveParams, check: bool = True):
        if check:
            params.validate()
        self.params = params
        self._coord_len = (params.p.bit_length() + 7) // 8
        # Field constants pre-wrapped for the active big-integer backend
        # (gmpy2 mpz when available, plain int otherwise): every modular
        # reduction against them promotes the whole Jacobian kernel to
        # native arithmetic without changing a single computed value.
        self._pn = _native.mpz(params.p)
        self._an = _native.mpz(params.a)

    # -- CyclicGroup interface ----------------------------------------------

    @property
    def name(self) -> str:
        return self.params.name

    @property
    def order(self) -> int:
        return self.params.n

    def identity(self) -> "ECPoint":
        return ECPoint(self, None)

    def generator(self) -> "ECPoint":
        return ECPoint(self, (self.params.gx, self.params.gy))

    def point(self, x: int, y: int) -> "ECPoint":
        """Construct and validate an affine point."""
        p = self.params.p
        x %= p
        y %= p
        if not self._on_curve(x, y):
            raise NotOnCurveError("(%d, %d) is not on %s" % (x, y, self.name))
        return ECPoint(self, (x, y))

    def _on_curve(self, x: int, y: int) -> bool:
        p = self.params.p
        return (y * y - (x * x * x + self.params.a * x + self.params.b)) % p == 0

    def lift_x(self, x: int, y_parity: int = 0) -> "ECPoint":
        """Point with the given x coordinate and y parity.

        Raises :class:`NoSquareRootError` when no point has this x.
        """
        p = self.params.p
        x %= p
        rhs = (x * x * x + self.params.a * x + self.params.b) % p
        y = modsqrt(rhs, p)
        if y % 2 != y_parity % 2:
            y = p - y
        return ECPoint(self, (x, y))

    def hash_to_element(self, tag: bytes) -> "ECPoint":
        counter = 0
        while True:
            x = self._hash_counter_stream(tag, counter, self._coord_len + 8)
            x %= self.params.p
            try:
                candidate = self.lift_x(x)
            except NoSquareRootError:
                counter += 1
                continue
            if not candidate.is_identity():
                return candidate
            counter += 1

    def element_from_bytes(self, data: bytes) -> "ECPoint":
        if data == _INFINITY_BYTE:
            return self.identity()
        expected = 1 + 2 * self._coord_len
        if len(data) != expected or data[:1] != _UNCOMPRESSED_BYTE:
            raise GroupError("malformed point encoding")
        x = int.from_bytes(data[1 : 1 + self._coord_len], "big")
        y = int.from_bytes(data[1 + self._coord_len :], "big")
        return self.point(x, y)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, EllipticCurveGroup) and other.params == self.params

    def __hash__(self) -> int:
        return hash(("EllipticCurveGroup", self.params))

    # -- Jacobian-coordinate kernels (internal) ------------------------------

    def _jac_double(
        self, pt: Tuple[int, int, int]
    ) -> Tuple[int, int, int]:
        x, y, z = pt
        p = self._pn
        if z == 0 or y == 0:
            return (1, 1, 0)
        y2 = (y * y) % p
        s = (4 * x * y2) % p
        z2 = (z * z) % p
        m = (3 * x * x + self._an * z2 * z2) % p
        x3 = (m * m - 2 * s) % p
        y3 = (m * (s - x3) - 8 * y2 * y2) % p
        z3 = (2 * y * z) % p
        return (x3, y3, z3)

    def _jac_add(
        self, p1: Tuple[int, int, int], p2: Tuple[int, int, int]
    ) -> Tuple[int, int, int]:
        if p1[2] == 0:
            return p2
        if p2[2] == 0:
            return p1
        p = self._pn
        x1, y1, z1 = p1
        x2, y2, z2 = p2
        z1z1 = (z1 * z1) % p
        z2z2 = (z2 * z2) % p
        u1 = (x1 * z2z2) % p
        u2 = (x2 * z1z1) % p
        s1 = (y1 * z2z2 * z2) % p
        s2 = (y2 * z1z1 * z1) % p
        if u1 == u2:
            if s1 != s2:
                return (1, 1, 0)
            return self._jac_double(p1)
        h = (u2 - u1) % p
        r = (s2 - s1) % p
        h2 = (h * h) % p
        h3 = (h2 * h) % p
        u1h2 = (u1 * h2) % p
        x3 = (r * r - h3 - 2 * u1h2) % p
        y3 = (r * (u1h2 - x3) - s1 * h3) % p
        z3 = (h * z1 * z2) % p
        return (x3, y3, z3)

    def _jac_to_affine(
        self, pt: Tuple[int, int, int]
    ) -> Optional[Tuple[int, int]]:
        x, y, z = pt
        if z == 0:
            return None
        p = self._pn
        zinv = _native.invert(z, p)
        zinv2 = (zinv * zinv) % p
        # int() at the boundary: affine coordinates (and therefore every
        # serialized byte and hash input) are always Python ints, keeping
        # the two backends byte-identical by construction.
        return (int(x * zinv2 % p), int(y * zinv2 * zinv % p))


class ECPoint(GroupElement):
    """A point on an :class:`EllipticCurveGroup` (None = point at infinity)."""

    __slots__ = ("_group", "xy")

    def __init__(self, group: EllipticCurveGroup, xy: Optional[Tuple[int, int]]):
        self._group = group
        self.xy = xy

    @property
    def group(self) -> EllipticCurveGroup:
        return self._group

    @property
    def x(self) -> Optional[int]:
        """Affine x coordinate (None at infinity)."""
        return None if self.xy is None else self.xy[0]

    @property
    def y(self) -> Optional[int]:
        """Affine y coordinate (None at infinity)."""
        return None if self.xy is None else self.xy[1]

    def _check(self, other: "ECPoint") -> None:
        if other._group.params != self._group.params:
            raise GroupError("points on different curves")

    def __mul__(self, other: GroupElement) -> "ECPoint":
        """Group operation (point addition, multiplicative notation)."""
        if not isinstance(other, ECPoint):
            return NotImplemented
        self._check(other)
        if self.xy is None:
            return other
        if other.xy is None:
            return self
        g = self._group
        p = g.params.p
        x1, y1 = self.xy
        x2, y2 = other.xy
        if x1 == x2:
            if (y1 + y2) % p == 0:
                return ECPoint(g, None)
            # doubling
            slope = (3 * x1 * x1 + g.params.a) * modinv(2 * y1, p) % p
        else:
            slope = (y2 - y1) * modinv((x2 - x1) % p, p) % p
        x3 = (slope * slope - x1 - x2) % p
        y3 = (slope * (x1 - x3) - y1) % p
        return ECPoint(g, (x3, y3))

    def inverse(self) -> "ECPoint":
        if self.xy is None:
            return self
        x, y = self.xy
        return ECPoint(self._group, (x, (-y) % self._group.params.p))

    def __pow__(self, exponent: int) -> "ECPoint":
        """Scalar multiplication via Jacobian double-and-add."""
        g = self._group
        e = exponent % g.params.n
        if e == 0 or self.xy is None:
            return ECPoint(g, None)
        acc: Tuple[int, int, int] = (1, 1, 0)
        base: Tuple[int, int, int] = (
            _native.mpz(self.xy[0]),
            _native.mpz(self.xy[1]),
            1,
        )
        while e:
            if e & 1:
                acc = g._jac_add(acc, base)
            base = g._jac_double(base)
            e >>= 1
        affine = g._jac_to_affine(acc)
        return ECPoint(g, affine)

    def is_identity(self) -> bool:
        return self.xy is None

    def to_bytes(self) -> bytes:
        if self.xy is None:
            return _INFINITY_BYTE
        width = self._group._coord_len
        return (
            _UNCOMPRESSED_BYTE
            + self.xy[0].to_bytes(width, "big")
            + self.xy[1].to_bytes(width, "big")
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ECPoint):
            return NotImplemented
        return self._group.params == other._group.params and self.xy == other.xy

    def __hash__(self) -> int:
        return hash(("ECPoint", self._group.params.name, self.xy))

    def __repr__(self) -> str:
        if self.xy is None:
            return "ECPoint(infinity on %s)" % self._group.name
        return "ECPoint(x=%d..., %s)" % (self.xy[0] % 10**6, self._group.name)
