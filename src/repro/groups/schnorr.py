"""Schnorr groups: the subgroup of squares of ``Z_p^*`` for a safe prime.

For a safe prime ``p = 2q + 1`` the quadratic residues form a cyclic
subgroup of prime order ``q`` in which DDH (hence CDH and DL) is believed
hard.  This is the simplest backend satisfying the Pedersen commitment
requirements of Section IV-B of the paper and is convenient for tests: a
tiny toy group (p = 23) exercises every code path exhaustively.
"""

from __future__ import annotations


from repro.errors import GroupError, InvalidParameterError
from repro.groups.base import CyclicGroup, GroupElement
from repro.mathx.modular import modinv
from repro.mathx.primes import is_prime

__all__ = ["SchnorrGroup", "SchnorrElement"]


class SchnorrGroup(CyclicGroup):
    """Prime-order subgroup of squares modulo a safe prime ``p``."""

    __slots__ = ("p", "q", "_g", "_name", "_byte_len")

    def __init__(self, p: int, generator: int = 4, name: str = "schnorr",
                 check: bool = True):
        """Create the group of squares mod the safe prime ``p``.

        ``generator`` must be a nonidentity square mod ``p``; the default 4
        (= 2**2) works for every safe prime > 5.
        """
        if check:
            if not is_prime(p):
                raise InvalidParameterError("p = %d is not prime" % p)
            if not is_prime((p - 1) // 2):
                raise InvalidParameterError("p = %d is not a safe prime" % p)
        self.p = p
        self.q = (p - 1) // 2
        g = generator % p
        if g in (0, 1, p - 1):
            raise InvalidParameterError("degenerate generator %d" % generator)
        if pow(g, self.q, p) != 1:
            raise InvalidParameterError(
                "generator %d is not in the order-%d subgroup" % (generator, self.q)
            )
        self._g = g
        self._name = name
        self._byte_len = (p.bit_length() + 7) // 8

    # -- CyclicGroup interface ----------------------------------------------

    @property
    def name(self) -> str:
        return self._name

    @property
    def order(self) -> int:
        return self.q

    def identity(self) -> "SchnorrElement":
        return SchnorrElement(self, 1)

    def generator(self) -> "SchnorrElement":
        return SchnorrElement(self, self._g)

    def element(self, value: int) -> "SchnorrElement":
        """Wrap an integer, validating subgroup membership."""
        value %= self.p
        if value == 0 or pow(value, self.q, self.p) != 1:
            raise GroupError("%d is not in the order-%d subgroup" % (value, self.q))
        return SchnorrElement(self, value)

    def hash_to_element(self, tag: bytes) -> "SchnorrElement":
        counter = 0
        while True:
            v = self._hash_counter_stream(tag, counter, self._byte_len + 8) % self.p
            candidate = (v * v) % self.p  # squaring lands in the subgroup
            if candidate not in (0, 1):
                return SchnorrElement(self, candidate)
            counter += 1

    def element_from_bytes(self, data: bytes) -> "SchnorrElement":
        if len(data) != self._byte_len:
            raise GroupError(
                "expected %d bytes, got %d" % (self._byte_len, len(data))
            )
        return self.element(int.from_bytes(data, "big"))

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, SchnorrGroup)
            and other.p == self.p
            and other._g == self._g
        )

    def __hash__(self) -> int:
        return hash(("SchnorrGroup", self.p, self._g))


class SchnorrElement(GroupElement):
    """An element of a :class:`SchnorrGroup`, stored as ``1 <= v < p``."""

    __slots__ = ("_group", "value")

    def __init__(self, group: SchnorrGroup, value: int):
        self._group = group
        self.value = value % group.p

    @property
    def group(self) -> SchnorrGroup:
        return self._group

    def __mul__(self, other: GroupElement) -> "SchnorrElement":
        if not isinstance(other, SchnorrElement):
            return NotImplemented
        if other._group.p != self._group.p:
            raise GroupError("elements of different Schnorr groups")
        return SchnorrElement(self._group, self.value * other.value)

    def inverse(self) -> "SchnorrElement":
        return SchnorrElement(self._group, modinv(self.value, self._group.p))

    def __pow__(self, exponent: int) -> "SchnorrElement":
        e = exponent % self._group.q
        return SchnorrElement(self._group, pow(self.value, e, self._group.p))

    def is_identity(self) -> bool:
        return self.value == 1

    def to_bytes(self) -> bytes:
        return self.value.to_bytes(self._group._byte_len, "big")

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, SchnorrElement):
            return NotImplemented
        return self._group.p == other._group.p and self.value == other.value

    def __hash__(self) -> int:
        return hash(("SchnorrElement", self._group.p, self.value))

    def __repr__(self) -> str:
        return "SchnorrElement(%d mod %d)" % (self.value, self._group.p)
