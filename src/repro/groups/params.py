"""Named parameter sets and a registry of group backends.

``PAPER_GENUS2`` carries the exact curve printed in Section VII of the
paper: the Gaudry--Schost genus-2 curve over ``F_q`` with
``q = 5*10**24 + 8503491`` whose Jacobian order is the 165-bit prime
``p = 24999999999994130438600999402209463966197516075699``.  Both primality
claims and the Hasse--Weil consistency are verified by the test suite.

The Schnorr safe primes were generated with this library's own
``random_safe_prime`` (seed ``0xC0FFEE``) and are re-verified in tests.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.errors import InvalidParameterError
from repro.groups.base import CyclicGroup
from repro.groups.elliptic import CurveParams, EllipticCurveGroup
from repro.groups.jacobian import GenusTwoJacobian, JacobianParams
from repro.groups.schnorr import SchnorrGroup

__all__ = [
    "NIST_P192",
    "NIST_P256",
    "SECP256K1",
    "PAPER_GENUS2",
    "SCHNORR_256_PRIME",
    "SCHNORR_512_PRIME",
    "TOY_SCHNORR_PRIME",
    "get_group",
    "default_group",
    "list_groups",
]

# ---------------------------------------------------------------------------
# Elliptic curves (all cofactor 1, prime order)
# ---------------------------------------------------------------------------

NIST_P192 = CurveParams(
    name="nist-p192",
    p=0xFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFEFFFFFFFFFFFFFFFF,
    a=-3,
    b=0x64210519E59C80E70FA7E9AB72243049FEB8DEECC146B9B1,
    gx=0x188DA80EB03090F67CBF20EB43A18800F4FF0AFD82FF1012,
    gy=0x07192B95FFC8DA78631011ED6B24CDD573F977A11E794811,
    n=0xFFFFFFFFFFFFFFFFFFFFFFFF99DEF836146BC9B1B4D22831,
)

NIST_P256 = CurveParams(
    name="nist-p256",
    p=0xFFFFFFFF00000001000000000000000000000000FFFFFFFFFFFFFFFFFFFFFFFF,
    a=-3,
    b=0x5AC635D8AA3A93E7B3EBBD55769886BC651D06B0CC53B0F63BCE3C3E27D2604B,
    gx=0x6B17D1F2E12C4247F8BCE6E563A440F277037D812DEB33A0F4A13945D898C296,
    gy=0x4FE342E2FE1A7F9B8EE7EB4A7C0F9E162BCE33576B315ECECBB6406837BF51F5,
    n=0xFFFFFFFF00000000FFFFFFFFFFFFFFFFBCE6FAADA7179E84F3B9CAC2FC632551,
)

SECP256K1 = CurveParams(
    name="secp256k1",
    p=0xFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFEFFFFFC2F,
    a=0,
    b=7,
    gx=0x79BE667EF9DCBBAC55A06295CE870B07029BFCDB2DCE28D959F2815B16F81798,
    gy=0x483ADA7726A3C4655DA4FBFC0E1108A8FD17B448A68554199C47D08FFB10D4B8,
    n=0xFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFEBAAEDCE6AF48A03BBFD25E8CD0364141,
)

# ---------------------------------------------------------------------------
# The paper's genus-2 curve (Gaudry & Schost, EUROCRYPT 2004)
# ---------------------------------------------------------------------------

PAPER_GENUS2 = JacobianParams(
    name="paper-genus2",
    q=5 * 10**24 + 8503491,
    f_coeffs=(
        4797309959708489673059350,   # f0
        2547674715952929717899918,   # f1
        226591355295993102902116,    # f2
        2682810822839355644900736,   # f3
        0,                           # f4
        1,                           # x^5
    ),
    order=24999999999994130438600999402209463966197516075699,
)

# ---------------------------------------------------------------------------
# Safe primes for Schnorr groups (generated with random_safe_prime, seed
# 0xC0FFEE; primality re-verified in tests/groups/test_params.py)
# ---------------------------------------------------------------------------

SCHNORR_256_PRIME = (
    72757736075102843898101031069858837601921341236159755033219945696461260084459
)
SCHNORR_512_PRIME = int(
    "104434408193625296319608743409752901226364924380182439130499041252805"
    "08805505374103336242645957235964544991327159833360275824848686510628125"
    "348155376153967".replace("\n", "")
)

#: Tiny toy group (p = 23 = 2*11 + 1) for exhaustive unit tests.
TOY_SCHNORR_PRIME = 23

# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------

_REGISTRY: Dict[str, Callable[[], CyclicGroup]] = {
    "nist-p192": lambda: EllipticCurveGroup(NIST_P192),
    "nist-p256": lambda: EllipticCurveGroup(NIST_P256),
    "secp256k1": lambda: EllipticCurveGroup(SECP256K1),
    "paper-genus2": lambda: GenusTwoJacobian(PAPER_GENUS2),
    "schnorr-256": lambda: SchnorrGroup(SCHNORR_256_PRIME, name="schnorr-256"),
    "schnorr-512": lambda: SchnorrGroup(SCHNORR_512_PRIME, name="schnorr-512"),
    "toy-schnorr": lambda: SchnorrGroup(TOY_SCHNORR_PRIME, name="toy-schnorr"),
}

_CACHE: Dict[str, CyclicGroup] = {}


def get_group(name: str) -> CyclicGroup:
    """Look up a group backend by registry name (instances are cached)."""
    if name not in _REGISTRY:
        raise InvalidParameterError(
            "unknown group %r; available: %s" % (name, ", ".join(sorted(_REGISTRY)))
        )
    if name not in _CACHE:
        _CACHE[name] = _REGISTRY[name]()
    return _CACHE[name]


def default_group() -> CyclicGroup:
    """The default backend for protocol layers (fast EC curve).

    The paper's own backend is available as ``get_group("paper-genus2")``;
    every protocol accepts any backend, and the benchmark harness runs both.
    """
    return get_group("nist-p192")


def list_groups() -> List[str]:
    """Names of all registered parameter sets."""
    return sorted(_REGISTRY)
