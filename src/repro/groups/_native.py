"""Optional native big-integer backend (gmpy2) for the group kernels.

Pure Python remains the default and the correctness reference: every
arithmetic path must produce byte-identical group elements with or
without the native backend, because all operations here are *exact*
integer arithmetic -- gmpy2 only changes the speed, never the value.

Detection is automatic at import time.  Set ``REPRO_NATIVE_MATH=0`` in
the environment (before the first ``repro.groups`` import) to force the
pure-Python path even when gmpy2 is installed -- the escape hatch used
by the differential test suite and by CI to pin the backend per matrix
leg.

The exported surface is deliberately tiny so callers never see gmpy2
types in their public API:

* ``mpz``     -- ``gmpy2.mpz`` or ``int``; wrap hot-loop operands once.
* ``invert``  -- modular inverse on whatever type ``mpz`` produces.
* ``HAVE_GMPY2`` / ``ACTIVE`` / ``BACKEND`` -- introspection for tests,
  benchmarks and artifact labeling.

Conversion discipline: wrap values entering a hot loop with ``mpz`` and
convert back with ``int()`` at the function boundary, so serialized
bytes and hashes only ever see Python ints.
"""

from __future__ import annotations

import os

from repro.mathx.modular import modinv

__all__ = ["HAVE_GMPY2", "ACTIVE", "BACKEND", "mpz", "invert", "native_disabled"]


def native_disabled() -> bool:
    """True when ``REPRO_NATIVE_MATH`` explicitly opts out of gmpy2."""
    flag = os.environ.get("REPRO_NATIVE_MATH", "").strip()
    return flag in {"0", "no", "off", "false"}


try:  # pragma: no cover - exercised only where gmpy2 is installed
    import gmpy2 as _gmpy2

    HAVE_GMPY2 = True
except ImportError:
    _gmpy2 = None
    HAVE_GMPY2 = False

ACTIVE = HAVE_GMPY2 and not native_disabled()

if ACTIVE:  # pragma: no cover - exercised only where gmpy2 is installed
    BACKEND = "gmpy2"
    mpz = _gmpy2.mpz

    def invert(a, m):
        """Modular inverse via gmpy2 (same contract as :func:`modinv`)."""
        return _gmpy2.invert(a, m)

else:
    BACKEND = "python"
    mpz = int

    def invert(a, m):
        """Modular inverse via the pure-Python extended Euclid."""
        return modinv(a, m)
