"""Fixed-base exponentiation tables (windowed precomputation).

The OCBE registration path exponentiates the *same* two Pedersen bases
``g`` and ``h`` thousands of times per join wave (one commitment per
attribute bit, one envelope component per bit position), and the Schnorr
signer exponentiates the group generator once per token.  A classic
windowed fixed-base table turns each of those exponentiations from
``~1.5 * bits`` group operations (double-and-add) into ``~bits / w``
additions with **zero doublings**, because every power of two the
double-and-add ladder would reach is precomputed once:

    table[i][j - 1] = base ** (j * 2**(w * i))      j in 1 .. 2**w - 1

``pow(e)`` then splits ``e`` into ``w``-bit digits and multiplies the
matching table entry per nonzero digit.  For the default 192-bit curve
with ``w = 5`` that is ~39 additions instead of ~280 mixed operations,
a 5-7x speedup before any native-backend gains.

Tables are **deterministic** (a pure function of the base point and the
window size), hold only *public* bases -- never secrets, blindings, or
per-session state -- and are **never serialized**: recovery rebuilds
them from the group parameters, and :meth:`FixedBaseTable.__reduce__`
enforces that invariant by refusing to pickle.

For elliptic-curve groups the accumulation loop runs inline here in
Jacobian coordinates with mixed (affine-table) additions, rather than
delegating to ``ECPoint.__mul__``: table rows are affine (``Z = 1``),
which saves four field multiplications per addition, and keeping the
loop in one frame removes the per-operation Python call overhead that
dominated the profiled join wave.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.groups._native import invert, mpz
from repro.groups.base import CyclicGroup, GroupElement
from repro.groups.elliptic import ECPoint

__all__ = ["FixedBaseTable", "fixed_base_table", "generator_table", "window_size"]


def window_size(order_bits: int) -> int:
    """Window width for a given exponent size.

    Wider windows trade table build time and memory for fewer additions
    per exponentiation; the break-even favors ``w = 5`` once exponents
    reach real cryptographic sizes.  Tiny (toy/test) orders get narrow
    windows so the table does not dwarf the group itself.
    """
    if order_bits >= 192:
        return 5
    if order_bits >= 96:
        return 4
    return 3


class FixedBaseTable:
    """Windowed fixed-base table for one public base element.

    Build cost is ``~(2**w) * ceil(bits / w)`` group operations, paid
    once per (base, process); every subsequent :meth:`pow` costs at most
    ``ceil(bits / w)`` group additions.
    """

    __slots__ = ("base", "window", "_rows", "_mask", "_ec_rows", "_order")

    def __init__(self, base: GroupElement, window: Optional[int] = None):
        group = base.group
        self._order = group.order
        bits = self._order.bit_length()
        self.window = window if window is not None else window_size(bits)
        if self.window < 1:
            raise ValueError("window must be >= 1")
        self.base = base
        self._mask = (1 << self.window) - 1
        self._rows = None
        self._ec_rows = None
        if base.is_identity():
            return  # every power is the identity; pow short-circuits
        if isinstance(base, ECPoint) and self._order > (1 << self.window):
            # EC fast path: build in Jacobian coordinates with a single
            # Montgomery batch inversion, store affine rows pre-wrapped
            # for the native backend.  Prime order > 2**w guarantees no
            # entry is the identity (its exponent j * 2**(w*i) is never
            # divisible by the order), so every entry has affine coords.
            self._ec_rows = self._build_ec(base, base.group, bits)
        else:
            self._rows = self._build_generic(base, bits)

    def _build_generic(self, base: GroupElement, bits: int) -> List[List[GroupElement]]:
        rows: List[List[GroupElement]] = []
        span = 1 << self.window
        start = base  # base ** (2 ** (window * i))
        for _ in range((bits + self.window - 1) // self.window):
            row = [start]
            acc = start
            for _ in range(2, span):
                acc = acc * start
                row.append(acc)
            rows.append(row)
            start = row[-1] * start  # base ** (span * 2**(w*i))
        return rows

    def _build_ec(self, base: ECPoint, group, bits: int) -> List[List[Tuple]]:
        span = 1 << self.window
        p = group._pn
        jac: List[Tuple] = []
        start = (mpz(base.xy[0]), mpz(base.xy[1]), mpz(1))
        for _ in range((bits + self.window - 1) // self.window):
            jac.append(start)
            acc = start
            for _ in range(2, span):
                acc = group._jac_add(acc, start)
                jac.append(acc)
            for _ in range(self.window):  # start *= 2**window
                start = group._jac_double(start)
        # Montgomery batch normalization: one modular inversion for the
        # whole table instead of one per entry.
        prefix = []
        acc = mpz(1)
        for _, _, z in jac:
            acc = acc * z % p
            prefix.append(acc)
        inv = invert(acc, p)
        affine: List[Tuple] = [None] * len(jac)
        for i in range(len(jac) - 1, -1, -1):
            x, y, z = jac[i]
            zinv = inv * (prefix[i - 1] if i else 1) % p
            inv = inv * z % p
            zinv2 = zinv * zinv % p
            affine[i] = (x * zinv2 % p, y * zinv2 * zinv % p)
        entries_per_row = span - 1
        return [
            affine[i : i + entries_per_row]
            for i in range(0, len(affine), entries_per_row)
        ]

    def pow(self, exponent: int) -> GroupElement:
        """``base ** exponent`` (exponent reduced mod the group order)."""
        e = exponent % self._order
        if e == 0 or (self._rows is None and self._ec_rows is None):
            return self.base.group.identity()
        if self._ec_rows is not None:
            return self._pow_ec(e)
        acc: Optional[GroupElement] = None
        i = 0
        w = self.window
        mask = self._mask
        rows = self._rows
        while e:
            digit = e & mask
            if digit:
                entry = rows[i][digit - 1]
                acc = entry if acc is None else acc * entry
            e >>= w
            i += 1
        return acc if acc is not None else self.base.group.identity()

    def _pow_ec(self, e: int) -> ECPoint:
        """Inline Jacobian accumulation over affine table rows.

        Mixed addition (``Z2 = 1``) against precomputed affine entries;
        the rare equal-X cases (doubling, cancellation) fall back to the
        group's own kernels for correctness on small test orders.
        """
        group = self.base.group
        p = group._pn
        rows = self._ec_rows
        w = self.window
        mask = self._mask
        ax = ay = mpz(1)
        az = mpz(0)
        i = 0
        while e:
            digit = e & mask
            if digit:
                x2, y2 = rows[i][digit - 1]
                if not az:
                    ax, ay, az = x2, y2, mpz(1)
                else:
                    z1z1 = az * az % p
                    u2 = x2 * z1z1 % p
                    s2 = y2 * z1z1 * az % p
                    if ax == u2:
                        if ay != s2:
                            ax, ay, az = mpz(1), mpz(1), mpz(0)
                        else:
                            ax, ay, az = group._jac_double((ax, ay, az))
                    else:
                        h = (u2 - ax) % p
                        r = (s2 - ay) % p
                        h2 = h * h % p
                        h3 = h2 * h % p
                        u1h2 = ax * h2 % p
                        x3 = (r * r - h3 - 2 * u1h2) % p
                        ax, ay, az = x3, (r * (u1h2 - x3) - ay * h3) % p, h * az % p
            e >>= w
            i += 1
        return ECPoint(group, group._jac_to_affine((ax, ay, az)))

    def __reduce__(self):
        raise TypeError(
            "FixedBaseTable is never serialized; rebuild it from the "
            "group parameters after recovery"
        )

    def __repr__(self) -> str:
        return "FixedBaseTable(group=%s, window=%d)" % (
            self.base.group.name,
            self.window,
        )


def fixed_base_table(
    base: GroupElement, window: Optional[int] = None
) -> FixedBaseTable:
    """Build a :class:`FixedBaseTable` for ``base``."""
    return FixedBaseTable(base, window=window)


# One table per (group, base bytes) per process.  Groups from the
# params registry are cached singletons and hashable, so this cache is
# shared by every PedersenParams / Schnorr key pair over the same
# group -- the build cost is paid once, not once per protocol object.
_SHARED: dict = {}


def shared_table(base: GroupElement) -> FixedBaseTable:
    """Process-wide cached table for a public base (e.g. a generator)."""
    key: Tuple[CyclicGroup, bytes] = (base.group, base.to_bytes())
    table = _SHARED.get(key)
    if table is None:
        table = FixedBaseTable(base)
        _SHARED[key] = table
    return table


def generator_table(group: CyclicGroup) -> FixedBaseTable:
    """Process-wide cached table for the group's canonical generator."""
    return shared_table(group.generator())
