"""Cyclic-group backends for commitments and signatures.

The paper instantiates Pedersen commitments in the Jacobian of a genus-2
hyperelliptic curve (via the G2HEC C++ library).  This package provides that
exact construction plus two interchangeable alternatives:

* :class:`~repro.groups.schnorr.SchnorrGroup` -- prime-order subgroup of
  ``Z_p^*`` for a safe prime ``p`` (simplest, easiest to audit),
* :class:`~repro.groups.elliptic.EllipticCurveGroup` -- short-Weierstrass
  curves (NIST P-192/P-256, secp256k1); the fastest backend in pure Python,
* :class:`~repro.groups.jacobian.GenusTwoJacobian` -- Mumford-represented
  divisor classes with Cantor's algorithm, shipped with the exact
  Gaudry--Schost curve printed in Section VII of the paper.

All backends expose the common :class:`~repro.groups.base.CyclicGroup`
interface (multiplicative notation, prime order) so every higher layer is
backend-agnostic.
"""

from repro.groups.base import CyclicGroup, GroupElement
from repro.groups.elliptic import CurveParams, EllipticCurveGroup
from repro.groups.jacobian import GenusTwoJacobian, JacobianParams
from repro.groups.params import (
    NIST_P192,
    NIST_P256,
    PAPER_GENUS2,
    SECP256K1,
    default_group,
    get_group,
    list_groups,
)
from repro.groups.precompute import (
    FixedBaseTable,
    fixed_base_table,
    generator_table,
    window_size,
)
from repro.groups.schnorr import SchnorrGroup

__all__ = [
    "CyclicGroup",
    "GroupElement",
    "FixedBaseTable",
    "fixed_base_table",
    "generator_table",
    "window_size",
    "SchnorrGroup",
    "EllipticCurveGroup",
    "CurveParams",
    "GenusTwoJacobian",
    "JacobianParams",
    "NIST_P192",
    "NIST_P256",
    "SECP256K1",
    "PAPER_GENUS2",
    "default_group",
    "get_group",
    "list_groups",
]
