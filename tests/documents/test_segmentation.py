"""Tests for policy-driven segmentation plans."""

import pytest

from repro.documents.model import Document
from repro.documents.segmentation import segment
from repro.errors import DocumentError
from repro.policy.acp import parse_policy
from repro.workloads.ehr import build_ehr_document, build_ehr_policies


def doc():
    return Document.of(
        "d", {"s1": b"1", "s2": b"2", "s3": b"3", "s4": b"4"}
    )


class TestSegment:
    def test_grouping_by_configuration(self):
        policies = [
            parse_policy("a = 1", ["s1", "s2"], "d"),
            parse_policy("b = 2", ["s3"], "d"),
        ]
        plan = segment(doc(), policies)
        ids = {name: plan.configuration_of(name)[0] for name in
               ("s1", "s2", "s3", "s4")}
        assert ids["s1"] == ids["s2"]          # same configuration
        assert ids["s3"] != ids["s1"]
        assert ids["s4"] == "pc0"              # empty configuration

    def test_empty_config_last(self):
        policies = [parse_policy("a = 1", ["s1"], "d")]
        plan = segment(doc(), policies)
        assert plan.groups[-1][0] == "pc0"
        assert plan.groups[-1][1].is_empty

    def test_other_documents_ignored(self):
        policies = [parse_policy("a = 1", ["other"], "not-d")]
        plan = segment(doc(), policies)
        assert all(config.is_empty for _, config, _ in plan.groups)

    def test_unknown_subdocument_rejected(self):
        policies = [parse_policy("a = 1", ["ghost"], "d")]
        with pytest.raises(DocumentError):
            segment(doc(), policies)

    def test_configuration_of_unknown(self):
        plan = segment(doc(), [])
        with pytest.raises(DocumentError):
            plan.configuration_of("ghost")

    def test_non_empty_groups(self):
        policies = [parse_policy("a = 1", ["s1"], "d")]
        plan = segment(doc(), policies)
        non_empty = plan.non_empty_groups()
        assert len(non_empty) == 1
        assert non_empty[0][2] == ("s1",)


class TestEhrPlan:
    """The Example-4 plan: 5 distinct non-empty configurations + Pc6."""

    def test_group_count(self):
        plan = segment(build_ehr_document(), build_ehr_policies())
        non_empty = plan.non_empty_groups()
        assert len(non_empty) == 5
        assert len(plan.groups) == 6

    def test_physical_exams_and_plan_share_key_group(self):
        plan = segment(build_ehr_document(), build_ehr_policies())
        pe_id, _ = plan.configuration_of("PhysicalExams")
        plan_id, _ = plan.configuration_of("Plan")
        assert pe_id == plan_id

    def test_rest_is_empty_config(self):
        plan = segment(build_ehr_document(), build_ehr_policies())
        rest_id, rest_config = plan.configuration_of("_rest")
        assert rest_id == "pc0"
        assert rest_config.is_empty
