"""Fuzz the deserializers: random/mutated bytes must never crash with
anything other than SerializationError (robustness against malformed
broadcasts)."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.documents.package import BroadcastPackage
from repro.errors import SerializationError
from repro.gkm.acv import FAST_FIELD, AcvBgkm, AcvHeader
from repro.gkm.buckets import BucketedHeader
from repro.gkm.marker import MarkerHeader


@given(st.binary(max_size=200))
def test_package_fuzz_random(data):
    try:
        BroadcastPackage.from_bytes(data)
    except SerializationError:
        pass


@given(st.binary(max_size=120))
def test_acv_header_fuzz_random(data):
    try:
        AcvHeader.from_bytes(data)
    except SerializationError:
        pass


@given(st.binary(max_size=120))
def test_bucketed_header_fuzz_random(data):
    try:
        BucketedHeader.from_bytes(data)
    except SerializationError:
        pass


@given(st.binary(max_size=120))
def test_marker_header_fuzz_random(data):
    try:
        MarkerHeader.from_bytes(data)
    except SerializationError:
        pass


class TestResourceExhaustion:
    """Regression tests: attacker-controlled counts must never allocate
    unbounded memory (originally found by the random fuzzers above as an
    OOM when a mutated header claimed a 2^32-entry zero run)."""

    def test_acv_huge_zero_run_rejected(self):
        rng = random.Random(0)
        gkm = AcvBgkm(FAST_FIELD)
        _, header = gkm.generate([(b"css",)], n_max=3, rng=rng)
        raw = bytearray(header.to_bytes())
        # Forge the X arity and a matching giant zero-run claim.
        import struct

        q_len = (FAST_FIELD.p.bit_length() + 7) // 8
        forged = raw[: 4 + 2 + q_len]  # magic + q_len + q
        forged += struct.pack(">IH", 0, 0)          # no nonces
        forged += struct.pack(">I", 0xFFFFFFFF)     # absurd X arity
        forged += b"\x00" + struct.pack(">I", 0xFFFFFFFF)  # giant zero run
        with pytest.raises(SerializationError):
            AcvHeader.from_bytes(bytes(forged))

    def test_marker_huge_count_rejected(self):
        import struct

        forged = b"MRK1" + struct.pack(">H", 0) + struct.pack(">I", 0xFFFFFFFF)
        with pytest.raises(SerializationError):
            MarkerHeader.from_bytes(forged)

    def test_bucketed_huge_count_rejected(self):
        import struct

        forged = b"BKT1" + struct.pack(">I", 0xFFFFFFFF)
        with pytest.raises(SerializationError):
            BucketedHeader.from_bytes(forged)


@settings(max_examples=40)
@given(position=st.integers(0, 10_000), delta=st.integers(1, 255))
def test_acv_header_fuzz_mutated(position, delta):
    """Bit-flip a *valid* header: parse must either fail cleanly or produce
    a structurally valid (if semantically wrong) header."""
    rng = random.Random(1)
    gkm = AcvBgkm(FAST_FIELD)
    _, header = gkm.generate([(b"css",)], n_max=3, rng=rng)
    raw = bytearray(header.to_bytes())
    raw[position % len(raw)] = (raw[position % len(raw)] + delta) % 256
    try:
        parsed = AcvHeader.from_bytes(bytes(raw))
    except SerializationError:
        return
    assert len(parsed.x) == parsed.capacity + 1 or parsed.capacity >= 0
