"""Serialization tests for broadcast packages."""


import pytest

from repro.documents.package import (
    BroadcastPackage,
    ConfigHeader,
    EncryptedSubdocument,
)
from repro.errors import SerializationError
from repro.gkm.acv import FAST_FIELD, AcvBgkm


def sample_package(rng):
    gkm = AcvBgkm(FAST_FIELD)
    _, acv = gkm.generate([(b"css",)], rng=rng)
    headers = (
        ConfigHeader(
            config_id="pc1",
            policies=(("role = doc",), ("role = nur", "level >= 59")),
            acv=acv,
        ),
        ConfigHeader(config_id="pc0", policies=(), acv=None),
    )
    subs = (
        EncryptedSubdocument(name="a", config_id="pc1", ciphertext=b"\x01" * 40),
        EncryptedSubdocument(name="b", config_id="pc0", ciphertext=b"\x02" * 10),
    )
    return BroadcastPackage(document="doc.xml", headers=headers, subdocuments=subs)


class TestRoundtrip:
    def test_full_roundtrip(self, rng):
        pkg = sample_package(rng)
        parsed = BroadcastPackage.from_bytes(pkg.to_bytes())
        assert parsed == pkg

    def test_empty_acv_header(self, rng):
        pkg = sample_package(rng)
        parsed = BroadcastPackage.from_bytes(pkg.to_bytes())
        assert parsed.header_for("pc0").acv is None
        assert parsed.header_for("pc1").acv is not None

    def test_unicode_names(self, rng):
        pkg = BroadcastPackage(
            document="docué.xml",
            headers=(ConfigHeader("pc0", (), None),),
            subdocuments=(
                EncryptedSubdocument("résumé", "pc0", b"x"),
            ),
        )
        assert BroadcastPackage.from_bytes(pkg.to_bytes()) == pkg

    def test_header_lookup_missing(self, rng):
        pkg = sample_package(rng)
        with pytest.raises(SerializationError):
            pkg.header_for("pc9")

    def test_byte_size_consistency(self, rng):
        pkg = sample_package(rng)
        assert pkg.byte_size() == len(pkg.to_bytes())
        assert 0 < pkg.header_overhead() < pkg.byte_size()


class TestMalformed:
    def test_bad_magic(self):
        with pytest.raises(SerializationError):
            BroadcastPackage.from_bytes(b"XXXX" + b"\x00" * 10)

    def test_truncated(self, rng):
        raw = sample_package(rng).to_bytes()
        for cut in (5, len(raw) // 2, len(raw) - 3):
            with pytest.raises(SerializationError):
                BroadcastPackage.from_bytes(raw[:cut])

    def test_empty_input(self):
        with pytest.raises(SerializationError):
            BroadcastPackage.from_bytes(b"")
