"""Tests for the document model and XML segmentation."""

import pytest

from repro.documents.model import REST, Document, Subdocument, document_from_xml
from repro.errors import DocumentError


class TestSubdocument:
    def test_basic(self):
        sub = Subdocument("a", b"content")
        assert sub.size == 7

    def test_empty_name_rejected(self):
        with pytest.raises(DocumentError):
            Subdocument("", b"x")


class TestDocument:
    def test_of_preserves_order(self):
        doc = Document.of("d", {"b": b"2", "a": b"1"})
        assert doc.subdocument_names() == ["b", "a"]

    def test_duplicate_names_rejected(self):
        with pytest.raises(DocumentError):
            Document("d", (Subdocument("a", b"1"), Subdocument("a", b"2")))

    def test_get(self):
        doc = Document.of("d", {"a": b"1"})
        assert doc.get("a").content == b"1"
        with pytest.raises(DocumentError):
            doc.get("missing")

    def test_sizes_and_iteration(self):
        doc = Document.of("d", {"a": b"12", "b": b"345"})
        assert doc.total_size == 5
        assert len(doc) == 2
        assert [s.name for s in doc] == ["a", "b"]


class TestXmlSegmentation:
    XML = "<root><a>alpha</a><b><c>inner</c></b><d>delta</d></root>"

    def test_marked_tags_extracted(self):
        doc = document_from_xml("doc", self.XML, ["a", "b"])
        assert doc.subdocument_names() == ["a", "b", REST]
        assert b"alpha" in doc.get("a").content
        assert b"inner" in doc.get("b").content

    def test_rest_excludes_marked(self):
        doc = document_from_xml("doc", self.XML, ["a", "b"])
        rest = doc.get(REST).content
        assert b"alpha" not in rest
        assert b"inner" not in rest
        assert b"delta" in rest

    def test_no_rest_option(self):
        doc = document_from_xml("doc", self.XML, ["a"], include_rest=False)
        assert doc.subdocument_names() == ["a"]

    def test_nested_tag_found(self):
        doc = document_from_xml("doc", self.XML, ["c"])
        assert b"inner" in doc.get("c").content

    def test_missing_tag_rejected(self):
        with pytest.raises(DocumentError):
            document_from_xml("doc", self.XML, ["zzz"])

    def test_invalid_xml_rejected(self):
        with pytest.raises(DocumentError):
            document_from_xml("doc", "<broken", ["a"])

    def test_root_tag_cannot_be_pruned(self):
        with pytest.raises(DocumentError):
            document_from_xml("doc", self.XML, ["root"])

    def test_doctest_example(self):
        doc = document_from_xml("d", "<a><b>x</b><c>y</c></a>", ["b"])
        assert doc.subdocument_names() == ["b", "_rest"]
