"""SIGKILL the networked publisher; restart it from ``--data-dir``.

The acceptance scenario for the durability layer: a publisher OS process
is killed without warning mid-lifecycle (registrations served, nothing
broadcast), restarted against the same broker from its data directory,
and the *still-running* subscribers decrypt the next broadcasts without
re-registering -- with the broker's byte accounting proving that the
entire recovery window carried nothing but multicast broadcast frames.
That is the paper's O(1)-rekey property, preserved across a crash.
"""

import json
import os
import signal
import subprocess
import sys


from repro.net.bootstrap import (
    build_identity_stack,
    build_subscriber,
    expected_registrations,
    load_scenario,
    read_bundle,
    write_bundle,
    write_json,
)
from repro.net.runtime import BrokerThread, pump_until, wait_for_file
from repro.net.transport import TcpTransport
from repro.system.service import IdentityManagerEndpoint, SubscriberClient
from repro.system.transport import BROADCAST

SCENARIO = {
    "group": "nist-p192",
    "seed": 77,
    "attribute_bits": 8,
    "gkm_field": "fast",
    "idp": "hr",
    "idmgr": "idmgr",
    "publisher": "pub",
    "policies": [
        {"condition": "role = doc", "segments": ["Clinical"], "document": "EHR"},
        {"condition": "level >= 50", "segments": ["Billing"], "document": "EHR"},
    ],
    "users": {
        "carol": {"role": "doc", "level": 70},
        "dave": {"role": "doc"},
    },
    "documents": [
        {"name": "EHR", "segments": {"Clinical": "MRI fine.", "Billing": "Acct 7."}},
    ],
    "revoke": [],
}

TIMEOUT = 60.0


def _spawn_publisher(broker_at, scenario_path, bundle_path, data_dir,
                     *extra, report=None):
    src = os.path.join(os.path.dirname(os.path.dirname(
        os.path.dirname(os.path.abspath(__file__)))), "src")
    env = dict(os.environ)
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    args = [sys.executable, "-m", "repro.net.publisher",
            "--broker", broker_at, "--scenario", scenario_path,
            "--bundle", bundle_path, "--data-dir", data_dir,
            "--timeout", str(TIMEOUT), *extra]
    if report:
        args += ["--report", report]
    return subprocess.Popen(args, env=env, stdout=subprocess.DEVNULL,
                            stderr=subprocess.STDOUT)


def test_publisher_sigkill_recovery_zero_unicast(tmp_path):
    scenario_path = str(tmp_path / "scenario.json")
    bundle_path = str(tmp_path / "bundle.json")
    data_dir = str(tmp_path / "pub-data")
    report_path = str(tmp_path / "publisher.json")
    write_json(scenario_path, SCENARIO)
    scenario = load_scenario(scenario_path)

    idp, idmgr, nyms, assertions = build_identity_stack(scenario)
    write_bundle(bundle_path, scenario, idmgr, nyms, assertions)
    bundle = read_bundle(bundle_path)

    with BrokerThread() as broker:
        broker_at = "%s:%d" % (broker.host, broker.port)
        with TcpTransport(broker.host, broker.port) as transport:
            idmgr_ep = IdentityManagerEndpoint(
                idmgr, transport, name=scenario["idmgr"]
            )
            clients = {}
            for user in sorted(scenario["users"]):
                subscriber = build_subscriber(scenario, bundle, user)
                clients[user] = SubscriberClient(
                    subscriber, transport,
                    publisher_name=scenario["publisher"],
                    idmgr_name=scenario["idmgr"],
                )
            endpoints = [idmgr_ep, *clients.values()]

            # -- phase 1: registrations against publisher process #1 ------
            publisher1 = _spawn_publisher(
                broker_at, scenario_path, bundle_path, data_dir, "--serve"
            )
            try:
                for user, client in clients.items():
                    for attribute in sorted(scenario["users"][user]):
                        client.request_token(
                            attribute, assertion=bundle.assertions[user][attribute]
                        )
                pump_until(
                    endpoints,
                    lambda: all(
                        set(c.subscriber.attribute_tags())
                        == set(scenario["users"][u])
                        for u, c in clients.items()
                    ),
                    timeout=TIMEOUT,
                )
                for client in clients.values():
                    client.register_all_attributes()
                pump_until(
                    endpoints,
                    lambda: all(
                        not c.registering()
                        and all(r for r in c.results.values())
                        for c in clients.values()
                    ),
                    timeout=TIMEOUT,
                )
                # every subscriber extracted what its values entitle it to
                assert clients["carol"].results["role"] == {"role = doc": True}
                assert clients["carol"].results["level"] == {"level >= 50": True}
                assert clients["dave"].results["role"] == {"role = doc": True}
                transport.flush_acks()
            finally:
                # -- the crash: SIGKILL, no shutdown path runs ------------
                publisher1.kill()
                publisher1.wait(10)
            assert publisher1.returncode == -signal.SIGKILL

            accounted_before = len(transport.snapshot().messages)

            # -- phase 2: restart from the data dir -----------------------
            publisher2 = _spawn_publisher(
                broker_at, scenario_path, bundle_path, data_dir,
                report=report_path,
            )
            try:
                # subscribers just keep pumping; they re-register nothing
                pump_until(
                    endpoints,
                    lambda: all(
                        len(c.packages) >= 2 for c in clients.values()
                    ),
                    timeout=TIMEOUT,
                )
                transport.flush_acks()
                assert publisher2.wait(TIMEOUT) == 0
            finally:
                if publisher2.poll() is None:
                    publisher2.kill()
                    publisher2.wait(10)

            # -- decryption resumed for every subscriber ------------------
            carol, dave = clients["carol"], clients["dave"]
            for client in (carol, dave):
                assert len(client.packages) == 2
            assert sorted(carol.broadcasts[0]) == ["Billing", "Clinical"]
            assert sorted(carol.broadcasts[1]) == ["Billing", "Clinical"]
            assert sorted(dave.broadcasts[0]) == ["Clinical"]
            assert carol.broadcasts[0]["Clinical"] == b"MRI fine."

            # -- the recovery window carried only multicast ---------------
            wait_for_file(report_path, timeout=10)
            with open(report_path, encoding="utf-8") as handle:
                report = json.load(handle)
            expected = expected_registrations(scenario)
            assert report["recovered_cells"] == expected
            assert report["table_cells_registered"] == expected

            recovery_window = transport.snapshot().messages[accounted_before:]
            assert recovery_window, "no traffic accounted after the restart"
            assert {m.kind for m in recovery_window} == {"broadcast-package"}
            assert all(m.receiver == BROADCAST for m in recovery_window)
            assert len(recovery_window) == 2  # multicast: accounted once each


def test_pooled_publisher_sigkill_recovery(tmp_path):
    """SIGKILL a publisher with a *live worker pool*; restart serially.

    Workers never journal -- every durable write happens in the parent
    -- so killing a pooled publisher mid-lifecycle must leave exactly
    the same recoverable store as killing a serial one: the restarted
    (serial) process re-registers every served cell from disk.
    """
    scenario_path = str(tmp_path / "scenario.json")
    bundle_path = str(tmp_path / "bundle.json")
    data_dir = str(tmp_path / "pub-data")
    report_path = str(tmp_path / "publisher.json")
    write_json(scenario_path, SCENARIO)
    scenario = load_scenario(scenario_path)

    idp, idmgr, nyms, assertions = build_identity_stack(scenario)
    write_bundle(bundle_path, scenario, idmgr, nyms, assertions)
    bundle = read_bundle(bundle_path)

    with BrokerThread() as broker:
        broker_at = "%s:%d" % (broker.host, broker.port)
        with TcpTransport(broker.host, broker.port) as transport:
            idmgr_ep = IdentityManagerEndpoint(
                idmgr, transport, name=scenario["idmgr"]
            )
            clients = {}
            for user in sorted(scenario["users"]):
                subscriber = build_subscriber(scenario, bundle, user)
                clients[user] = SubscriberClient(
                    subscriber, transport,
                    publisher_name=scenario["publisher"],
                    idmgr_name=scenario["idmgr"],
                )
            endpoints = [idmgr_ep, *clients.values()]

            publisher1 = _spawn_publisher(
                broker_at, scenario_path, bundle_path, data_dir,
                "--serve", "--ocbe-workers", "2",
            )
            try:
                for user, client in clients.items():
                    for attribute in sorted(scenario["users"][user]):
                        client.request_token(
                            attribute, assertion=bundle.assertions[user][attribute]
                        )
                pump_until(
                    endpoints,
                    lambda: all(
                        set(c.subscriber.attribute_tags())
                        == set(scenario["users"][u])
                        for u, c in clients.items()
                    ),
                    timeout=TIMEOUT,
                )
                for client in clients.values():
                    client.register_all_attributes()
                pump_until(
                    endpoints,
                    lambda: all(
                        not c.registering()
                        and all(r for r in c.results.values())
                        for c in clients.values()
                    ),
                    timeout=TIMEOUT,
                )
                transport.flush_acks()
            finally:
                # SIGKILL with the pool still up: no teardown path runs
                # in the parent or the workers.
                publisher1.kill()
                publisher1.wait(10)
            assert publisher1.returncode == -signal.SIGKILL

            publisher2 = _spawn_publisher(
                broker_at, scenario_path, bundle_path, data_dir,
                report=report_path,
            )
            try:
                # The lifecycle mode broadcasts twice (publish + rekey
                # re-publish); the publisher only exits once the broker
                # goes quiet, which needs both packages pumped.
                pump_until(
                    endpoints,
                    lambda: all(
                        len(c.packages) >= 2 for c in clients.values()
                    ),
                    timeout=TIMEOUT,
                )
                transport.flush_acks()
                assert publisher2.wait(TIMEOUT) == 0
            finally:
                if publisher2.poll() is None:
                    publisher2.kill()
                    publisher2.wait(10)

            wait_for_file(report_path, timeout=10)
            with open(report_path, encoding="utf-8") as handle:
                report = json.load(handle)
            expected = expected_registrations(scenario)
            assert report["recovered_cells"] == expected
            assert report["table_cells_registered"] == expected
            assert clients["carol"].broadcasts[0]["Clinical"] == b"MRI fine."
