"""Scenario/bundle bootstrap: separate processes must rebuild one world."""

import pytest

from repro.errors import InvalidParameterError
from repro.net.bootstrap import (
    build_identity_stack,
    build_publisher,
    build_subscriber,
    expected_registrations,
    load_scenario,
    read_bundle,
    write_bundle,
    write_json,
)

SCENARIO = {
    "group": "nist-p192",
    "seed": 99,
    "attribute_bits": 8,
    "gkm_field": "fast",
    "idp": "hr",
    "idmgr": "idmgr",
    "publisher": "pub",
    "policies": [
        {"condition": "role = doc", "segments": ["clinical"], "document": "report"},
        {"condition": "level >= 50", "segments": ["billing"], "document": "report"},
    ],
    "users": {
        "carol": {"role": "doc", "level": 70},
        "dave": {"role": "doc"},
    },
}


def _loaded(tmp_path, scenario=SCENARIO):
    path = tmp_path / "scenario.json"
    write_json(str(path), scenario)
    return load_scenario(str(path))


def test_identity_stack_is_deterministic(tmp_path):
    scenario = _loaded(tmp_path)
    _, idmgr_a, nyms_a, _ = build_identity_stack(scenario)
    _, idmgr_b, nyms_b, _ = build_identity_stack(scenario)
    assert idmgr_a.public_key == idmgr_b.public_key  # a restart re-derives keys
    assert nyms_a == nyms_b


def test_bundle_round_trip_and_cross_process_interop(tmp_path):
    scenario = _loaded(tmp_path)
    idp, idmgr, nyms, assertions = build_identity_stack(scenario)
    bundle_path = str(tmp_path / "bundle.json")
    write_bundle(bundle_path, scenario, idmgr, nyms, assertions)
    bundle = read_bundle(bundle_path)
    assert bundle.public_key == idmgr.public_key
    assert bundle.nyms == nyms

    # The publisher process (bundle only) can verify a token the IdMgr
    # process issues against a bundle-carried assertion: same Pedersen
    # bases, same public key -- reconstructed, never transmitted.
    publisher = build_publisher(scenario, bundle.public_key)
    token, x, r = idmgr.issue_token(
        nyms["carol"], bundle.assertions["carol"]["role"]
    )
    assert publisher.params.pedersen.group is idmgr.group
    assert publisher.params.pedersen.verify_open(token.commitment, x, r)

    # And the subscriber process rebuilds compatible SystemParams.
    subscriber = build_subscriber(scenario, bundle, "carol")
    assert subscriber.nym == nyms["carol"]
    subscriber.hold_token(token, x, r)
    assert subscriber.attribute_tags() == ["role"]


def test_subscriber_rngs_differ_per_user(tmp_path):
    scenario = _loaded(tmp_path)
    _, idmgr, nyms, assertions = build_identity_stack(scenario)
    bundle_path = str(tmp_path / "bundle.json")
    write_bundle(bundle_path, scenario, idmgr, nyms, assertions)
    bundle = read_bundle(bundle_path)
    carol = build_subscriber(scenario, bundle, "carol")
    dave = build_subscriber(scenario, bundle, "dave")
    assert carol.rng.getrandbits(64) != dave.rng.getrandbits(64)


def test_expected_registrations_counts_matching_conditions(tmp_path):
    scenario = _loaded(tmp_path)
    # carol holds role+level (2 conditions), dave only role (1 condition).
    assert expected_registrations(scenario) == 3


def test_scenario_validation(tmp_path):
    with pytest.raises(InvalidParameterError, match="users"):
        _loaded(tmp_path, {"group": "nist-p192", "seed": 1, "policies": []})
    bad = dict(SCENARIO, gkm_field="nope")
    with pytest.raises(InvalidParameterError, match="gkm_field"):
        _loaded(tmp_path, bad)


def test_unknown_user_rejected(tmp_path):
    scenario = _loaded(tmp_path)
    _, idmgr, nyms, assertions = build_identity_stack(scenario)
    bundle_path = str(tmp_path / "bundle.json")
    write_bundle(bundle_path, scenario, idmgr, nyms, assertions)
    bundle = read_bundle(bundle_path)
    with pytest.raises(InvalidParameterError, match="not in the bundle"):
        build_subscriber(scenario, bundle, "mallory")


# -- multi-publisher scenarios (PR 4) ----------------------------------------

MULTI_SCENARIO = {
    "group": "nist-p192",
    "seed": 44,
    "publishers": [
        {
            "name": "news",
            "policies": [
                {"condition": "news_tier >= 10", "segments": ["wire"],
                 "document": "daily"},
            ],
        },
        {
            "name": "sports",
            "policies": [
                {"condition": "sports_tier >= 50", "segments": ["scores"],
                 "document": "scores"},
            ],
        },
    ],
    "assignments": {"dave": "sports"},
    "users": {
        "carol": {"news_tier": 30},
        "dave": {"sports_tier": 70},
    },
}


def test_multi_publisher_specs_and_assignment(tmp_path):
    from repro.net.bootstrap import publisher_for_user, publisher_specs

    scenario = _loaded(tmp_path, MULTI_SCENARIO)
    assert [s["name"] for s in publisher_specs(scenario)] == ["news", "sports"]
    assert publisher_for_user(scenario, "carol") == "news"  # default: first
    assert publisher_for_user(scenario, "dave") == "sports"


def test_multi_publisher_builds_are_independent(tmp_path):
    scenario = _loaded(tmp_path, MULTI_SCENARIO)
    _, idmgr, nyms, assertions = build_identity_stack(scenario)
    news = build_publisher(scenario, idmgr.public_key, name="news")
    sports = build_publisher(scenario, idmgr.public_key, name="sports")
    assert news.name == "news" and sports.name == "sports"
    assert [c.name for c in news.conditions()] == ["news_tier"]
    assert [c.name for c in sports.conditions()] == ["sports_tier"]
    # Per-publisher RNG salting: the two processes never mint the same
    # CSS stream.
    assert news._rng.getrandbits(64) != sports._rng.getrandbits(64)
    with pytest.raises(InvalidParameterError, match="no publisher"):
        build_publisher(scenario, idmgr.public_key, name="ghost")


def test_multi_publisher_expected_registrations(tmp_path):
    from repro.net.bootstrap import conditions_per_attribute

    scenario = _loaded(tmp_path, MULTI_SCENARIO)
    # carol registers news_tier at news; dave registers sports_tier at
    # sports: one condition each.
    assert expected_registrations(scenario) == 2
    assert expected_registrations(scenario, publisher="news") == 1
    assert expected_registrations(scenario, publisher="sports") == 1
    assert conditions_per_attribute(scenario, "news") == {"news_tier": 1}
    assert conditions_per_attribute(scenario) == {
        "news_tier": 1, "sports_tier": 1,
    }


def test_multi_publisher_validation(tmp_path):
    dupe = dict(MULTI_SCENARIO)
    dupe["publishers"] = [
        {"name": "news", "policies": []},
        {"name": "news", "policies": []},
    ]
    with pytest.raises(InvalidParameterError, match="duplicate publisher"):
        _loaded(tmp_path, dupe)
    stray = dict(MULTI_SCENARIO, assignments={"carol": "ghost"})
    with pytest.raises(InvalidParameterError, match="unknown publisher"):
        _loaded(tmp_path, stray)
    nobody = dict(MULTI_SCENARIO, assignments={"ghost": "news"})
    with pytest.raises(InvalidParameterError, match="unknown user"):
        _loaded(tmp_path, nobody)
    neither = {"group": "nist-p192", "seed": 1, "users": {}}
    with pytest.raises(InvalidParameterError, match="policies"):
        _loaded(tmp_path, neither)


def test_empty_publishers_list_is_typed(tmp_path):
    empty = {"group": "nist-p192", "seed": 1, "users": {}, "publishers": []}
    with pytest.raises(InvalidParameterError, match="non-empty"):
        _loaded(tmp_path, empty)
