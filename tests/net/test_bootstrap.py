"""Scenario/bundle bootstrap: separate processes must rebuild one world."""

import pytest

from repro.errors import InvalidParameterError
from repro.net.bootstrap import (
    build_identity_stack,
    build_publisher,
    build_subscriber,
    expected_registrations,
    load_scenario,
    read_bundle,
    write_bundle,
    write_json,
)

SCENARIO = {
    "group": "nist-p192",
    "seed": 99,
    "attribute_bits": 8,
    "gkm_field": "fast",
    "idp": "hr",
    "idmgr": "idmgr",
    "publisher": "pub",
    "policies": [
        {"condition": "role = doc", "segments": ["clinical"], "document": "report"},
        {"condition": "level >= 50", "segments": ["billing"], "document": "report"},
    ],
    "users": {
        "carol": {"role": "doc", "level": 70},
        "dave": {"role": "doc"},
    },
}


def _loaded(tmp_path, scenario=SCENARIO):
    path = tmp_path / "scenario.json"
    write_json(str(path), scenario)
    return load_scenario(str(path))


def test_identity_stack_is_deterministic(tmp_path):
    scenario = _loaded(tmp_path)
    _, idmgr_a, nyms_a, _ = build_identity_stack(scenario)
    _, idmgr_b, nyms_b, _ = build_identity_stack(scenario)
    assert idmgr_a.public_key == idmgr_b.public_key  # a restart re-derives keys
    assert nyms_a == nyms_b


def test_bundle_round_trip_and_cross_process_interop(tmp_path):
    scenario = _loaded(tmp_path)
    idp, idmgr, nyms, assertions = build_identity_stack(scenario)
    bundle_path = str(tmp_path / "bundle.json")
    write_bundle(bundle_path, scenario, idmgr, nyms, assertions)
    bundle = read_bundle(bundle_path)
    assert bundle.public_key == idmgr.public_key
    assert bundle.nyms == nyms

    # The publisher process (bundle only) can verify a token the IdMgr
    # process issues against a bundle-carried assertion: same Pedersen
    # bases, same public key -- reconstructed, never transmitted.
    publisher = build_publisher(scenario, bundle.public_key)
    token, x, r = idmgr.issue_token(
        nyms["carol"], bundle.assertions["carol"]["role"]
    )
    assert publisher.params.pedersen.group is idmgr.group
    assert publisher.params.pedersen.verify_open(token.commitment, x, r)

    # And the subscriber process rebuilds compatible SystemParams.
    subscriber = build_subscriber(scenario, bundle, "carol")
    assert subscriber.nym == nyms["carol"]
    subscriber.hold_token(token, x, r)
    assert subscriber.attribute_tags() == ["role"]


def test_subscriber_rngs_differ_per_user(tmp_path):
    scenario = _loaded(tmp_path)
    _, idmgr, nyms, assertions = build_identity_stack(scenario)
    bundle_path = str(tmp_path / "bundle.json")
    write_bundle(bundle_path, scenario, idmgr, nyms, assertions)
    bundle = read_bundle(bundle_path)
    carol = build_subscriber(scenario, bundle, "carol")
    dave = build_subscriber(scenario, bundle, "dave")
    assert carol.rng.getrandbits(64) != dave.rng.getrandbits(64)


def test_expected_registrations_counts_matching_conditions(tmp_path):
    scenario = _loaded(tmp_path)
    # carol holds role+level (2 conditions), dave only role (1 condition).
    assert expected_registrations(scenario) == 3


def test_scenario_validation(tmp_path):
    with pytest.raises(InvalidParameterError, match="users"):
        _loaded(tmp_path, {"group": "nist-p192", "seed": 1, "policies": []})
    bad = dict(SCENARIO, gkm_field="nope")
    with pytest.raises(InvalidParameterError, match="gkm_field"):
        _loaded(tmp_path, bad)


def test_unknown_user_rejected(tmp_path):
    scenario = _loaded(tmp_path)
    _, idmgr, nyms, assertions = build_identity_stack(scenario)
    bundle_path = str(tmp_path / "bundle.json")
    write_bundle(bundle_path, scenario, idmgr, nyms, assertions)
    bundle = read_bundle(bundle_path)
    with pytest.raises(InvalidParameterError, match="not in the bundle"):
        build_subscriber(scenario, bundle, "mallory")
