"""Hostile network peers against the broker.

The broker faces raw TCP: anyone can connect and send anything.  Every
case here must end with the offending *connection* dropped and the
broker (and any entity endpoints it serves) fully functional -- and
broker-side state bounded, so a hostile peer cannot grow memory by
queueing traffic at a victim's name.
"""

import socket
import time

import pytest

from repro.errors import NetworkError
from repro.net.protocol import (
    Hello,
    NetDeliver,
    StatsReply,
    StatsRequest,
    Welcome,
    decode_net_payload,
)
from repro.net.runtime import BrokerThread
from repro.net.stream import FrameDecoder
from repro.net.transport import TcpTransport
from repro.wire.codec import WIRE_MAGIC, WIRE_VERSION


@pytest.fixture
def broker():
    with BrokerThread() as thread:
        yield thread


def raw_connect(broker):
    return socket.create_connection((broker.host, broker.port), timeout=5)


def read_frames(sock, count, timeout=5.0):
    """Read ``count`` frames off a raw socket (EOF returns what arrived)."""
    decoder = FrameDecoder()
    frames = []
    sock.settimeout(timeout)
    while len(frames) < count:
        chunk = sock.recv(65536)
        if not chunk:
            break
        frames.extend(decoder.feed(chunk))
    return frames


def assert_closed(sock, timeout=5.0):
    sock.settimeout(timeout)
    assert sock.recv(65536) == b"", "expected the broker to close the connection"


def assert_broker_healthy(broker):
    """A well-behaved client can still do a full deliver/poll round trip."""
    with TcpTransport(broker.host, broker.port) as transport:
        transport.register("healthy-a")
        transport.register("healthy-b")
        transport.deliver("healthy-a", "healthy-b", "probe", b"ping")
        deadline = time.monotonic() + 5
        arrived = []
        while not arrived and time.monotonic() < deadline:
            arrived = transport.poll("healthy-b")
            time.sleep(0.005)
        assert [d.payload for d in arrived] == [b"ping"]


def hello(sock, entity):
    sock.sendall(Hello(entity=entity).encode())
    [frame] = read_frames(sock, 1)
    welcome = decode_net_payload(*frame)
    assert isinstance(welcome, Welcome)
    return welcome


class TestMalformedStreams:
    def test_garbage_bytes_drop_the_connection_only(self, broker):
        sock = raw_connect(broker)
        sock.sendall(b"\xde\xad\xbe\xef" * 4)
        assert_closed(sock)
        sock.close()
        assert_broker_healthy(broker)

    def test_garbage_mid_stream_after_handshake(self, broker):
        sock = raw_connect(broker)
        assert hello(sock, "mallory").ok
        sock.sendall(b"not a frame at all")
        assert_closed(sock)
        sock.close()
        assert_broker_healthy(broker)

    def test_oversized_length_declaration_rejected_unread(self, broker):
        """A header declaring ~4 GiB must get the connection dropped at
        header-parse time; the payload is never awaited or allocated."""
        import struct

        sock = raw_connect(broker)
        assert hello(sock, "mallory").ok
        sock.sendall(struct.pack(">2sBBI", WIRE_MAGIC, WIRE_VERSION, 66, 0xFFFFFFFF))
        assert_closed(sock)
        sock.close()
        assert_broker_healthy(broker)

    def test_truncated_frame_then_abrupt_close(self, broker):
        sock = raw_connect(broker)
        assert hello(sock, "mallory").ok
        frame = NetDeliver(
            sender="mallory", receiver="x", kind="k", note="", payload=b"p" * 64
        ).encode()
        sock.sendall(frame[: len(frame) // 2])
        sock.close()  # vanish mid-frame
        assert_broker_healthy(broker)

    def test_unknown_net_frame_type(self, broker):
        from repro.wire.codec import encode_frame

        sock = raw_connect(broker)
        assert hello(sock, "mallory").ok
        sock.sendall(encode_frame(250, b"??"))
        assert_closed(sock)
        sock.close()
        assert_broker_healthy(broker)


class TestHandshakeDeadline:
    def test_silent_connection_is_dropped(self):
        """A peer that connects and never says Hello must be evicted, or
        parked pre-authentication connections would bypass every
        entity/inbox bound."""
        with BrokerThread(handshake_timeout=0.3) as broker:
            sock = raw_connect(broker)
            began = time.monotonic()
            assert_closed(sock, timeout=5.0)
            assert time.monotonic() - began < 4.0
            sock.close()
            assert_broker_healthy(broker)

    def test_partial_hello_is_dropped_too(self):
        with BrokerThread(handshake_timeout=0.3) as broker:
            sock = raw_connect(broker)
            sock.sendall(Hello(entity="slowpoke").encode()[:5])  # never finishes
            assert_closed(sock, timeout=5.0)
            sock.close()
            assert_broker_healthy(broker)


class TestIdentityEnforcement:
    def test_frames_before_hello_are_rejected(self, broker):
        sock = raw_connect(broker)
        sock.sendall(
            NetDeliver(sender="x", receiver="y", kind="k", note="",
                       payload=b"p").encode()
        )
        assert_closed(sock)
        sock.close()
        assert_broker_healthy(broker)

    def test_nym_spoofing_on_connect_is_refused(self, broker):
        victim = raw_connect(broker)
        assert hello(victim, "pn-0001").ok
        imposter = raw_connect(broker)
        welcome = hello(imposter, "pn-0001")
        assert not welcome.ok
        assert "already connected" in welcome.reason
        assert_closed(imposter)
        imposter.close()
        # The victim's connection is untouched: it can still receive.
        with TcpTransport(broker.host, broker.port) as transport:
            transport.register("sender")
            transport.deliver("sender", "pn-0001", "k", b"for the real one")
        [frame] = read_frames(victim, 1)
        assert decode_net_payload(*frame).payload == b"for the real one"
        victim.close()

    def test_reserved_multicast_name_refused(self, broker):
        sock = raw_connect(broker)
        assert not hello(sock, "*").ok
        sock.close()
        assert_broker_healthy(broker)

    def test_sender_spoofing_on_deliver_drops_connection(self, broker):
        sock = raw_connect(broker)
        assert hello(sock, "mallory").ok
        sock.sendall(
            NetDeliver(sender="pn-0001", receiver="pub", kind="k", note="",
                       payload=b"forged").encode()
        )
        assert_closed(sock)
        sock.close()
        # The forged frame was never routed.
        with TcpTransport(broker.host, broker.port) as transport:
            transport.register("pub")
            time.sleep(0.05)
            assert transport.poll("pub") == []

    def test_spoofed_name_becomes_available_after_disconnect(self, broker):
        first = raw_connect(broker)
        assert hello(first, "pn-0002").ok
        first.close()
        time.sleep(0.05)  # let the broker observe the EOF
        with TcpTransport(broker.host, broker.port) as transport:
            transport.register("pn-0002")  # must not raise


class TestBoundedState:
    def test_inbox_bound_holds_against_flooding(self):
        with BrokerThread(max_inbox=5) as broker:
            with TcpTransport(broker.host, broker.port) as transport:
                transport.register("flooder")
                for i in range(40):
                    transport.deliver("flooder", "absent", "k", bytes([i]))
                stats = transport.stats()
                assert stats.pending <= 5
                assert stats.dropped >= 35
                # Newest survive (oldest dropped first): the victim that
                # finally connects sees the tail of the flood.
                transport.register("absent")
                deadline = time.monotonic() + 5
                got = []
                while len(got) < 5 and time.monotonic() < deadline:
                    got.extend(transport.poll("absent"))
                    time.sleep(0.005)
                assert [d.payload[0] for d in got] == list(range(35, 40))

    def test_entity_name_bound_holds_against_fabricated_receivers(self):
        """A connected peer minting inboxes by spraying deliveries at fresh
        receiver names is cut off at max_entities; known names still route."""
        with BrokerThread(max_entities=10) as broker:
            with TcpTransport(broker.host, broker.port) as transport:
                transport.register("sprayer")
                transport.register("victim")
                for i in range(50):
                    transport.deliver("sprayer", "fake-%04d" % i, "k", b"x")
                stats = transport.stats()
                assert stats.dropped >= 40  # only the first few names fit
                # Existing entities are unaffected by the bound.
                transport.deliver("sprayer", "victim", "k", b"real")
                deadline = time.monotonic() + 5
                got = []
                while not got and time.monotonic() < deadline:
                    got = transport.poll("victim")
                    time.sleep(0.005)
                assert [d.payload for d in got] == [b"real"]

    def test_entity_name_bound_holds_against_hello_churn(self):
        """Inboxes survive disconnects, so connect/Hello/disconnect under
        ever-fresh names is the other way to mint broker state: beyond
        max_entities the handshake itself must be refused."""
        with BrokerThread(max_entities=4) as broker:
            for i in range(4):
                sock = raw_connect(broker)
                assert hello(sock, "churn-%d" % i).ok
                sock.close()
            sock = raw_connect(broker)
            welcome = hello(sock, "churn-overflow")
            assert not welcome.ok and "bound" in welcome.reason
            sock.close()
            # Names already holding an inbox may still reconnect.
            time.sleep(0.05)
            sock = raw_connect(broker)
            assert hello(sock, "churn-0").ok
            sock.close()

    def test_stats_log_truncation_is_flagged_not_fatal(self):
        """A log bigger than one frame must come back truncated+flagged --
        never blow the cap and drop the requester's connection.  The audit
        surface (snapshot) refuses to work from a partial log."""
        with BrokerThread(max_frame=512) as broker:
            with TcpTransport(broker.host, broker.port, max_frame=512) as transport:
                transport.register("a")
                transport.register("b")
                for i in range(64):  # ~64 records of ~20B >> 512B budget
                    transport.deliver("a", "b", "kind-%02d" % i, b"p")
                with pytest.warns(UserWarning, match="truncated"):
                    stats = transport.stats(include_log=True)
                assert not stats.log_complete
                assert stats.log  # the newest suffix is still included
                assert stats.log[-1].kind == "kind-63"
                with pytest.warns(UserWarning, match="truncated"):
                    with pytest.raises(NetworkError, match="accounting log"):
                        transport.snapshot()

    def test_abrupt_disconnect_during_registration_session(self, broker):
        """A Sub that vanishes mid-registration must not crash the service
        or the broker, and the publisher's pending state stays bounded."""
        import random

        from repro.gkm.acv import FAST_FIELD
        from repro.groups import get_group
        from repro.policy.acp import parse_policy
        from repro.system.idmgr import IdentityManager
        from repro.system.idp import IdentityProvider
        from repro.system.publisher import Publisher
        from repro.system.service import DisseminationService, SubscriberClient
        from repro.system.subscriber import Subscriber

        rng = random.Random(7)
        group = get_group("nist-p192")
        idp = IdentityProvider("hr", group, rng=rng)
        idmgr = IdentityManager(group, rng=rng)
        idmgr.trust_idp(idp)
        publisher = Publisher(
            "pub", idmgr.params, idmgr.public_key, gkm_field=FAST_FIELD,
            attribute_bits=8, rng=rng,
        )
        publisher.add_policy(parse_policy("role = doc", ["s"], "d"))

        service_transport = TcpTransport(broker.host, broker.port)
        service = DisseminationService(publisher, service_transport)
        service.session.max_pending = 4

        def pump_service(rounds=50):
            for _ in range(rounds):
                service.pump()
                time.sleep(0.002)

        try:
            # Several Subs start registrations and vanish mid-exchange.
            for n in range(8):
                idp.enroll("u%d" % n, "role", "doc")
                sub = Subscriber("pn-9%02d" % n, publisher.params, rng=rng)
                token, x, r = idmgr.issue_token(
                    sub.nym, idp.assert_attribute("u%d" % n, "role"), rng=rng
                )
                sub.hold_token(token, x, r)
                sub_transport = TcpTransport(broker.host, broker.port)
                client = SubscriberClient(sub, sub_transport, "pub")
                client.register_attribute("role")
                pump_service()
                # Pump the client just far enough to send its
                # RegistrationRequest, then yank the connection.
                deadline = time.monotonic() + 5
                while client.registering() is False and time.monotonic() < deadline:
                    client.pump()
                    time.sleep(0.002)
                client.pump()
                sub_transport.close()  # abrupt: session half-open at the Pub
            pump_service()
            # Bounded pending state held despite 8 half-open exchanges:
            assert len(service.session._pending) <= 4
            # And the service still completes an honest registration.
            idp.enroll("honest", "role", "doc")
            honest = Subscriber("pn-1000", publisher.params, rng=rng)
            token, x, r = idmgr.issue_token(
                honest.nym, idp.assert_attribute("honest", "role"), rng=rng
            )
            honest.hold_token(token, x, r)
            honest_transport = TcpTransport(broker.host, broker.port)
            try:
                client = SubscriberClient(honest, honest_transport, "pub")
                client.register_attribute("role")
                deadline = time.monotonic() + 10
                while client.results.get("role", {}).get("role = doc") is not True:
                    assert time.monotonic() < deadline, client.failures
                    service.pump()
                    client.pump()
                    time.sleep(0.002)
            finally:
                honest_transport.close()
        finally:
            service_transport.close()


class TestReconnection:
    def test_dead_connection_is_replaced_and_backlog_drained(self, broker):
        """After a connection drop, register() must reconnect (not no-op on
        the dead entry) and the broker-held backlog must arrive."""
        with TcpTransport(broker.host, broker.port) as transport:
            transport.register("server")
            transport.register("client")
            # Sever the server's connection under the transport (the same
            # observable state as a broker drop or TCP blip).
            conn = transport._conns["server"]
            import asyncio as _asyncio

            _asyncio.run_coroutine_threadsafe(
                conn.stream.aclose(), transport._loop
            ).result(5)
            deadline = time.monotonic() + 5
            while conn.alive and time.monotonic() < deadline:
                time.sleep(0.005)
            assert not conn.alive
            # Traffic for the entity accumulates broker-side meanwhile.
            transport.deliver("client", "server", "k", b"while you were out")
            time.sleep(0.1)
            # register() replaces the dead connection and drains backlog.
            transport.register("server")
            assert transport._conns["server"].alive
            got = []
            deadline = time.monotonic() + 5
            while not got and time.monotonic() < deadline:
                got = transport.poll("server")
                time.sleep(0.005)
            assert [d.payload for d in got] == [b"while you were out"]
            # deliver() now works again too (it registers first).
            transport.deliver("server", "client", "k", b"back online")
            got = []
            deadline = time.monotonic() + 5
            while not got and time.monotonic() < deadline:
                got = transport.poll("client")
                time.sleep(0.005)
            assert [d.payload for d in got] == [b"back online"]

    def test_receive_only_endpoint_recovers_via_poll(self, broker):
        """A subscriber waiting for broadcasts only ever polls; the poll
        path itself must reconnect a dropped connection (rate-limited) so
        the broker-held backlog eventually flows."""
        with TcpTransport(broker.host, broker.port) as transport:
            transport.register("listener")
            transport.register("talker")
            conn = transport._conns["listener"]
            import asyncio as _asyncio

            _asyncio.run_coroutine_threadsafe(
                conn.stream.aclose(), transport._loop
            ).result(5)
            deadline = time.monotonic() + 5
            while conn.alive and time.monotonic() < deadline:
                time.sleep(0.005)
            transport.deliver("talker", "listener", "k", b"missed me?")
            # Only poll from here on -- no sends on the listener's behalf.
            got = []
            deadline = time.monotonic() + 10
            while not got and time.monotonic() < deadline:
                got = transport.poll("listener")
                time.sleep(0.01)
            assert [d.payload for d in got] == [b"missed me?"]
            assert transport._conns["listener"].alive


class TestStatsSurface:
    def test_stats_round_trip_raw(self, broker):
        sock = raw_connect(broker)
        assert hello(sock, "observer").ok
        sock.sendall(StatsRequest(include_log=True).encode())
        [frame] = read_frames(sock, 1)
        stats = decode_net_payload(*frame)
        assert isinstance(stats, StatsReply)
        assert stats.pending == 0
        sock.close()

    def test_transport_survives_broker_vanishing(self):
        thread = BrokerThread()
        transport = TcpTransport(thread.host, thread.port, timeout=2.0)
        transport.register("lonely")
        thread.stop()
        time.sleep(0.05)
        with pytest.raises(NetworkError):
            transport.deliver("lonely", "x", "k", b"p")
            # a dead connection may need one more send to surface EPIPE
            transport.deliver("lonely", "x", "k", b"p")
        # A failed reconnect attempt must not unregister the entity: polls
        # keep returning [] (no exception) and keep the retry path alive.
        assert transport.poll("lonely") == []
        assert "lonely" in transport._conns
        transport.close()
