"""Hostile peers against the relay tier.

A relay faces raw TCP on both sides: a forged or misbehaving *upstream*
(replayed sequence ids, loop-inducing welcomes) and hostile
*downstreams* (oversized handshakes, injected multicast, readers that
simply stop).  Every case must end with exactly the offending link or
connection dropped -- never the tree -- and with the per-hop counters
telling the truth about what was refused.
"""

import socket
import threading
import time

import pytest

from repro.errors import NetworkError
from repro.net.protocol import (
    MAX_NAME_LEN,
    Ack,
    Hello,
    NetDeliver,
    RelayAttach,
    RelayAttachReply,
    RelayBroadcast,
    RelayHello,
    RelayWelcome,
    Welcome,
    decode_net_payload,
)
from repro.net.relay import request_local_stats
from repro.net.runtime import BrokerThread, RelayThread
from repro.net.stream import FrameDecoder
from repro.net.transport import TcpTransport


def read_frames(sock, count, timeout=5.0):
    """Read up to ``count`` frames off a raw socket (EOF/timeout returns
    what arrived)."""
    decoder = FrameDecoder()
    frames = []
    sock.settimeout(timeout)
    deadline = time.monotonic() + timeout
    while len(frames) < count and time.monotonic() < deadline:
        try:
            chunk = sock.recv(65536)
        except socket.timeout:
            break
        if not chunk:
            break
        frames.extend(decoder.feed(chunk))
    return frames


def assert_closed(sock, timeout=5.0):
    sock.settimeout(timeout)
    assert sock.recv(65536) == b"", "expected the server to close the connection"


def poll_until(probe, timeout=10.0, interval=0.01):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if probe():
            return True
        time.sleep(interval)
    return probe()


class FakeUpstream:
    """A scripted stand-in for the root broker (or a parent relay).

    Accepts one downstream connection, auto-answers ``RelayHello`` with a
    configurable :class:`RelayWelcome` and ``RelayAttach`` with an ok
    reply, records everything else it receives, and lets the test inject
    arbitrary frames downstream -- including ones a healthy root would
    never send.
    """

    def __init__(self, welcome=None, attach_ok=True):
        self.welcome = welcome
        self.attach_ok = attach_ok
        self.received = []
        self._cond = threading.Condition()
        self._conn = None
        self._listener = socket.socket()
        self._listener.bind(("127.0.0.1", 0))
        self._listener.listen(1)
        self.host, self.port = self._listener.getsockname()
        self._thread = threading.Thread(target=self._serve, daemon=True)
        self._thread.start()

    def _serve(self):
        try:
            conn, _ = self._listener.accept()
        except OSError:
            return
        with self._cond:
            self._conn = conn
            self._cond.notify_all()
        decoder = FrameDecoder()
        while True:
            try:
                chunk = conn.recv(65536)
            except OSError:
                return
            if not chunk:
                return
            for frame in decoder.feed(chunk):
                message = decode_net_payload(*frame)
                if isinstance(message, RelayHello):
                    welcome = self.welcome or RelayWelcome(
                        ok=True, relay_id=message.relay_id, path=()
                    )
                    conn.sendall(welcome.encode())
                elif isinstance(message, RelayAttach):
                    conn.sendall(
                        RelayAttachReply(
                            ok=self.attach_ok, entity=message.entity,
                            reason="" if self.attach_ok else "scripted refusal",
                        ).encode()
                    )
                with self._cond:
                    self.received.append(message)
                    self._cond.notify_all()

    def send(self, message):
        with self._cond:
            self._cond.wait_for(lambda: self._conn is not None, timeout=5.0)
            assert self._conn is not None, "no downstream relay connected"
            self._conn.sendall(message.encode())

    def wait_received(self, kind, count=1, timeout=5.0):
        with self._cond:
            self._cond.wait_for(
                lambda: sum(isinstance(m, kind) for m in self.received) >= count,
                timeout=timeout,
            )
            return [m for m in self.received if isinstance(m, kind)]

    def close(self):
        self._listener.close()
        if self._conn is not None:
            try:
                self._conn.close()
            except OSError:
                pass


class TestForgedUpstreamTraffic:
    def test_replayed_seq_dropped_forged_payload_never_delivered(self):
        """Two RelayBroadcasts under one sequence id: the second is a
        replay (or a forgery riding a seen id) and must die at this hop
        -- the attached entity sees exactly the first payload."""
        fake = FakeUpstream()
        try:
            with RelayThread("r1", fake.host, fake.port) as relay:
                carol = socket.create_connection((relay.host, relay.port), 5)
                try:
                    carol.sendall(Hello(entity="carol").encode())
                    [frame] = read_frames(carol, 1)
                    welcome = decode_net_payload(*frame)
                    assert isinstance(welcome, Welcome) and welcome.ok
                    fake.wait_received(RelayAttach)
                    fake.send(RelayBroadcast(
                        seq=9, sender="pub", kind="pkg", note="",
                        payload=b"genuine",
                    ))
                    fake.send(RelayBroadcast(
                        seq=9, sender="pub", kind="pkg", note="",
                        payload=b"forged-replay",
                    ))
                    frames = read_frames(carol, 2, timeout=1.0)
                    assert len(frames) == 1
                    delivery = decode_net_payload(*frames[0])
                    assert isinstance(delivery, NetDeliver)
                    assert delivery.payload == b"genuine"
                    carol.sendall(Ack(count=1).encode())
                    # Both units ack upstream: delivered once, dropped once.
                    assert len(fake.wait_received(Ack, count=2)) >= 2
                    local = request_local_stats(relay.host, relay.port)
                    assert local.counter("broadcasts_down") == 1
                    assert local.counter("dupes_dropped") == 1
                    assert local.counter("broadcast_deliveries") == 1
                finally:
                    carol.close()
        finally:
            fake.close()

    def test_welcome_naming_own_id_on_path_is_loop_refused(self):
        """Connecting side of loop refusal: an upstream whose advertised
        path already contains this relay's id must be refused -- joining
        would make the node its own ancestor."""
        fake = FakeUpstream(
            welcome=RelayWelcome(ok=True, relay_id="r1", path=("r0", "r1"))
        )
        try:
            with pytest.raises(NetworkError, match="loop"):
                RelayThread("r1", fake.host, fake.port)
        finally:
            fake.close()

    def test_upstream_refusal_fails_startup(self):
        fake = FakeUpstream(
            welcome=RelayWelcome(ok=False, relay_id="r1", reason="no capacity")
        )
        try:
            with pytest.raises(NetworkError, match="refused"):
                RelayThread("r1", fake.host, fake.port)
        finally:
            fake.close()


class TestHostileDownstream:
    def test_oversized_relay_hello_refused_at_broker(self):
        with BrokerThread() as broker:
            sock = socket.create_connection((broker.host, broker.port), 5)
            try:
                sock.sendall(
                    RelayHello(relay_id="r" * (MAX_NAME_LEN + 1)).encode()
                )
                [frame] = read_frames(sock, 1)
                welcome = decode_net_payload(*frame)
                assert isinstance(welcome, RelayWelcome)
                assert not welcome.ok and "exceeds" in welcome.reason
                assert_closed(sock)
            finally:
                sock.close()

    def test_oversized_relay_hello_refused_at_relay(self):
        with BrokerThread() as broker:
            with RelayThread("r1", broker.host, broker.port) as relay:
                sock = socket.create_connection((relay.host, relay.port), 5)
                try:
                    sock.sendall(
                        RelayHello(relay_id="r" * (MAX_NAME_LEN + 1)).encode()
                    )
                    [frame] = read_frames(sock, 1)
                    welcome = decode_net_payload(*frame)
                    assert isinstance(welcome, RelayWelcome)
                    assert not welcome.ok and "exceeds" in welcome.reason
                    assert_closed(sock)
                finally:
                    sock.close()

    def test_self_id_refused_on_accept(self):
        """A RelayHello carrying an id already on the accepting relay's
        path (including its own) is the accepting side of loop refusal."""
        with BrokerThread() as broker:
            with RelayThread("r1", broker.host, broker.port) as relay:
                sock = socket.create_connection((relay.host, relay.port), 5)
                try:
                    sock.sendall(RelayHello(relay_id="r1").encode())
                    [frame] = read_frames(sock, 1)
                    welcome = decode_net_payload(*frame)
                    assert isinstance(welcome, RelayWelcome)
                    assert not welcome.ok and "loop" in welcome.reason
                finally:
                    sock.close()

    def test_forged_relay_broadcast_up_drops_link_at_broker(self):
        """Multicast only ever travels downstream; a downstream link
        injecting RelayBroadcast is hostile and loses the link -- while
        root entities keep working."""
        with BrokerThread() as broker:
            with TcpTransport(broker.host, broker.port) as transport:
                transport.register("alice")
                transport.register("bob")
                sock = socket.create_connection((broker.host, broker.port), 5)
                try:
                    sock.sendall(RelayHello(relay_id="evil").encode())
                    [frame] = read_frames(sock, 1)
                    assert decode_net_payload(*frame).ok
                    sock.sendall(RelayBroadcast(
                        seq=1, sender="alice", kind="pkg", note="",
                        payload=b"injected",
                    ).encode())
                    assert_closed(sock)
                finally:
                    sock.close()
                # The injection reached nobody and the broker still routes.
                assert transport.poll("bob") == []
                transport.deliver("alice", "bob", "k", b"still fine")
                assert poll_until(
                    lambda: [d.payload for d in transport.poll("bob")]
                    == [b"still fine"]
                )
                assert transport.stats(via="alice").counter("relay_links") == 0

    def test_forged_relay_broadcast_up_drops_link_at_relay(self):
        """Same rule one hop down: a fake downstream relay injecting
        multicast loses its link; the relay's real entities are
        untouched."""
        with BrokerThread() as broker:
            with RelayThread("r1", broker.host, broker.port) as relay:
                with TcpTransport(broker.host, broker.port) as transport:
                    transport.set_attach_point("carol", relay.host, relay.port)
                    transport.register("alice")
                    transport.register("carol")
                    sock = socket.create_connection(
                        (relay.host, relay.port), 5
                    )
                    try:
                        sock.sendall(RelayHello(relay_id="evil").encode())
                        [frame] = read_frames(sock, 1)
                        welcome = decode_net_payload(*frame)
                        assert welcome.ok and welcome.path == ("r1",)
                        sock.sendall(RelayBroadcast(
                            seq=77, sender="alice", kind="pkg", note="",
                            payload=b"injected",
                        ).encode())
                        assert_closed(sock)
                    finally:
                        sock.close()
                    assert transport.poll("carol") == []
                    transport.deliver("alice", "carol", "k", b"across the hop")
                    assert poll_until(
                        lambda: [d.payload for d in transport.poll("carol")]
                        == [b"across the hop"]
                    )
                    local = request_local_stats(relay.host, relay.port)
                    assert local.counter("downstream_relays") == 0
                    assert local.counter("entities_attached") == 1


def slow_socket(host, port):
    """Connect with a tiny receive buffer (set *before* connect, so the
    window scale is negotiated small): once this peer stops reading, the
    kernel can absorb almost nothing and the server's backlog bound is
    what actually gets exercised."""
    sock = socket.socket()
    sock.setsockopt(socket.SOL_SOCKET, socket.SO_RCVBUF, 4096)
    sock.settimeout(5)
    sock.connect((host, port))
    return sock


class TestSlowConsumers:
    # The stalled peer's kernel buffers absorb traffic before any
    # server-side backlog builds (tcp_wmem autotunes to megabytes even
    # against a tiny receive window), so the storm must comfortably
    # exceed that absorbency for the bounded-backlog policy to be what
    # actually trips.
    STORM = 160
    PAYLOAD = b"\xab" * 65536

    def test_slow_relay_link_disconnected_at_broker(self):
        """A relay that stops reading mid-storm is disconnected by the
        bounded-backlog policy and counted in root stats -- it cannot
        buffer the broker out of memory."""
        with BrokerThread(max_backlog=8) as broker:
            with TcpTransport(broker.host, broker.port) as transport:
                transport.register("pub")
                sock = slow_socket(broker.host, broker.port)
                try:
                    sock.sendall(RelayHello(relay_id="stalled").encode())
                    [frame] = read_frames(sock, 1)
                    assert decode_net_payload(*frame).ok
                    sock.sendall(RelayAttach(entity="victim").encode())
                    [frame] = read_frames(sock, 1)
                    reply = decode_net_payload(*frame)
                    assert isinstance(reply, RelayAttachReply) and reply.ok
                    # ... and never read another byte.
                    for _ in range(self.STORM):
                        transport.broadcast("pub", "pkg", self.PAYLOAD)

                    def dropped():
                        stats = transport.stats(via="pub")
                        return (
                            stats.counter("slow_consumer_disconnects") >= 1
                            and stats.counter("relay_links") == 0
                        )

                    assert poll_until(dropped), (
                        "broker never applied the slow-consumer policy"
                    )
                finally:
                    sock.close()
                # The victim fell back to offline queueing at the root;
                # the broker itself keeps serving.
                assert transport.stats(via="pub").counter("relay_entities") == 0
                transport.register("probe")
                transport.deliver("pub", "probe", "k", b"alive")
                assert poll_until(
                    lambda: [d.payload for d in transport.poll("probe")]
                    == [b"alive"]
                )

    def test_slow_entity_below_relay_disconnected_locally(self):
        """A paused entity reader below a relay trips the *relay's*
        backlog bound: the relay sheds that one connection (counted
        locally, detached at the root) and the rest of the tree stays
        healthy and quiet."""
        with BrokerThread() as broker:
            with RelayThread(
                "r1", broker.host, broker.port, max_backlog=8
            ) as relay:
                with TcpTransport(broker.host, broker.port) as transport:
                    transport.register("pub")
                    victim = slow_socket(relay.host, relay.port)
                    try:
                        victim.sendall(Hello(entity="victim").encode())
                        [frame] = read_frames(victim, 1)
                        assert decode_net_payload(*frame).ok
                        # ... and never read another byte.
                        for _ in range(self.STORM):
                            transport.broadcast("pub", "pkg", self.PAYLOAD)

                        def shed():
                            local = request_local_stats(
                                relay.host, relay.port
                            )
                            return (
                                local.counter("slow_consumer_disconnects") >= 1
                                and local.counter("entities_attached") == 0
                            )

                        assert poll_until(shed), (
                            "relay never applied the slow-consumer policy"
                        )
                    finally:
                        victim.close()
                    # Detach propagated: the root counts no relay-attached
                    # entities, keeps the link, and drains to in_flight 0
                    # (the dropped connection's units were acked as done).
                    def settled():
                        stats = transport.stats(via="pub")
                        return (
                            stats.counter("relay_entities") == 0
                            and stats.counter("relay_links") == 1
                            and stats.in_flight == 0
                        )

                    assert poll_until(settled)
                    local = request_local_stats(relay.host, relay.port)
                    assert local.counter("downstream_relays") == 0
