"""The incremental frame decoder: chunking, caps, malformed input."""

import pytest

from repro.errors import SerializationError
from repro.net.stream import FrameDecoder
from repro.wire.codec import (
    FRAME_HEADER_SIZE,
    WIRE_MAGIC,
    WIRE_VERSION,
    encode_frame,
)


def _header(type_id=1, length=0, magic=WIRE_MAGIC, version=WIRE_VERSION):
    import struct

    return struct.pack(">2sBBI", magic, version, type_id, length)


class TestIncrementalParsing:
    def test_whole_frame_in_one_feed(self):
        decoder = FrameDecoder()
        assert decoder.feed(encode_frame(7, b"abc")) == [(7, b"abc")]
        assert decoder.at_frame_boundary()

    def test_byte_by_byte(self):
        frames = encode_frame(1, b"first") + encode_frame(2, b"") + encode_frame(
            3, b"third payload"
        )
        decoder = FrameDecoder()
        out = []
        for i in range(len(frames)):
            out.extend(decoder.feed(frames[i : i + 1]))
        assert out == [(1, b"first"), (2, b""), (3, b"third payload")]
        assert decoder.at_frame_boundary()

    def test_many_frames_in_one_chunk(self):
        chunk = b"".join(encode_frame(i, bytes([i]) * i) for i in range(6))
        decoder = FrameDecoder()
        assert decoder.feed(chunk) == [(i, bytes([i]) * i) for i in range(6)]

    def test_split_across_header_boundary(self):
        frame = encode_frame(9, b"payload!")
        decoder = FrameDecoder()
        assert decoder.feed(frame[: FRAME_HEADER_SIZE - 2]) == []
        assert not decoder.at_frame_boundary()
        assert decoder.feed(frame[FRAME_HEADER_SIZE - 2 :]) == [(9, b"payload!")]

    def test_partial_frame_is_not_a_boundary(self):
        decoder = FrameDecoder()
        decoder.feed(encode_frame(1, b"xyz")[:-1])
        assert not decoder.at_frame_boundary()
        assert decoder.buffered() == 2  # 3-byte payload minus the missing byte


class TestHostileInput:
    def test_oversized_declaration_rejected_at_header_time(self):
        """The cap must fire on the *declared* length, before any payload
        arrives -- a hostile peer never gets the receiver to wait on or
        allocate the 4 GiB it promises."""
        decoder = FrameDecoder(max_payload=1024)
        with pytest.raises(SerializationError, match="cap"):
            decoder.feed(_header(length=0xFFFFFFFF))

    def test_frame_at_cap_passes(self):
        decoder = FrameDecoder(max_payload=16)
        payload = b"q" * 16
        assert decoder.feed(_header(length=16) + payload) == [(1, payload)]

    def test_bad_magic(self):
        decoder = FrameDecoder()
        with pytest.raises(SerializationError, match="magic"):
            decoder.feed(_header(magic=b"XX") + b"rest")

    def test_bad_version(self):
        decoder = FrameDecoder()
        with pytest.raises(SerializationError, match="version"):
            decoder.feed(_header(version=WIRE_VERSION + 1))

    def test_garbage_prefix_poisons_the_stream(self):
        decoder = FrameDecoder()
        with pytest.raises(SerializationError):
            decoder.feed(b"\xde\xad\xbe\xef\xde\xad\xbe\xef")
