"""The full subscriber lifecycle over loopback TCP.

The socket mirror of ``tests/system/test_two_process.py``: the same
endpoints, sessions and messages, but every frame crosses a real TCP
connection through a :class:`BrokerServer`.  Token issuance,
registration, broadcast, decryption, revocation and rekey must all
complete, the broker's accounting must still show the paper's bandwidth
shape, and the quiescence machinery (the networked ``run_until_idle``)
must actually converge.
"""

import random

import pytest

from repro.documents.model import Document
from repro.gkm.acv import FAST_FIELD
from repro.groups import get_group
from repro.net.runtime import BrokerThread, pump_until, wait_until_quiet
from repro.net.transport import TcpTransport
from repro.policy.acp import parse_policy
from repro.system.idmgr import IdentityManager
from repro.system.idp import IdentityProvider
from repro.system.publisher import Publisher
from repro.system.service import (
    DisseminationService,
    IdentityManagerEndpoint,
    SubscriberClient,
)
from repro.system.subscriber import Subscriber
from repro.system.transport import BROADCAST
from repro.wire.messages import MESSAGE_TYPES

DOC = Document.of(
    "report", {"clinical": b"clinical body", "billing": b"billing body"}
)


@pytest.fixture
def world():
    rng = random.Random(0x7C9)
    group = get_group("nist-p192")
    idp = IdentityProvider("hr", group, rng=rng)
    idmgr = IdentityManager(group, rng=rng)
    idmgr.trust_idp(idp)
    publisher = Publisher(
        "pub", idmgr.params, idmgr.public_key, gkm_field=FAST_FIELD,
        attribute_bits=8, rng=rng,
    )
    publisher.add_policy(parse_policy("role = doc", ["clinical"], "report"))
    publisher.add_policy(parse_policy("level >= 50", ["billing"], "report"))

    with BrokerThread() as broker:
        # Entities deliberately share one TcpTransport *object* but get one
        # broker connection each -- the exact wire behaviour of separate
        # processes, minus the subprocess overhead.
        with TcpTransport(broker.host, broker.port) as transport:
            service = DisseminationService(publisher, transport)
            idmgr_ep = IdentityManagerEndpoint(idmgr, transport)
            clients = {}
            for name, attrs in (
                ("carol", {"role": "doc", "level": 70}),
                ("erin", {"role": "nur", "level": 40}),
            ):
                for attr, value in attrs.items():
                    idp.enroll(name, attr, value)
                sub = Subscriber(idmgr.assign_pseudonym(), publisher.params, rng=rng)
                clients[name] = SubscriberClient(sub, transport, publisher.name)
            yield idp, transport, service, idmgr_ep, clients


def test_full_lifecycle_over_tcp(world):
    idp, transport, service, idmgr_ep, clients = world
    endpoints = [service, idmgr_ep, *clients.values()]

    # --- token issuance over sockets ------------------------------------
    for name, client in clients.items():
        for attr in ("role", "level"):
            client.request_token(attr, assertion=idp.assert_attribute(name, attr))
    pump_until(
        endpoints,
        lambda: all(
            c.subscriber.attribute_tags() == ["level", "role"]
            for c in clients.values()
        ),
    )

    # --- registration over sockets --------------------------------------
    for client in clients.values():
        client.register_all_attributes()
    pump_until(
        endpoints,
        lambda: all(
            not c.registering()
            and len(c.results.get("role", {})) + len(c.results.get("level", {})) == 2
            for c in clients.values()
        ),
    )
    assert clients["carol"].results["role"] == {"role = doc": True}
    assert clients["carol"].results["level"] == {"level >= 50": True}
    assert clients["erin"].results["role"] == {"role = doc": False}
    assert clients["erin"].results["level"] == {"level >= 50": False}
    # Shape-identical table for both (the publisher cannot tell them apart).
    for client in clients.values():
        assert service.publisher.table.has(client.subscriber.nym, "role = doc")
        assert service.publisher.table.has(client.subscriber.nym, "level >= 50")

    # The networked run_until_idle: everything settles.
    stats = wait_until_quiet(transport, endpoints)
    assert stats.pending == 0 and stats.in_flight == 0

    # --- broadcast + decryption -----------------------------------------
    service.publish(DOC)
    pump_until(endpoints, lambda: all(c.packages for c in clients.values()))
    assert clients["carol"].latest_plaintexts() == {
        "clinical": b"clinical body",
        "billing": b"billing body",
    }
    assert clients["erin"].latest_plaintexts() == {}

    # --- revocation + rekey: zero unicast, measured at the broker -------
    wait_until_quiet(transport, endpoints)
    inbound_before = transport.snapshot().bytes_received_by(service.name)
    assert service.publisher.revoke_subscription(clients["carol"].subscriber.nym)
    service.publish(DOC)  # the rekey IS the next broadcast
    pump_until(endpoints, lambda: all(len(c.packages) == 2 for c in clients.values()))
    wait_until_quiet(transport, endpoints)
    assert transport.snapshot().bytes_received_by(service.name) == inbound_before
    assert clients["carol"].latest_plaintexts() == {}
    assert clients["erin"].latest_plaintexts() == {}

    # --- every byte the broker carried was a known frame kind -----------
    snapshot = transport.snapshot()
    known_kinds = {cls.KIND for cls in MESSAGE_TYPES.values()}
    assert snapshot.messages, "nothing crossed the broker?"
    for record in snapshot.messages:
        assert record.kind in known_kinds, record
    broadcasts = [m for m in snapshot.messages if m.kind == "broadcast-package"]
    assert len(broadcasts) == 2
    assert all(m.receiver == BROADCAST for m in broadcasts)


def test_quiescence_reflects_slow_processing(world):
    """in_flight stays above zero until a polled batch is *processed* (lazy
    acks), so wait_until_quiet cannot falsely report idleness while an
    endpoint is still working through deliveries."""
    idp, transport, service, idmgr_ep, clients = world
    carol = clients["carol"]
    carol.request_token("role", assertion=idp.assert_attribute("carol", "role"))
    pump_until([idmgr_ep], lambda: transport.pending(carol.subscriber.nym) > 0)

    # The grant has arrived but carol's endpoint never pumps: the frame
    # sits unpolled locally, acks unflushed -- the system must NOT be quiet.
    transport.flush_acks()
    stats = transport.stats()
    assert stats.in_flight + transport.pending() > 0

    # Poll without processing-completion (no flush): still not quiet.
    polled = transport.poll(carol.subscriber.nym)
    assert polled
    assert transport.stats().in_flight > 0

    # Requeue (handler failure path) keeps the debt; processing + flush
    # finally drains it.
    transport.requeue(carol.subscriber.nym, polled)
    carol.pump()
    stats = wait_until_quiet(transport, [service, idmgr_ep, carol])
    assert stats.in_flight == 0 and stats.pending == 0
    assert carol.subscriber.attribute_tags() == ["role"]
