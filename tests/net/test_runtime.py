"""Runtime pieces: pump loops, stop signals, the CLI processes themselves."""

import json
import os
import signal
import threading
import time

import pytest

from repro.errors import SerializationError, SystemError_
from repro.net._cli import parse_endpoint
from repro.net.bootstrap import write_json
from repro.net.runtime import (
    BrokerThread,
    ProcessSupervisor,
    StopRequested,
    pump_until,
    wait_for_file,
)
from repro.net.transport import TcpTransport


class _NullEndpoint:
    def pump(self):
        return 0


class TestPumpUntil:
    def test_timeout_raises(self):
        with pytest.raises(SystemError_, match="not reached"):
            pump_until([_NullEndpoint()], lambda: False, timeout=0.05)

    def test_stop_event_interrupts(self):
        """SIGTERM handling in the entity servers rides on this: a set stop
        event must break a lifecycle phase instead of spinning to timeout."""
        stop = threading.Event()
        timer = threading.Timer(0.05, stop.set)
        timer.start()
        try:
            began = time.monotonic()
            with pytest.raises(StopRequested):
                pump_until([_NullEndpoint()], lambda: False, timeout=30.0, stop=stop)
            assert time.monotonic() - began < 5.0
        finally:
            timer.cancel()

    def test_predicate_wins_over_stop(self):
        stop = threading.Event()
        stop.set()
        assert pump_until([_NullEndpoint()], lambda: True, stop=stop) == 0


class TestFrameCapSemantics:
    def test_payload_at_cap_routes_to_any_receiver_name(self):
        """The envelope headroom guarantee: a payload exactly at max_frame
        must reach every receiver, however long their entity names make
        the NetDeliver wrapper."""
        cap = 1024
        long_name = "receiver-with-a-very-long-entity-name" * 3
        with BrokerThread(max_frame=cap) as broker:
            with TcpTransport(broker.host, broker.port, max_frame=cap) as transport:
                transport.register("a")
                transport.register("b")
                transport.register(long_name)
                payload = b"x" * cap  # exactly at the cap
                transport.broadcast("a", "k", payload)
                deadline = time.monotonic() + 5
                for name in ("b", long_name):
                    got = []
                    while not got and time.monotonic() < deadline:
                        got = transport.poll(name)
                        time.sleep(0.005)
                    assert [d.payload for d in got] == [payload], name
                from repro.net.runtime import wait_until_quiet

                stats = wait_until_quiet(transport, timeout=10.0)
                assert stats.dropped == 0

    def test_payload_over_cap_rejected_before_the_socket(self):
        cap = 1024
        with BrokerThread(max_frame=cap) as broker:
            with TcpTransport(broker.host, broker.port, max_frame=cap) as transport:
                transport.register("a")
                with pytest.raises(SerializationError, match="cap"):
                    transport.deliver("a", "b", "k", b"x" * (cap + 1))
                with pytest.raises(SerializationError, match="cap"):
                    transport.broadcast("a", "k", b"x" * (cap + 1))
                # The connection is untouched: legal traffic still flows.
                transport.deliver("a", "a", "k", b"fine")
                deadline = time.monotonic() + 5
                got = []
                while not got and time.monotonic() < deadline:
                    got = transport.poll("a")
                    time.sleep(0.005)
                assert [d.payload for d in got] == [b"fine"]


@pytest.mark.parametrize("unmatched_attribute", [True])
def test_cli_servers_full_run_and_graceful_sigterm(tmp_path, unmatched_attribute):
    """The python -m entry points, driven exactly as an operator would:
    broker + idmgr + publisher(--serve) as servers, one subscriber running
    its lifecycle to a report.  The scenario deliberately gives the user an
    attribute no policy condition mentions -- the subscriber must complete
    anyway.  Afterwards every server must exit 0 on SIGTERM."""
    scenario = {
        "group": "nist-p192",
        "seed": 77,
        "attribute_bits": 8,
        "gkm_field": "fast",
        "policies": [
            {"condition": "role = doc", "segments": ["s"], "document": "d"},
        ],
        # "shoe_size" matches no condition: regression for the wedged
        # registration-phase predicate.
        "users": {"u": {"role": "doc", "shoe_size": 43}},
    }
    scenario_path = str(tmp_path / "scenario.json")
    bundle_path = str(tmp_path / "bundle.json")
    port_file = str(tmp_path / "port")
    report_path = str(tmp_path / "report.json")
    write_json(scenario_path, scenario)

    env = dict(os.environ)
    src = os.path.join(os.path.dirname(os.path.dirname(os.path.dirname(
        os.path.abspath(__file__)))), "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")

    with ProcessSupervisor() as supervisor:
        supervisor.spawn_module(
            "repro.net.broker", "--port", "0", "--port-file", port_file,
            name="broker", env=env,
        )
        broker_at = wait_for_file(port_file).strip()
        common = ["--broker", broker_at, "--scenario", scenario_path,
                  "--bundle", bundle_path]
        idmgr = supervisor.spawn_module(
            "repro.net.idmgr", *common, name="idmgr", env=env)
        publisher = supervisor.spawn_module(
            "repro.net.publisher", *common, "--serve", name="publisher", env=env)
        supervisor.spawn_module(
            "repro.net.subscriber", *common, "--user", "u",
            "--expect-broadcasts", "0", "--report", report_path,
            name="subscriber", env=env,
        )
        assert supervisor.wait("subscriber", timeout=120) == 0
        with open(report_path, encoding="utf-8") as handle:
            report = json.load(handle)
        assert report["results"]["role"] == {"role = doc": True}
        assert report["results"]["shoe_size"] == {}  # queried, none matched

        # Graceful shutdown of the long-running servers.
        for process, name in ((idmgr, "idmgr"), (publisher, "publisher")):
            process.send_signal(signal.SIGTERM)
            assert process.wait(15) == 0, name
        broker_proc = supervisor.processes[0][1]
        broker_proc.send_signal(signal.SIGTERM)
        assert broker_proc.wait(15) == 0


def test_parse_endpoint_rejects_garbage():
    from repro.errors import InvalidParameterError

    assert parse_endpoint("127.0.0.1:80") == ("127.0.0.1", 80)
    for bad in ("no-port", "host:", ":", "host:abc"):
        with pytest.raises(InvalidParameterError):
            parse_endpoint(bad)
