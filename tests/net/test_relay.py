"""The relay fan-out tier, end to end over loopback TCP.

Broker federation must be invisible to entities: the same Hello/Welcome
handshake, the same delivery/broadcast/stats semantics, the same
accounting log -- whether an entity sits at the root or three hops down
a relay chain.  And the tier itself must stay keyless and stateless:
these tests pin the module-dependency boundary (a relay process never
imports crypto/GKM/policy code) as well as the wire behaviour.
"""

import subprocess
import sys
import time

import pytest

from repro.errors import NetworkError
from repro.net.relay import RelayServer, request_local_stats
from repro.net.runtime import (
    BrokerThread,
    ProcessSupervisor,
    RelayThread,
    wait_for_file,
    wait_until_quiet,
)
from repro.net.transport import TcpTransport


def _drain(transport, entity, count, timeout=10.0):
    """Poll until ``count`` deliveries arrived for ``entity``."""
    got = []
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline and len(got) < count:
        got.extend(transport.poll(entity))
        if len(got) < count:
            time.sleep(0.01)
    assert len(got) == count, "wanted %d deliveries, got %d" % (count, len(got))
    return got


@pytest.fixture
def chain():
    """Root broker + a two-deep relay chain + one shared transport."""
    with BrokerThread() as broker:
        with RelayThread("r1", broker.host, broker.port) as r1:
            with RelayThread("r2", r1.host, r1.port) as r2:
                with TcpTransport(broker.host, broker.port) as transport:
                    yield broker, r1, r2, transport


def test_unicast_across_hops(chain):
    broker, r1, r2, transport = chain
    transport.set_attach_point("bob", r1.host, r1.port)
    transport.set_attach_point("carol", r2.host, r2.port)
    for name in ("alice", "bob", "carol"):
        transport.register(name)
    transport.deliver("alice", "carol", "k", b"down-two-hops")
    transport.deliver("carol", "alice", "k", b"up-two-hops")
    transport.deliver("carol", "bob", "k", b"down-then-up")
    (to_carol,) = _drain(transport, "carol", 1)
    (to_alice,) = _drain(transport, "alice", 1)
    (to_bob,) = _drain(transport, "bob", 1)
    assert (to_carol.sender, to_carol.payload) == ("alice", b"down-two-hops")
    assert (to_alice.sender, to_alice.payload) == ("carol", b"up-two-hops")
    assert (to_bob.sender, to_bob.payload) == ("carol", b"down-then-up")
    stats = wait_until_quiet(transport)
    assert stats.pending == 0 and stats.in_flight == 0


def test_broadcast_exactly_once_at_any_depth(chain):
    broker, r1, r2, transport = chain
    transport.set_attach_point("bob", r1.host, r1.port)
    transport.set_attach_point("carol", r2.host, r2.port)
    for name in ("alice", "bob", "carol"):
        transport.register(name)
    rounds = 5
    for index in range(rounds):
        transport.broadcast("carol", "pkg", b"round-%d" % index)
    for name in ("alice", "bob"):
        got = _drain(transport, name, rounds)
        assert [d.payload for d in got] == [
            b"round-%d" % i for i in range(rounds)
        ]
    # The origin never hears its own multicast back.
    assert transport.poll("carol") == []
    wait_until_quiet(transport)
    # Each multicast crossed each hop exactly once.
    for relay in (r1, r2):
        local = request_local_stats(relay.host, relay.port)
        assert local.counter("broadcasts_down") == rounds
        assert local.counter("dupes_dropped") == 0
        assert local.counter("unicast_down") == 0


def test_accounting_identical_to_single_broker(chain):
    """The audit log is topology-independent: same traffic, same bytes."""
    broker, r1, r2, transport = chain
    transport.set_attach_point("carol", r2.host, r2.port)
    transport.register("alice")
    transport.register("carol")
    transport.deliver("alice", "carol", "k", b"12345", note="n")
    transport.broadcast("alice", "pkg", b"payload")
    _drain(transport, "carol", 2)
    wait_until_quiet(transport)
    snap = transport.snapshot()
    assert snap.bytes_between("alice", "carol") == 5
    assert snap.bytes_between("alice", "*") == 7
    # One accounted transmission per broadcast, despite the relay fan-out.
    assert snap.kinds_count() == {"k": 1, "pkg": 1}


def test_spoof_on_connect_is_global_across_attach_points(chain):
    """Admission is one root decision; a relay is not a second door."""
    broker, r1, r2, transport = chain
    transport.register("alice")  # direct, at the root
    with TcpTransport(broker.host, broker.port) as second:
        second.set_attach_point("alice", r2.host, r2.port)
        with pytest.raises(NetworkError, match="already connected"):
            second.register("alice")
    # And the other direction: a relay-attached name blocks a root Hello.
    transport.set_attach_point("bob", r1.host, r1.port)
    transport.register("bob")
    with TcpTransport(broker.host, broker.port) as second:
        with pytest.raises(NetworkError, match="already connected"):
            second.register("bob")


def test_reconnect_through_relay_drains_backlog(chain):
    """Frames queued while a relay-attached entity is away must flush on
    re-attach, in order, before anything fresh.

    The root restores offline queueing for the name the moment the
    relay's ``RelayDetach`` propagates up (a multicast racing the detach
    is in-flight toward a dead connection: at-most-once, same as a
    direct attach), so the test waits for that barrier -- the same one
    the load engine uses before a down-window rekey.
    """
    broker, r1, r2, transport = chain
    transport.set_attach_point("carol", r2.host, r2.port)
    transport.register("alice")
    transport.register("carol")
    transport.disconnect("carol")
    deadline = time.monotonic() + 10.0
    while time.monotonic() < deadline:
        if transport.stats(via="alice").counter("relay_entities") == 0:
            break
        time.sleep(0.01)
    assert transport.stats(via="alice").counter("relay_entities") == 0
    for index in range(3):
        transport.broadcast("alice", "pkg", b"missed-%d" % index)
    transport.register("carol")  # re-attach through the same relay
    got = _drain(transport, "carol", 3)
    assert [d.payload for d in got] == [b"missed-%d" % i for i in range(3)]
    wait_until_quiet(transport)


def test_stats_through_relay_are_root_stats(chain):
    """An attached entity's StatsRequest is answered by the root -- the
    relay forwards both ways, so observability is attach-point blind."""
    broker, r1, r2, transport = chain
    transport.set_attach_point("carol", r2.host, r2.port)
    transport.register("alice")
    transport.register("carol")
    transport.deliver("alice", "carol", "k", b"x")
    _drain(transport, "carol", 1)
    wait_until_quiet(transport)
    via_relay = transport.stats(include_log=True, via="carol")
    via_root = transport.stats(include_log=True, via="alice")
    assert via_relay.log == via_root.log
    assert via_relay.counter("relay_links") == 1
    assert via_relay.counter("relay_entities") == 1


def test_relay_local_stats_expose_hop_counters(chain):
    broker, r1, r2, transport = chain
    transport.set_attach_point("carol", r2.host, r2.port)
    transport.register("alice")
    transport.register("carol")
    transport.broadcast("alice", "pkg", b"x")
    _drain(transport, "carol", 1)
    wait_until_quiet(transport)
    shallow = request_local_stats(r1.host, r1.port)
    deep = request_local_stats(r2.host, r2.port)
    assert shallow.counter("depth") == 1
    assert deep.counter("depth") == 2
    assert deep.counter("entities_attached") == 1
    assert shallow.counter("downstream_relays") == 1
    # A relay keeps no accounting log -- that is the point of the tier.
    assert shallow.log == () and shallow.log_complete


def test_relay_process_never_imports_key_material():
    """The keyless claim as an import boundary: a relay process must not
    load crypto, GKM, policy or publisher code -- it cannot hold what it
    never links."""
    probe = (
        "import sys; import repro.net.relay; "
        "bad = [m for m in sys.modules if any(t in m for t in ("
        "'crypto', 'gkm', 'policy', 'ocbe', 'publisher', 'subscriber', "
        "'documents'))]; "
        "sys.exit('leaked: %s' % bad if bad else 0)"
    )
    result = subprocess.run(
        [sys.executable, "-c", probe], capture_output=True, text=True
    )
    assert result.returncode == 0, result.stderr


def test_relay_dies_with_its_upstream():
    """Root shutdown cascades: a relay with no upstream must exit rather
    than keep accepting entities it can never serve."""
    broker = BrokerThread()
    relay = RelayThread("r1", broker.host, broker.port)
    try:
        broker.stop()
        deadline = time.monotonic() + 10.0
        while time.monotonic() < deadline:
            if relay.relay._shutdown.is_set():
                break
            time.sleep(0.01)
        assert relay.relay._shutdown.is_set()
    finally:
        relay.stop()


def test_relay_refuses_to_start_without_upstream():
    with pytest.raises(NetworkError):
        # Nothing listens on the (bound-then-closed) port.
        import socket

        sock = socket.socket()
        sock.bind(("127.0.0.1", 0))
        port = sock.getsockname()[1]
        sock.close()
        RelayThread("r1", "127.0.0.1", port)


def test_cli_prints_machine_parseable_endpoint(tmp_path):
    """``--port 0`` must print an exact ``ENDPOINT host:port`` line on
    stdout, for supervisors chaining relay processes -- broker and relay
    both.  (The supervisor merges stderr logging into the same capture,
    so the line's *presence* is the contract, not its position.)"""
    supervisor = ProcessSupervisor()
    try:
        broker_port_file = str(tmp_path / "broker.port")
        supervisor.spawn_module(
            "repro.net.broker", "--port", "0",
            "--port-file", broker_port_file, name="broker",
        )
        endpoint = wait_for_file(broker_port_file).strip()
        relay_port_file = str(tmp_path / "relay.port")
        supervisor.spawn_module(
            "repro.net.relay", "--relay-id", "r1",
            "--upstream", endpoint, "--port", "0",
            "--port-file", relay_port_file, name="relay",
        )
        relay_endpoint = wait_for_file(relay_port_file).strip()
        host, port = relay_endpoint.rsplit(":", 1)
        # The ENDPOINT stdout line of each process matches its port file.
        deadline = time.monotonic() + 10.0
        while time.monotonic() < deadline:
            broker_out = supervisor.output("broker")
            relay_out = supervisor.output("relay")
            if "ENDPOINT" in broker_out and "ENDPOINT" in relay_out:
                break
            time.sleep(0.05)
        assert ("ENDPOINT %s" % endpoint) in broker_out.splitlines()
        assert ("ENDPOINT %s" % relay_endpoint) in relay_out.splitlines()
        # And the printed endpoint really serves: probe its local stats.
        local = request_local_stats(host, int(port))
        assert local.counter("depth") == 1
    finally:
        supervisor.shutdown()


def test_deep_chain_loop_refusal_and_path():
    """Paths grow down the chain; joining anywhere on your own path is
    refused from either side."""
    with BrokerThread() as broker:
        with RelayThread("r1", broker.host, broker.port) as r1:
            with RelayThread("r2", r1.host, r1.port) as r2:
                assert r1.relay.path == ("r1",)
                assert r2.relay.path == ("r1", "r2")
                # A relay that would close a cycle is refused on accept.
                with pytest.raises(NetworkError, match="loop"):
                    RelayThread("r1", r2.host, r2.port)
