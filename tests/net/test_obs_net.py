"""Observability at the net layer: trace trailers on every frame type,
metrics collection through broker and relay, and the stats-truncation
warning."""

import dataclasses
import time

import pytest

from repro.errors import SerializationError
from repro.net.protocol import (
    NET_MESSAGE_TYPES,
    TRACE_LEN,
    ZERO_TRACE,
    Ack,
    Hello,
    MetricsReport,
    MetricsRequest,
    NetBroadcast,
    NetDeliver,
    RelayAttach,
    RelayAttachReply,
    RelayBroadcast,
    RelayDetach,
    RelayHello,
    RelayStatsReply,
    RelayStatsRequest,
    RelayWelcome,
    Shutdown,
    StatsReply,
    StatsRequest,
    TrafficRecord,
    Welcome,
    decode_net_message,
    pack_trace,
)
from repro.obs.trace import new_trace_id, tracing

TRACE = bytes(range(1, TRACE_LEN + 1))

SAMPLES = [
    Hello(entity="pn-0001"),
    Welcome(ok=True, entity="pn-0001"),
    NetDeliver(sender="a", receiver="b", kind="k", note="n", payload=b"p"),
    NetBroadcast(sender="pub", kind="pkg", note="doc", payload=b"body"),
    Ack(count=3),
    StatsRequest(include_log=True),
    StatsReply(pending=1, in_flight=2, delivered_total=3,
               log=(TrafficRecord("a", "b", "k", 9, "n"),)),
    Shutdown(),
    RelayHello(relay_id="r1"),
    RelayWelcome(ok=True, relay_id="r1", path=("root",)),
    RelayAttach(entity="pn-0042"),
    RelayAttachReply(ok=True, entity="pn-0042"),
    RelayDetach(entity="pn-0042"),
    RelayBroadcast(seq=7, sender="pub", kind="pkg", note="doc", payload=b"x"),
    RelayStatsRequest(entity="pn-0042", include_log=True),
    RelayStatsReply(entity="pn-0042", reply=b"\x01\x02"),
    MetricsRequest(),
    MetricsReport(source="r1", snapshot=b'{"counters":{}}'),
]


def test_samples_cover_every_frame_type():
    """The round-trip matrix below really does hit every net frame."""
    assert {type(m) for m in SAMPLES} == set(NET_MESSAGE_TYPES.values())


@pytest.mark.parametrize("message", SAMPLES, ids=lambda m: type(m).__name__)
def test_trace_round_trips_on_every_frame_type(message):
    traced = dataclasses.replace(message, trace=TRACE)
    decoded = decode_net_message(traced.encode())
    assert decoded == traced
    assert decoded.trace == TRACE


@pytest.mark.parametrize("message", SAMPLES, ids=lambda m: type(m).__name__)
def test_untraced_frames_stay_pre_trace_identical(message):
    """The all-zeros trace encodes by omission: a frame that carries no
    trace is byte-identical to the pre-trace protocol, and decodes with
    ``trace == ZERO_TRACE``."""
    plain = dataclasses.replace(message, trace=ZERO_TRACE).encode()
    assert plain == dataclasses.replace(message, trace=b"").encode()
    decoded = decode_net_message(plain)
    assert decoded.trace == ZERO_TRACE
    # And a traced frame costs exactly TRACE_LEN extra bytes.
    assert len(dataclasses.replace(message, trace=TRACE).encode()) == (
        len(plain) + TRACE_LEN
    )


@pytest.mark.parametrize("message", SAMPLES, ids=lambda m: type(m).__name__)
@pytest.mark.parametrize("junk", [1, TRACE_LEN - 1, TRACE_LEN + 1, 64],
                         ids=["1B", "15B", "17B", "64B"])
def test_hostile_trace_lengths_refused(message, junk):
    """Trailing bytes that are neither empty nor one exact trace id are
    malformed -- never truncated, padded, or silently absorbed."""
    payload = dataclasses.replace(message, trace=b"").payload_bytes()
    with pytest.raises(SerializationError):
        type(message).from_payload(payload + b"\xaa" * junk)


def test_pack_trace_refuses_wrong_length():
    with pytest.raises(SerializationError, match="16 bytes"):
        pack_trace(b"\x01" * 15)
    with pytest.raises(SerializationError, match="16 bytes"):
        pack_trace(b"\x01" * 17)
    assert pack_trace(b"") == b""
    assert pack_trace(ZERO_TRACE) == b""


# -- through real sockets ----------------------------------------------------


def _drain(transport, entity, deadline_s=10.0):
    deadline = time.monotonic() + deadline_s
    while time.monotonic() < deadline:
        got = transport.poll(entity)
        if got:
            return got
        time.sleep(0.01)
    raise AssertionError("no delivery for %r" % entity)


def test_trace_rides_deliveries_over_tcp():
    from repro.net.runtime import BrokerThread
    from repro.net.transport import TcpTransport

    trace = new_trace_id()
    with BrokerThread() as broker:
        with TcpTransport(broker.host, broker.port) as transport:
            transport.register("a")
            transport.register("b")
            with tracing(trace):
                transport.deliver("a", "b", "k", b"frame")
            [delivery] = _drain(transport, "b")
            assert delivery.trace == trace
            # An untraced send arrives with no trace, not a zero-filled one.
            transport.deliver("a", "b", "k", b"frame2")
            [delivery] = _drain(transport, "b")
            assert delivery.trace == b""


def test_broker_answers_metrics_request():
    from repro.net.runtime import BrokerThread
    from repro.net.transport import TcpTransport

    with BrokerThread() as broker:
        with TcpTransport(broker.host, broker.port) as transport:
            transport.register("probe")
            snapshot = transport.metrics(via="probe")
            assert snapshot["counters"]["broker.connect"] >= 1
            assert snapshot["gauges"]["broker.leaf_connections"] == 1


def test_relay_metrics_push_aggregates_at_root():
    """A relay pushes its subtree report upstream on --metrics-interval;
    the broker's root aggregate then counts it (relay.nodes gauges sum
    to the relay population)."""
    from repro.net.relay import request_local_metrics
    from repro.net.runtime import BrokerThread, RelayThread
    from repro.net.transport import TcpTransport

    with BrokerThread() as broker:
        with RelayThread("r1", broker.host, broker.port,
                         metrics_interval=0.05) as relay:
            local = request_local_metrics(relay.host, relay.port)
            assert local["gauges"]["relay.nodes"] == 1
            with TcpTransport(broker.host, broker.port) as transport:
                transport.register("probe")
                deadline = time.monotonic() + 10.0
                while time.monotonic() < deadline:
                    snapshot = transport.metrics(via="probe")
                    if snapshot["gauges"].get("relay.nodes"):
                        break
                    time.sleep(0.05)
                assert snapshot["gauges"]["relay.nodes"] == 1
                assert snapshot["counters"]["broker.relay.metrics_reports"] >= 1


def test_stats_truncation_surfaces_as_warning():
    """Satellite fix: a truncated accounting log in StatsReply is no
    longer silent -- ``stats()`` warns and counts, while the counters in
    the same reply stay exact."""
    from repro.net.runtime import BrokerThread
    from repro.net.transport import TcpTransport
    from repro.obs.metrics import get_registry

    with BrokerThread(max_frame=600) as broker:
        with TcpTransport(broker.host, broker.port, max_frame=600) as transport:
            transport.register("a")
            transport.register("b")
            for i in range(40):
                transport.deliver("a", "b", "k" * 40, b"p", note="n" * 40)
            _drain(transport, "b")
            transport.flush_acks()
            before = get_registry().counter("net.stats.truncated").value
            with pytest.warns(UserWarning, match="truncated"):
                stats = transport.stats(include_log=True)
            assert not stats.log_complete
            assert get_registry().counter("net.stats.truncated").value > before
            # The log was trimmed, never the counters.
            assert stats.delivered_total >= 1
