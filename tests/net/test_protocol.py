"""Round trips and robustness for the net control messages."""

import pytest

from repro.errors import SerializationError
from repro.net.protocol import (
    MAX_RELAY_PATH,
    NET_MESSAGE_TYPES,
    Ack,
    Hello,
    NetBroadcast,
    NetDeliver,
    RelayAttach,
    RelayAttachReply,
    RelayBroadcast,
    RelayDetach,
    RelayHello,
    RelayStatsReply,
    RelayStatsRequest,
    RelayWelcome,
    Shutdown,
    StatsReply,
    StatsRequest,
    TrafficRecord,
    Welcome,
    decode_net_message,
)

SAMPLES = [
    Hello(entity="pn-0001"),
    Welcome(ok=True, entity="pn-0001"),
    Welcome(ok=False, entity="*", reason="reserved"),
    NetDeliver(sender="a", receiver="b", kind="k", note="n", payload=b"\x00\xffp"),
    NetBroadcast(sender="pub", kind="pkg", note="doc", payload=b"body"),
    Ack(count=3),
    StatsRequest(include_log=True),
    StatsReply(pending=1, in_flight=2, delivered_total=3, dropped=4,
               log=(TrafficRecord("a", "b", "k", 9, "n"),
                    TrafficRecord("p", "*", "pkg", 300))),
    StatsReply(pending=0, in_flight=0, delivered_total=7, log_complete=False),
    StatsReply(pending=0, in_flight=0, delivered_total=7,
               counters=(("relay_links", 2), ("slow_consumer_disconnects", 1))),
    Shutdown(),
    RelayHello(relay_id="r1"),
    RelayWelcome(ok=True, relay_id="r1", path=("root", "r0")),
    RelayWelcome(ok=False, relay_id="r1", reason="loop refused"),
    RelayAttach(entity="pn-0042"),
    RelayAttachReply(ok=True, entity="pn-0042"),
    RelayAttachReply(ok=False, entity="*", reason="reserved"),
    RelayDetach(entity="pn-0042"),
    RelayBroadcast(seq=7, sender="pub", kind="pkg", note="doc", payload=b"body"),
    RelayStatsRequest(entity="pn-0042", include_log=True),
    RelayStatsReply(entity="pn-0042", reply=b"\x01\x02\x03"),
]


@pytest.mark.parametrize("message", SAMPLES, ids=lambda m: type(m).__name__)
def test_round_trip(message):
    assert decode_net_message(message.encode()) == message


@pytest.mark.parametrize("message", SAMPLES, ids=lambda m: type(m).__name__)
def test_reencode_identical(message):
    assert decode_net_message(message.encode()).encode() == message.encode()


def test_type_ids_disjoint_from_application_messages():
    """A net frame can never be mistaken for an application frame."""
    from repro.wire.messages import MESSAGE_TYPES

    assert not set(NET_MESSAGE_TYPES) & set(MESSAGE_TYPES)


def test_unknown_type_rejected():
    from repro.wire.codec import encode_frame

    with pytest.raises(SerializationError, match="unknown net frame type"):
        decode_net_message(encode_frame(200, b""))


@pytest.mark.parametrize("message", SAMPLES, ids=lambda m: type(m).__name__)
def test_truncation_rejected(message):
    frame = message.encode()
    for cut in range(8, len(frame)):
        with pytest.raises(SerializationError):
            decode_net_message(frame[:cut])


@pytest.mark.parametrize("message", SAMPLES, ids=lambda m: type(m).__name__)
def test_trailing_garbage_rejected(message):
    payload = message.payload_bytes() + b"!"
    with pytest.raises(SerializationError):
        type(message).from_payload(payload)


def test_relay_welcome_path_bounded():
    """A hostile upstream cannot declare an absurd path (pre-allocation
    bound, same idea as the frame-header check)."""
    long_path = tuple("r%d" % i for i in range(MAX_RELAY_PATH + 1))
    payload = RelayWelcome(
        ok=True, relay_id="r", path=long_path
    ).payload_bytes()
    with pytest.raises(SerializationError, match="path"):
        RelayWelcome.from_payload(payload)


def test_stats_counters_lookup():
    stats = StatsReply(
        pending=0, in_flight=0, delivered_total=0,
        counters=(("unicast_down", 5),),
    )
    assert stats.counter("unicast_down") == 5
    assert stats.counter("missing") == 0
    assert stats.counter("missing", default=-1) == -1
