"""Trace ids, the context var, and the span writer's privacy posture."""

import json
import threading

import pytest

from repro.obs.trace import (
    TRACE_LEN,
    ZERO_TRACE,
    SpanWriter,
    current_trace,
    new_trace_id,
    set_trace,
    trace_hex,
    tracing,
    writer_for,
)


def test_new_trace_id_shape():
    seen = {new_trace_id() for _ in range(32)}
    assert all(len(trace) == TRACE_LEN and any(trace) for trace in seen)
    assert len(seen) == 32  # 128 random bits do not collide in 32 draws


def test_current_trace_defaults_empty():
    assert current_trace() == b""


def test_tracing_scopes_and_nests():
    outer, inner = new_trace_id(), new_trace_id()
    with tracing(outer):
        assert current_trace() == outer
        with tracing(inner):
            assert current_trace() == inner
        assert current_trace() == outer
    assert current_trace() == b""


def test_set_trace_normalizes_zeros():
    token = set_trace(ZERO_TRACE)
    try:
        assert current_trace() == b""
    finally:
        from repro.obs.trace import reset_trace

        reset_trace(token)


def test_trace_context_is_per_thread():
    trace = new_trace_id()
    other_thread_trace = []

    def probe():
        other_thread_trace.append(current_trace())

    with tracing(trace):
        thread = threading.Thread(target=probe)
        thread.start()
        thread.join()
    assert other_thread_trace == [b""]


def test_trace_hex():
    assert trace_hex(b"") == ""
    assert trace_hex(ZERO_TRACE) == ""
    trace = bytes(range(16))
    assert trace_hex(trace) == trace.hex()


# -- SpanWriter --------------------------------------------------------------


def test_span_writer_appends_valid_jsonl(tmp_path):
    path = str(tmp_path / "obs.jsonl")
    writer = SpanWriter(path, "broker")
    trace = new_trace_id()
    writer.span("connect", peer="pn-0001")
    writer.span("deliver", trace=trace, sender="a", receiver="b", size=42)
    writer.close()

    lines = [
        json.loads(line)
        for line in open(path, encoding="utf-8").read().splitlines()
    ]
    assert [line["event"] for line in lines] == ["connect", "deliver"]
    assert lines[0]["entity"] == "broker"
    assert lines[0]["trace"] == ""
    assert lines[1]["trace"] == trace.hex()
    assert lines[1]["size"] == 42
    assert all(isinstance(line["ts"], float) for line in lines)


@pytest.mark.parametrize("value", [b"payload", bytearray(b"x"), memoryview(b"k")])
def test_span_writer_refuses_bytes_fields(tmp_path, value):
    """Privacy by construction: payload bytes and key material cannot
    enter telemetry because the writer refuses the type outright."""
    writer = SpanWriter(str(tmp_path / "obs.jsonl"), "e")
    with pytest.raises(TypeError, match="telemetry"):
        writer.span("leak", data=value)
    assert not (tmp_path / "obs.jsonl").exists()  # refused before opening


def test_span_writer_drops_none_fields(tmp_path):
    writer = SpanWriter(str(tmp_path / "obs.jsonl"), "e")
    writer.span("x", present=1, absent=None)
    writer.close()
    record = json.loads((tmp_path / "obs.jsonl").read_text())
    assert "absent" not in record
    assert record["present"] == 1


def test_span_writer_metrics_record(tmp_path):
    from repro.obs.metrics import MetricsRegistry

    registry = MetricsRegistry()
    registry.inc("frames", 2)
    writer = SpanWriter(str(tmp_path / "obs.jsonl"), "relay:r1")
    writer.metrics(registry.snapshot())
    writer.close()
    record = json.loads((tmp_path / "obs.jsonl").read_text())
    assert record["event"] == "metrics"
    assert record["snapshot"]["counters"] == {"frames": 2}


def test_span_writer_thread_safe(tmp_path):
    path = str(tmp_path / "obs.jsonl")
    writer = SpanWriter(path, "e")
    threads = 8
    per_thread = 200

    def worker(index):
        for i in range(per_thread):
            writer.span("tick", thread=index, i=i)

    pool = [
        threading.Thread(target=worker, args=(index,))
        for index in range(threads)
    ]
    for thread in pool:
        thread.start()
    for thread in pool:
        thread.join()
    writer.close()

    lines = open(path, encoding="utf-8").read().splitlines()
    assert len(lines) == threads * per_thread
    for line in lines:
        json.loads(line)  # no interleaved/torn writes


def test_writer_for(tmp_path):
    assert writer_for(None, "e") is None
    assert writer_for("", "e") is None
    writer = writer_for(str(tmp_path / "sub"), "e")
    assert writer.path == str(tmp_path / "sub" / "obs.jsonl")
    writer.span("x")  # creates the directory lazily
    writer.close()
    assert (tmp_path / "sub" / "obs.jsonl").exists()


# -- causal spans ------------------------------------------------------------


def test_stage_emits_duration_record_with_parenting(tmp_path):
    from repro.obs.trace import (
        SPAN_ID_LEN,
        new_trace_id,
        set_span_writer,
        spanning,
        stage,
    )

    writer = SpanWriter(str(tmp_path / "obs.jsonl"), "engine")
    previous = set_span_writer(writer)
    try:
        with tracing(new_trace_id()):
            with stage("publish", document="doc"):
                with stage("acv.solve", rows=4):
                    pass
    finally:
        set_span_writer(previous)
        writer.close()
    inner, outer = [
        json.loads(line)
        for line in open(tmp_path / "obs.jsonl", encoding="utf-8")
    ]
    # One record per stage, written at exit (inner closes first).
    assert inner["stage"] == "acv.solve" and outer["stage"] == "publish"
    assert len(outer["span"]) == SPAN_ID_LEN * 2
    assert "parent" not in outer  # root of the tree
    assert inner["parent"] == outer["span"]
    assert inner["trace"] == outer["trace"] != ""
    assert inner["rows"] == 4 and outer["document"] == "doc"
    for record in (inner, outer):
        assert record["dur"] >= 0.0
        assert isinstance(record["start"], float)


def test_spanning_reparents_onto_hop(tmp_path):
    from repro.obs.trace import new_span_id, set_span_writer, spanning, stage

    writer = SpanWriter(str(tmp_path / "obs.jsonl"), "engine")
    previous = set_span_writer(writer)
    hop = new_span_id()
    try:
        with spanning(hop):
            with stage("decrypt"):
                pass
    finally:
        set_span_writer(previous)
        writer.close()
    record = json.loads((tmp_path / "obs.jsonl").read_text())
    assert record["parent"] == hop


def test_stage_without_writer_is_inert():
    from repro.obs.trace import current_span, get_span_writer, stage

    assert get_span_writer() is None
    with stage("publish"):
        # A full no-op -- not even the contextvar moves, so untraced
        # runs pay one global read and nothing else.
        assert current_span() == ""
    assert current_span() == ""


def test_set_span_writer_returns_previous(tmp_path):
    from repro.obs.trace import get_span_writer, set_span_writer

    first = SpanWriter(str(tmp_path / "a.jsonl"), "a")
    second = SpanWriter(str(tmp_path / "b.jsonl"), "b")
    assert set_span_writer(first) is None
    assert set_span_writer(second) is first
    assert get_span_writer() is second
    assert set_span_writer(None) is second
    assert get_span_writer() is None


def test_span_ids_are_process_local_only(tmp_path):
    """Span ids never travel on the wire: the writer is the only place
    they appear, and they are fresh random bytes per stage entry."""
    from repro.obs.trace import new_span_id

    seen = {new_span_id() for _ in range(64)}
    assert len(seen) == 64
