"""The cProfile window recorder: folding, nesting guard, privacy, merge.

Profiles are another telemetry surface, so the same hostility rules as
span logs apply: a stale or corrupted ``profile_*.json`` must degrade to
a ``skipped`` entry, never crash the merge, and a recorded profile must
contain function names only -- no argument values ever enter the file.
"""

import json
import threading

from repro.obs.profile import (
    ProfileRecorder,
    get_profiler,
    main,
    merge_profiles,
    profile_window,
    recorder_for,
    set_profiler,
    top_functions,
)


def _burn():
    return sum(i * i for i in range(2000))


def test_window_records_named_functions(tmp_path):
    recorder = ProfileRecorder(str(tmp_path / "profile_e.json"), "e")
    with recorder.window("join"):
        _burn()
    payload = recorder.payload()
    cut = payload["stages"]["join"]
    assert cut["windows"] == 1
    assert cut["wall_s"] > 0.0
    assert cut["min_s"] <= cut["max_s"]
    assert any("_burn" in key for key in cut["functions"])
    # Privacy posture: keys are basename:lineno:function -- nothing else.
    for key, (calls, tot, cum) in cut["functions"].items():
        assert key.count(":") >= 2
        assert calls >= 1 and tot >= 0.0 and cum >= 0.0


def test_windows_fold_across_calls(tmp_path):
    recorder = ProfileRecorder(str(tmp_path / "profile_e.json"), "e")
    for _ in range(3):
        with recorder.window("rekey"):
            _burn()
    assert recorder.payload()["stages"]["rekey"]["windows"] == 3


def test_nested_window_runs_unprofiled_and_is_counted(tmp_path):
    recorder = ProfileRecorder(str(tmp_path / "profile_e.json"), "e")
    with recorder.window("outer"):
        with recorder.window("inner"):  # cProfile cannot nest
            _burn()
    payload = recorder.payload()
    assert payload["skipped_windows"] == 1
    assert "inner" not in payload["stages"]
    assert "outer" in payload["stages"]


def test_concurrent_windows_one_wins(tmp_path):
    recorder = ProfileRecorder(str(tmp_path / "profile_e.json"), "e")
    barrier = threading.Barrier(2)

    def work():
        barrier.wait()
        with recorder.window("spin"):
            _burn()

    threads = [threading.Thread(target=work) for _ in range(2)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    payload = recorder.payload()
    windows = payload["stages"].get("spin", {}).get("windows", 0)
    assert windows + payload["skipped_windows"] == 2


def test_write_is_atomic_and_skips_empty(tmp_path):
    recorder = ProfileRecorder(str(tmp_path / "d" / "profile_e.json"), "e")
    assert recorder.write() is None  # no windows -> no artifact
    assert not (tmp_path / "d").exists() or not list((tmp_path / "d").iterdir())
    with recorder.window("join"):
        _burn()
    path = recorder.write()
    assert path is not None
    payload = json.loads(open(path, encoding="utf-8").read())
    assert payload["entity"] == "e"
    assert "join" in payload["stages"]


def test_recorder_for_none_dir():
    assert recorder_for(None, "e") is None
    assert recorder_for("", "e") is None


def test_global_profiler_install_and_restore(tmp_path):
    recorder = recorder_for(str(tmp_path), "e")
    previous = set_profiler(recorder)
    try:
        assert get_profiler() is recorder
        with profile_window("join"):
            _burn()
    finally:
        assert set_profiler(previous) is recorder
    assert recorder.payload()["stages"]["join"]["windows"] == 1
    # With no recorder installed the window is a no-op.
    with profile_window("join"):
        _burn()
    assert recorder.payload()["stages"]["join"]["windows"] == 1


def test_merge_profiles_folds_and_skips_hostile(tmp_path):
    good = ProfileRecorder(str(tmp_path / "profile_a.json"), "a")
    with good.window("join"):
        _burn()
    good.write()
    other = ProfileRecorder(str(tmp_path / "profile_b.json"), "b")
    with other.window("join"):
        _burn()
    other.write()
    (tmp_path / "profile_broken.json").write_text("{not json")
    (tmp_path / "profile_shape.json").write_text('{"stages": 42}')
    (tmp_path / "profile_partial.json").write_text(
        json.dumps({"entity": "p", "stages": {"join": {"windows": "NaN?"}}})
    )
    merged = merge_profiles([
        str(tmp_path / name)
        for name in ("profile_a.json", "profile_b.json",
                     "profile_broken.json", "profile_shape.json",
                     "profile_partial.json")
    ])
    assert merged["stages"]["join"]["windows"] == 2
    # The partially-valid file contributes its entity but not the bad
    # stage; the unparseable ones contribute nothing at all.
    assert sorted(merged["entities"]) == ["a", "b", "p"]
    assert len(merged["skipped"]) == 3
    top = top_functions(merged, "join", 5)
    assert top and all(isinstance(row[0], str) for row in top)
    assert top_functions(merged, "absent", 5) == []


def test_cli_merges_and_emits_bench(tmp_path, capsys, monkeypatch):
    recorder = ProfileRecorder(str(tmp_path / "profile_e.json"), "e")
    with recorder.window("join"):
        _burn()
    recorder.write()
    monkeypatch.setenv("REPRO_BENCH_DIR", str(tmp_path / "bench"))
    assert main([str(tmp_path), "--bench", "profile_ocbe", "--check"]) == 0
    out = capsys.readouterr().out
    assert "stage join" in out
    assert "CHECK OK" in out
    payload = json.loads(
        (tmp_path / "bench" / "BENCH_profile_ocbe.json").read_text()
    )
    assert payload["stages"]["join"]["top"]
    assert "window_join" in payload["measurements"]


def test_cli_check_fails_on_empty(tmp_path, capsys):
    assert main([str(tmp_path), "--check"]) == 1
    assert "CHECK FAILED" in capsys.readouterr().out
