"""``python -m repro.obs.report``: validation, summary, gate, trend."""

import json

import pytest

from repro.obs.report import discover, load_spans, main, summarize
from repro.obs.trace import SpanWriter, new_trace_id


def _write_world(tmp_path):
    """Three entities logging spans; one trace crosses all three."""
    trace = new_trace_id()
    broker = SpanWriter(str(tmp_path / "broker" / "obs.jsonl"), "broker")
    relay = SpanWriter(str(tmp_path / "relay" / "obs.jsonl"), "relay:r1")
    sub = SpanWriter(str(tmp_path / "sub" / "obs.jsonl"), "pn-0001")
    broker.span("deliver", trace=trace, sender="pub", receiver="pn-0001")
    relay.span("deliver", trace=trace, sender="pub", receiver="pn-0001")
    sub.span("handle", trace=trace, sender="pub")
    sub.span("handle", trace=new_trace_id(), sender="idmgr")
    broker.span("connect", peer="pn-0001")  # untraced
    for writer in (broker, relay, sub):
        writer.close()
    return trace


def test_discover_finds_obs_files(tmp_path):
    _write_world(tmp_path)
    files = discover([str(tmp_path)])
    assert len(files) == 3
    assert all(path.endswith("obs.jsonl") for path in files)
    # A direct file path is passed through; a missing one is skipped.
    assert discover([files[0]]) == [files[0]]
    assert discover([str(tmp_path / "nope")]) == []


def test_load_and_summarize(tmp_path):
    trace = _write_world(tmp_path)
    spans = []
    for path in discover([str(tmp_path)]):
        file_spans, bad = load_spans(path)
        assert bad == []
        spans.extend(file_spans)
    summary = summarize(spans)
    assert summary["spans"] == 5
    assert len(summary["traces"]) == 2
    assert summary["cross_process_traces"] == 1
    crossing = [row for row in summary["traces"] if row["trace"] == trace.hex()]
    assert crossing[0]["entities"] == ["broker", "pn-0001", "relay:r1"]
    assert crossing[0]["spans"] == 3


@pytest.mark.parametrize("line,reason", [
    ("not json {", "bad JSON"),
    ('"a string"', "not a JSON object"),
    ('{"entity": "e", "event": "x", "trace": ""}', "'ts'"),
    ('{"ts": true, "entity": "e", "event": "x", "trace": ""}', "'ts'"),
    ('{"ts": 1.0, "event": "x", "trace": ""}', "'entity'"),
    ('{"ts": 1.0, "entity": "", "event": "x", "trace": ""}', "'entity'"),
    ('{"ts": 1.0, "entity": "e", "trace": ""}', "'event'"),
    ('{"ts": 1.0, "entity": "e", "event": "x"}', "'trace'"),
    ('{"ts": 1.0, "entity": "e", "event": "x", "trace": "abcd"}', "hex digits"),
    ('{"ts": 1.0, "entity": "e", "event": "x", "trace": "Z" }', "hex"),
], ids=[
    "bad-json", "not-object", "no-ts", "bool-ts", "no-entity",
    "empty-entity", "no-event", "no-trace", "short-trace", "non-hex",
])
def test_malformed_lines_reported(tmp_path, line, reason):
    path = tmp_path / "obs.jsonl"
    path.write_text(line + "\n")
    spans, bad = load_spans(str(path))
    assert spans == []
    assert len(bad) == 1
    assert reason in bad[0].reason


def test_blank_lines_skipped(tmp_path):
    path = tmp_path / "obs.jsonl"
    path.write_text(
        '\n{"ts": 1.0, "entity": "e", "event": "x", "trace": ""}\n\n'
    )
    spans, bad = load_spans(str(path))
    assert len(spans) == 1 and bad == []


# -- the CLI -----------------------------------------------------------------


def test_main_summary_and_check_ok(tmp_path, capsys):
    _write_world(tmp_path)
    assert main([str(tmp_path), "--check"]) == 0
    out = capsys.readouterr().out
    assert "3 span file(s), 5 span(s), 2 trace(s) (1 cross-process)" in out
    assert "CHECK OK" in out


def test_main_check_fails_on_malformed(tmp_path, capsys):
    _write_world(tmp_path)
    (tmp_path / "broker" / "obs.jsonl").open("a").write("garbage\n")
    assert main([str(tmp_path), "--check"]) == 1
    out = capsys.readouterr().out
    assert "MALFORMED" in out
    assert "CHECK FAILED" in out


def test_main_check_fails_on_no_spans(tmp_path, capsys):
    assert main([str(tmp_path), "--check"]) == 1
    assert "no spans" in capsys.readouterr().out


def test_main_without_check_tolerates_malformed(tmp_path):
    (tmp_path / "obs.jsonl").write_text("garbage\n")
    assert main([str(tmp_path)]) == 0


def test_main_emits_bench_trend(tmp_path, capsys, monkeypatch):
    _write_world(tmp_path)
    bench_dir = tmp_path / "bench"
    bench_dir.mkdir()
    monkeypatch.setenv("REPRO_BENCH_DIR", str(bench_dir))
    assert main([str(tmp_path), "--bench", "obs_trace"]) == 0
    payload = json.loads((bench_dir / "BENCH_obs_trace.json").read_text())
    assert payload["op"] == "obs.trace.latency"
    assert payload["params"]["spans"] == 5
    assert payload["traces"] == 2
    assert payload["cross_process_traces"] == 1
    assert payload["measurements"]["trace_wall"]["rounds"] == 2


def test_module_entrypoint_runs(tmp_path):
    import subprocess
    import sys

    _write_world(tmp_path)
    result = subprocess.run(
        [sys.executable, "-m", "repro.obs.report", str(tmp_path), "--check"],
        capture_output=True, text=True,
    )
    assert result.returncode == 0, result.stdout + result.stderr
    assert "CHECK OK" in result.stdout
