"""Trace stitching, clock-skew correction and latency attribution.

The analyzer consumes files written by *other* processes -- possibly
truncated mid-write, possibly from a hostile or buggy entity -- so next
to the happy path every structural invariant is attacked directly:
forged parent ids, cycles, duplicate span ids, spans with no start,
non-monotonic timestamps.  The required behavior is always the same:
typed :class:`TraceProblem` records and a *partial* result, never a
crash and never silent mis-attribution.
"""

import json
import subprocess
import sys

from repro.obs.analyze import (
    OTHER_STAGE,
    TRANSIT_STAGE,
    TraceView,
    analyze_paths,
    attribution_table,
    exact_quantile,
    main,
)

TRACE_A = "aa" * 16
TRACE_B = "bb" * 16


def _write(tmp_path, entity, records):
    directory = tmp_path / entity
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / "obs.jsonl"
    with open(path, "w", encoding="utf-8") as handle:
        for record in records:
            record.setdefault("entity", entity)
            record.setdefault("trace", "")
            handle.write(json.dumps(record) + "\n")
    return str(path)


def _span(ts, trace, span, stage, start, dur, parent=None, **fields):
    record = {
        "event": "span", "ts": ts, "trace": trace, "span": span,
        "stage": stage, "start": start, "dur": dur,
    }
    if parent is not None:
        record["parent"] = parent
    record.update(fields)
    return record


def _publish_fixture(tmp_path, skew=0.0):
    """One publish crossing publisher -> broker -> subscriber, with the
    subscriber's clock shifted by ``skew`` seconds.

    Ground truth (publisher clock): publish spans [100.0, 100.5],
    broker broadcast at 100.6, subscriber handle at 100.7 with an
    0.2 s decrypt.  Both hop directions exist for the subscriber
    (register send at 90 -> handle at 90.1, reply path back), so the
    offset estimate is symmetric.
    """
    pub = _write(tmp_path, "pub", [
        _span(100.5, TRACE_A, "01" * 8, "publish", 100.0, 0.5),
        {"event": "publish", "ts": 100.5, "trace": TRACE_A,
         "span": "01" * 8, "ep": "alpha", "kind": "broadcast-package"},
        {"event": "handle", "ts": 90.0, "trace": TRACE_B, "span": "05" * 8,
         "sender": "sub", "ep": "alpha", "kind": "registration-request"},
        {"event": "send", "ts": 90.05, "trace": TRACE_B, "ep": "alpha",
         "receiver": "sub", "kind": "registration-ack"},
    ])
    broker = _write(tmp_path, "broker", [
        {"event": "connect", "ts": 80.0, "peer": "alpha"},
        {"event": "broadcast", "ts": 100.6, "trace": TRACE_A,
         "sender": "alpha", "kind": "broadcast-package", "seq": 1},
    ])
    sub = _write(tmp_path, "sub", [
        {"event": "send", "ts": 89.95 + skew, "trace": TRACE_B,
         "ep": "sub", "receiver": "alpha", "kind": "registration-request"},
        {"event": "handle", "ts": 90.10 + skew, "trace": TRACE_B,
         "span": "06" * 8, "sender": "alpha", "ep": "sub",
         "kind": "registration-ack"},
        {"event": "handle", "ts": 100.70 + skew, "trace": TRACE_A,
         "span": "02" * 8, "sender": "alpha", "ep": "sub",
         "kind": "broadcast-package"},
        _span(100.92 + skew, TRACE_A, "03" * 8, "decrypt",
              100.72 + skew, 0.2),
    ])
    return pub, broker, sub


# -- happy path --------------------------------------------------------------


def test_stitch_single_file_tree(tmp_path):
    _write(tmp_path, "engine", [
        _span(10.9, TRACE_A, "aa" * 8, "publish", 10.0, 0.9),
        _span(10.8, TRACE_A, "bb" * 8, "acv.solve", 10.2, 0.6,
              parent="aa" * 8),
        {"event": "publish", "ts": 10.9, "trace": TRACE_A,
         "span": "aa" * 8, "ep": "alpha", "kind": "broadcast-package"},
    ])
    analysis = analyze_paths([str(tmp_path)])
    (view,) = analysis.traces
    assert view.kind == "publish"
    assert view.problems == []
    # Self time excludes the nested child's duration.
    assert abs(view.stage_self["publish"] - 0.3) < 1e-9
    assert abs(view.stage_self["acv.solve"] - 0.6) < 1e-9
    assert abs(view.wall_s - 0.9) < 1e-9


def test_clock_skew_recovered_and_transit_positive(tmp_path):
    _publish_fixture(tmp_path, skew=5.0)
    analysis = analyze_paths([str(tmp_path)])
    sub_path = [p for p in analysis.files if "sub" in p][0]
    # The subscriber's +5 s skew is recovered to within the transit
    # asymmetry of the synthetic pairs (~0.1 s).
    assert abs(analysis.offsets[sub_path] - 5.0) < 0.2
    (view,) = analysis.publish_traces
    assert view.stitched
    assert view.transit_s > 0.0
    assert not any(p.kind == "negative-transit" for p in view.problems)


def test_unskewed_run_has_near_zero_offsets(tmp_path):
    _publish_fixture(tmp_path, skew=0.0)
    analysis = analyze_paths([str(tmp_path)])
    assert all(abs(theta) < 0.2 for theta in analysis.offsets.values())


def test_reference_override_pins_zero(tmp_path):
    pub, _broker, sub = _publish_fixture(tmp_path, skew=5.0)
    analysis = analyze_paths([str(tmp_path)], reference=sub)
    assert analysis.reference == sub
    assert analysis.offsets[sub] == 0.0
    assert abs(analysis.offsets[pub] + 5.0) < 0.2


def test_unknown_reference_falls_back(tmp_path):
    _publish_fixture(tmp_path)
    analysis = analyze_paths([str(tmp_path)], reference="/nope/obs.jsonl")
    assert any(p.kind == "unknown-reference" for p in analysis.problems)
    assert analysis.reference in analysis.files


def test_fully_stitched_ignores_files_outside_publishes(tmp_path):
    _publish_fixture(tmp_path)
    # An idmgr that never sees a broadcast must not make the publish
    # look partially stitched.
    _write(tmp_path, "idmgr", [
        {"event": "handle", "ts": 50.0, "trace": "cc" * 16,
         "span": "07" * 8, "sender": "sub", "ep": "idmgr",
         "kind": "token-request"},
    ])
    analysis = analyze_paths([str(tmp_path)])
    assert analysis.stitched_fraction == 1.0


def test_attribution_table_shares_and_quantiles(tmp_path):
    _publish_fixture(tmp_path)
    analysis = analyze_paths([str(tmp_path)])
    table = analysis.publish_attribution()
    assert table["traces"] == 1
    stages = table["stages"]
    assert set(stages) >= {"publish", "decrypt", TRANSIT_STAGE}
    for cut in stages.values():
        assert cut["p50_s"] <= cut["p95_s"] <= cut["p99_s"]
    # publish 0.5 s + decrypt 0.2 s + transit inside a ~0.92 s wall: the
    # named stages account for most of it (the broker hop's one-way
    # offset estimate eats the first-arrival transit, so the exact
    # coverage depends on which minimum the estimator saw).
    assert table["coverage"] > 0.7


def test_union_wall_counts_overlap_once():
    views = [
        TraceView(trace="a", kind="publish", start=0.0, end=1.0, files=()),
        TraceView(trace="b", kind="publish", start=0.5, end=1.5, files=()),
        TraceView(trace="c", kind="publish", start=3.0, end=3.5, files=()),
    ]
    views[0].stage_self = {"decrypt": 1.0}
    table = attribution_table(views)
    assert abs(table["wall_s"] - 2.0) < 1e-9
    assert abs(table["stages"]["decrypt"]["share"] - 0.5) < 1e-9


def test_idle_gap_becomes_transit(tmp_path):
    # Two arrivals 1 s apart, each with a 0.1 s handling span: the 0.8 s
    # the process spent waiting between them is hop.transit, not
    # "other" -- in a serial pump that gap is exactly queue/wire dwell.
    _write(tmp_path, "engine", [
        _span(10.2, TRACE_A, "aa" * 8, "publish", 10.0, 0.2),
        {"event": "publish", "ts": 10.2, "trace": TRACE_A,
         "span": "aa" * 8, "ep": "alpha", "kind": "broadcast-package"},
        {"event": "handle", "ts": 10.3, "trace": TRACE_A, "span": "bb" * 8,
         "sender": "alpha", "ep": "m1", "kind": "broadcast-package"},
        _span(10.4, TRACE_A, "cc" * 8, "hop.handle", 10.3, 0.1),
        {"event": "handle", "ts": 11.3, "trace": TRACE_A, "span": "dd" * 8,
         "sender": "alpha", "ep": "m2", "kind": "broadcast-package"},
        _span(11.4, TRACE_A, "ee" * 8, "hop.handle", 11.3, 0.1),
    ])
    analysis = analyze_paths([str(tmp_path)])
    (view,) = analysis.publish_traces
    # 0.1 s first-arrival gap + 0.9 s idle between the two handles
    # (the 1.1 s inter-arrival extent minus 0.2 s of handling spans).
    assert 0.9 < view.transit_s < 1.1
    table = attribution_table([view])
    assert OTHER_STAGE not in table["stages"]


def test_exact_quantile():
    assert exact_quantile([], 0.5) == 0.0
    assert exact_quantile([7.0], 0.99) == 7.0
    values = [1.0, 2.0, 3.0, 4.0]
    assert exact_quantile(values, 0.0) == 1.0
    assert exact_quantile(values, 1.0) == 4.0
    assert abs(exact_quantile(values, 0.5) - 2.5) < 1e-9


# -- hostile span records ----------------------------------------------------


def _single_file_analysis(tmp_path, records):
    _write(tmp_path, "engine", records)
    return analyze_paths([str(tmp_path)])


def test_forged_parent_id_degrades(tmp_path):
    analysis = _single_file_analysis(tmp_path, [
        _span(10.5, TRACE_A, "aa" * 8, "publish", 10.0, 0.5),
        _span(10.4, TRACE_A, "bb" * 8, "decrypt", 10.1, 0.3,
              parent="f0" * 8),  # no such span anywhere
        {"event": "publish", "ts": 10.5, "trace": TRACE_A,
         "span": "aa" * 8, "ep": "alpha", "kind": "broadcast-package"},
    ])
    (view,) = analysis.traces
    assert any(p.kind == "unknown-parent" for p in view.problems)
    # The orphan still contributes its own self time; the publish span
    # keeps its full duration (the forged child never subtracts).
    assert abs(view.stage_self["publish"] - 0.5) < 1e-9
    assert abs(view.stage_self["decrypt"] - 0.3) < 1e-9


def test_parent_cycle_degrades(tmp_path):
    analysis = _single_file_analysis(tmp_path, [
        _span(10.5, TRACE_A, "aa" * 8, "publish", 10.0, 0.5,
              parent="bb" * 8),
        _span(10.4, TRACE_A, "bb" * 8, "decrypt", 10.1, 0.3,
              parent="aa" * 8),
        {"event": "publish", "ts": 10.5, "trace": TRACE_A,
         "span": "aa" * 8, "ep": "alpha", "kind": "broadcast-package"},
    ])
    (view,) = analysis.traces
    assert any(p.kind == "parent-cycle" for p in view.problems)
    # Mutual parenthood subtracts both ways; the self-time clamp keeps
    # every stage non-negative instead of inventing negative time.
    assert all(v >= 0.0 for v in view.stage_self.values())


def test_duplicate_span_ids_keep_first(tmp_path):
    analysis = _single_file_analysis(tmp_path, [
        _span(10.5, TRACE_A, "aa" * 8, "publish", 10.0, 0.5),
        _span(10.9, TRACE_A, "aa" * 8, "publish", 10.0, 99.0),  # forged dup
        {"event": "publish", "ts": 10.5, "trace": TRACE_A,
         "span": "aa" * 8, "ep": "alpha", "kind": "broadcast-package"},
    ])
    (view,) = analysis.traces
    assert any(p.kind == "duplicate-span" for p in view.problems)
    assert abs(view.stage_self["publish"] - 0.5) < 1e-9


def test_span_without_start_degrades(tmp_path):
    # An "end without start": the writer emits one record at exit, so a
    # crashed stage shows up as a span record missing start/dur fields.
    analysis = _single_file_analysis(tmp_path, [
        {"event": "span", "ts": 10.5, "trace": TRACE_A, "span": "aa" * 8,
         "stage": "publish", "dur": 0.5},
        {"event": "publish", "ts": 10.5, "trace": TRACE_A,
         "span": "aa" * 8, "ep": "alpha", "kind": "broadcast-package"},
    ])
    (view,) = analysis.traces
    assert any(p.kind == "bad-span-record" for p in view.problems)
    assert "publish" not in view.stage_self


def test_non_monotonic_duration_degrades(tmp_path):
    analysis = _single_file_analysis(tmp_path, [
        _span(10.5, TRACE_A, "aa" * 8, "publish", 10.0, -0.5),
        {"event": "publish", "ts": 10.5, "trace": TRACE_A,
         "span": "aa" * 8, "ep": "alpha", "kind": "broadcast-package"},
    ])
    (view,) = analysis.traces
    assert any(p.kind == "bad-span-record" for p in view.problems)
    assert view.stage_self == {}


def test_malformed_lines_reported_not_fatal(tmp_path):
    path = _write(tmp_path, "engine", [
        _span(10.5, TRACE_A, "aa" * 8, "publish", 10.0, 0.5),
        {"event": "publish", "ts": 10.5, "trace": TRACE_A,
         "span": "aa" * 8, "ep": "alpha", "kind": "broadcast-package"},
    ])
    with open(path, "a", encoding="utf-8") as handle:
        handle.write("{truncated mid-write\n")
    analysis = analyze_paths([str(tmp_path)])
    assert any(p.kind == "malformed-line" for p in analysis.problems)
    assert len(analysis.publish_traces) == 1


def test_unsynced_file_flagged(tmp_path):
    _publish_fixture(tmp_path)
    # A file sharing no hop pair with anyone cannot be skew-corrected.
    _write(tmp_path, "island", [
        _span(500.0, "dd" * 16, "09" * 8, "decrypt", 499.0, 1.0),
    ])
    analysis = analyze_paths([str(tmp_path)])
    assert any(p.kind == "unsynced-file" for p in analysis.problems)


# -- the CLI -----------------------------------------------------------------


def test_cli_check_passes_on_good_run(tmp_path, capsys):
    _publish_fixture(tmp_path)
    assert main([str(tmp_path), "--check"]) == 0
    assert "CHECK OK" in capsys.readouterr().out


def test_cli_check_fails_without_publishes(tmp_path, capsys):
    _write(tmp_path, "engine", [
        {"event": "handle", "ts": 1.0, "trace": TRACE_B, "span": "01" * 8,
         "sender": "a", "ep": "b", "kind": "registration-request"},
    ])
    assert main([str(tmp_path), "--check"]) == 1
    assert "CHECK FAILED" in capsys.readouterr().out


def test_cli_check_fails_below_min_coverage(tmp_path, capsys):
    # A publish whose wall is mostly an *instrumentation gap*: a second
    # span-less record a second later stretches the wall with nothing
    # attributing it (no arrivals, so no idle-gap transit either).
    _write(tmp_path, "engine", [
        _span(10.1, TRACE_A, "aa" * 8, "publish", 10.0, 0.1),
        {"event": "publish", "ts": 10.1, "trace": TRACE_A,
         "span": "aa" * 8, "ep": "alpha", "kind": "broadcast-package"},
        _span(20.0, TRACE_A, "bb" * 8, "decrypt", 19.99, 0.01),
    ])
    assert main([str(tmp_path), "--check", "--min-coverage", "0.8"]) == 1
    assert "CHECK FAILED" in capsys.readouterr().out


def test_cli_bench_emission(tmp_path, monkeypatch):
    _publish_fixture(tmp_path)
    monkeypatch.setenv("REPRO_BENCH_DIR", str(tmp_path / "bench"))
    assert main([str(tmp_path), "--bench", "obs_attribution"]) == 0
    payload = json.loads(
        (tmp_path / "bench" / "BENCH_obs_attribution.json").read_text()
    )
    assert payload["attribution"]["traces"] == 1
    assert "publish_wall" in payload["measurements"]


def test_analyze_and_profile_import_no_crypto():
    """The keyless-relay import boundary extends to the analysis tier:
    stitching span logs and merging profiles must not load key
    material's code."""
    probe = (
        "import sys; import repro.obs.analyze; import repro.obs.profile; "
        "bad = [m for m in sys.modules if any(t in m for t in ("
        "'crypto', 'gkm', 'policy', 'ocbe', 'publisher', 'subscriber', "
        "'documents'))]; "
        "sys.exit('leaked: %s' % bad if bad else 0)"
    )
    result = subprocess.run(
        [sys.executable, "-c", probe], capture_output=True, text=True
    )
    assert result.returncode == 0, result.stderr
