"""The metrics core: determinism, thread safety, hostile snapshots."""

import json
import threading

import pytest

from repro.errors import SerializationError
from repro.obs.metrics import (
    DEFAULT_LATENCY_EDGES,
    MAX_SNAPSHOT_BYTES,
    MetricsRegistry,
    get_registry,
    merge_snapshots,
    snapshot_from_json,
    snapshot_to_json,
)


# -- instruments -------------------------------------------------------------


def test_counter_gauge_histogram_basics():
    registry = MetricsRegistry()
    registry.inc("frames")
    registry.inc("frames", 4)
    registry.set_gauge("depth", 7)
    registry.observe("lat", 0.002)
    snapshot = registry.snapshot()
    assert snapshot["counters"] == {"frames": 5}
    assert snapshot["gauges"] == {"depth": 7.0}
    assert snapshot["histograms"]["lat"]["count"] == 1
    assert snapshot["histograms"]["lat"]["sum"] == pytest.approx(0.002)


def test_histogram_bucket_determinism():
    """Fixed edges, exact boundary rule (<= edge): two registries that
    observe the same values produce byte-identical snapshot JSON."""
    values = [0.00009, 0.0001, 0.00011, 0.005, 9.0, 11.0, 1000.0]
    snapshots = []
    for _ in range(2):
        registry = MetricsRegistry()
        for value in values:
            registry.observe("lat", value)
        snapshots.append(snapshot_to_json(registry.snapshot()))
    assert snapshots[0] == snapshots[1]

    hist = json.loads(snapshots[0])["histograms"]["lat"]
    assert hist["edges"] == list(DEFAULT_LATENCY_EDGES)
    assert len(hist["counts"]) == len(DEFAULT_LATENCY_EDGES) + 1
    # 0.00009 and the exact edge 0.0001 land in bucket 0; 0.00011 in 1.
    assert hist["counts"][0] == 2
    assert hist["counts"][1] == 1
    # 11.0 and 1000.0 overflow past the last edge (10 s).
    assert hist["counts"][-1] == 2
    assert hist["min"] == pytest.approx(0.00009)
    assert hist["max"] == pytest.approx(1000.0)


def test_histogram_rejects_bad_edges():
    registry = MetricsRegistry()
    with pytest.raises(SerializationError):
        registry.histogram("h", edges=())
    with pytest.raises(SerializationError):
        registry.histogram("h", edges=(1.0, 1.0))
    with pytest.raises(SerializationError):
        registry.histogram("h", edges=(2.0, 1.0))


def test_timer_observes_elapsed():
    registry = MetricsRegistry()
    with registry.timer("op"):
        pass
    hist = registry.snapshot()["histograms"]["op"]
    assert hist["count"] == 1
    assert hist["sum"] >= 0.0


def test_disabled_registry_is_silent():
    registry = MetricsRegistry(enabled=False)
    registry.inc("c")
    registry.set_gauge("g", 1)
    registry.observe("h", 0.5)
    with registry.timer("t"):
        pass
    assert registry.snapshot() == {
        "counters": {}, "gauges": {}, "histograms": {},
    }
    registry.enable()
    registry.inc("c")
    assert registry.snapshot()["counters"] == {"c": 1}


def test_reset_drops_instruments():
    registry = MetricsRegistry()
    registry.inc("c")
    registry.reset()
    assert registry.snapshot()["counters"] == {}


def test_global_registry_is_one_per_process():
    assert get_registry() is get_registry()


# -- thread safety -----------------------------------------------------------


def test_registry_thread_safety():
    """The exact scenario TcpTransport creates: an asyncio thread and
    arbitrary caller threads mutating the same registry concurrently.
    Every increment and observation must land; none may be lost to a
    read-modify-write race."""
    registry = MetricsRegistry()
    threads = 8
    per_thread = 2000
    barrier = threading.Barrier(threads)

    def worker(index):
        barrier.wait()
        for i in range(per_thread):
            registry.inc("shared")
            registry.inc("mine.%d" % index)
            registry.observe("lat", 0.001 * (i % 7))
            registry.set_gauge("gauge.%d" % index, i)
            if i % 100 == 0:
                registry.snapshot()  # snapshots interleave safely

    pool = [
        threading.Thread(target=worker, args=(index,))
        for index in range(threads)
    ]
    for thread in pool:
        thread.start()
    for thread in pool:
        thread.join()

    snapshot = registry.snapshot()
    assert snapshot["counters"]["shared"] == threads * per_thread
    for index in range(threads):
        assert snapshot["counters"]["mine.%d" % index] == per_thread
        assert snapshot["gauges"]["gauge.%d" % index] == per_thread - 1
    hist = snapshot["histograms"]["lat"]
    assert hist["count"] == threads * per_thread
    assert sum(hist["counts"]) == hist["count"]


# -- JSON round trip + hostile inputs ---------------------------------------


def _populated():
    registry = MetricsRegistry()
    registry.inc("a", 3)
    registry.set_gauge("b", 1.5)
    registry.observe("c", 0.01)
    registry.observe("c", 5.0)
    return registry.snapshot()


def test_snapshot_json_round_trip_exact():
    snapshot = _populated()
    assert snapshot_from_json(snapshot_to_json(snapshot)) == snapshot


def test_snapshot_json_is_canonical():
    snapshot = _populated()
    assert snapshot_to_json(snapshot) == snapshot_to_json(
        snapshot_from_json(snapshot_to_json(snapshot))
    )


@pytest.mark.parametrize("raw", [
    b"",                                   # not JSON
    b"\xff\xfe",                           # not UTF-8
    b"[]",                                 # not an object
    b'{"counters": []}',                   # section not an object
    b'{"counters": {"": 1}}',              # empty metric name
    b'{"counters": {"a": true}}',          # bool masquerading as number
    b'{"counters": {"a": "x"}}',           # string value
    b'{"histograms": {"h": 3}}',           # histogram not an object
    b'{"histograms": {"h": {"edges": [1.0], "counts": [1]}}}',  # counts len
    b'{"histograms": {"h": {"edges": [], "counts": [1]}}}',     # no edges
], ids=[
    "not-json", "not-utf8", "not-object", "section-type", "empty-name",
    "bool-value", "string-value", "hist-type", "counts-len", "no-edges",
])
def test_hostile_snapshots_refused(raw):
    with pytest.raises(SerializationError):
        snapshot_from_json(raw)


def test_oversized_snapshot_refused():
    raw = snapshot_to_json(_populated())
    with pytest.raises(SerializationError, match="cap"):
        snapshot_from_json(raw, max_bytes=len(raw) - 1)
    huge = b'{"counters": {' + b'"a": 1' + b" " * MAX_SNAPSHOT_BYTES + b"}}"
    with pytest.raises(SerializationError):
        snapshot_from_json(huge)


def test_too_long_metric_name_refused():
    raw = snapshot_to_json({"counters": {"x" * 121: 1}})
    with pytest.raises(SerializationError, match="name"):
        snapshot_from_json(raw)


def test_too_many_metrics_refused():
    table = {"c%04d" % i: 1 for i in range(1025)}
    with pytest.raises(SerializationError):
        snapshot_from_json(snapshot_to_json({"counters": table}))


# -- merging -----------------------------------------------------------------


def test_merge_sums_counters_and_gauges():
    a = {"counters": {"x": 1}, "gauges": {"g": 2.0}, "histograms": {}}
    b = {"counters": {"x": 4, "y": 1}, "gauges": {"g": 3.0}, "histograms": {}}
    merged = merge_snapshots([a, None, b])
    assert merged["counters"] == {"x": 5, "y": 1}
    # Gauges sum deliberately: subtree totals (entities attached, inbox
    # depth, relay.nodes as a relay count) aggregate additively.
    assert merged["gauges"] == {"g": 5.0}


def test_merge_histograms_same_edges():
    r1, r2 = MetricsRegistry(), MetricsRegistry()
    r1.observe("h", 0.001)
    r2.observe("h", 4.0)
    r2.observe("h", 0.0002)
    merged = merge_snapshots([r1.snapshot(), r2.snapshot()])
    hist = merged["histograms"]["h"]
    assert hist["count"] == 3
    assert hist["sum"] == pytest.approx(4.0012)
    assert hist["min"] == pytest.approx(0.0002)
    assert hist["max"] == pytest.approx(4.0)
    assert sum(hist["counts"]) == 3


def test_merge_histograms_mismatched_edges_keeps_totals():
    r1, r2 = MetricsRegistry(), MetricsRegistry()
    r1.histogram("h", edges=(1.0, 2.0)).observe(0.5)
    r2.histogram("h", edges=(10.0,)).observe(5.0)
    merged = merge_snapshots([r1.snapshot(), r2.snapshot()])
    hist = merged["histograms"]["h"]
    # First edges win; the version-skewed child folds into count/sum only.
    assert hist["edges"] == [1.0, 2.0]
    assert hist["count"] == 2
    assert hist["sum"] == pytest.approx(5.5)
    assert sum(hist["counts"]) == 1


def test_merge_round_trips_through_wire_form():
    merged = merge_snapshots([_populated(), _populated()])
    assert snapshot_from_json(snapshot_to_json(merged)) == merged


# -- quantile estimation -----------------------------------------------------


def test_estimate_quantiles_empty_and_malformed():
    from repro.obs.metrics import estimate_quantiles

    assert estimate_quantiles({}) == {0.5: 0.0, 0.95: 0.0, 0.99: 0.0}
    assert estimate_quantiles({"count": 3})[0.5] == 0.0
    # Counts/edges length mismatch, negative counts, junk types: zero
    # rows, never a raise -- callers are rendering tables.
    assert estimate_quantiles(
        {"count": 1, "edges": [1.0], "counts": [1]}
    )[0.5] == 0.0
    assert estimate_quantiles(
        {"count": 1, "edges": [1.0], "counts": [-1, 2]}
    )[0.5] == 0.0
    assert estimate_quantiles(
        {"count": "x", "edges": None, "counts": object()}
    )[0.99] == 0.0


def test_estimate_quantiles_single_observation_exact():
    from repro.obs.metrics import estimate_quantiles

    registry = MetricsRegistry()
    registry.observe("lat", 0.0042)
    hist = registry.snapshot()["histograms"]["lat"]
    quantiles = estimate_quantiles(hist)
    for q in (0.5, 0.95, 0.99):
        assert abs(quantiles[q] - 0.0042) < 1e-12


def test_estimate_quantiles_interpolates_and_clamps():
    from repro.obs.metrics import estimate_quantiles

    registry = MetricsRegistry()
    for value in (0.001, 0.002, 0.003, 0.004, 0.009, 0.080):
        registry.observe("lat", value)
    hist = registry.snapshot()["histograms"]["lat"]
    quantiles = estimate_quantiles(hist, quantiles=(0.0, 0.5, 1.0))
    # Monotone in q and bounded by the observed extremes.
    assert quantiles[0.0] <= quantiles[0.5] <= quantiles[1.0]
    assert quantiles[0.0] >= 0.001 - 1e-12
    assert quantiles[1.0] <= 0.080 + 1e-12


def test_estimate_quantiles_after_version_skew_merge():
    """A merge that folded a mismatched-edge child still yields a sane
    (clamped, non-crashing) estimate: the fold keeps the first edge set
    and only count/sum/min/max from the skewed child."""
    from repro.obs.metrics import estimate_quantiles

    r1 = MetricsRegistry()
    r1.observe("lat", 0.002, edges=(0.001, 0.01))
    r2 = MetricsRegistry()
    r2.observe("lat", 5.0, edges=(1.0, 2.0))
    merged = merge_snapshots([r1.snapshot(), r2.snapshot()])
    hist = merged["histograms"]["lat"]
    assert hist["count"] == 2
    quantiles = estimate_quantiles(hist)
    for q in (0.5, 0.95, 0.99):
        assert 0.002 - 1e-12 <= quantiles[q] <= 5.0 + 1e-12
