"""Tolerance logic of ``python -m repro.bench.compare`` (the bench-gate)."""

import json

import pytest

from repro.bench import compare as bc
from repro.errors import InvalidParameterError


def _payload(name, mean, total_bytes=1000, params=None):
    return {
        "name": name,
        "op": "op",
        "params": params if params is not None else {"n": 4},
        "measurements": {
            "work": {"mean_s": mean, "min_s": mean, "max_s": mean, "rounds": 3}
        },
        "bytes": {"total": total_bytes},
    }


def _statuses(report, field="time"):
    return {
        (d.bench, d.label): d.status for d in report.deltas if d.field == field
    }


def test_within_tolerance_passes():
    report = bc.compare_payloads(
        {"a": _payload("a", 1.0)}, {"a": _payload("a", 1.29)}, tolerance=0.30
    )
    assert _statuses(report)[("a", "work")] == "ok"
    assert report.ok()


def test_exactly_at_tolerance_passes_and_above_fails():
    base = {"a": _payload("a", 1.0)}
    at = bc.compare_payloads(base, {"a": _payload("a", 1.30)}, tolerance=0.30)
    assert _statuses(at)[("a", "work")] == "ok"
    over = bc.compare_payloads(
        base, {"a": _payload("a", 1.31)}, tolerance=0.30
    )
    assert _statuses(over)[("a", "work")] == "regression"
    assert not over.ok()
    assert over.regressions()[0].ratio == pytest.approx(1.31)


def test_improvement_reported_but_passes():
    report = bc.compare_payloads(
        {"a": _payload("a", 1.0)}, {"a": _payload("a", 0.5)}, tolerance=0.30
    )
    assert _statuses(report)[("a", "work")] == "improvement"
    assert report.ok()


def test_new_benchmark_passes():
    report = bc.compare_payloads({}, {"a": _payload("a", 1.0)})
    assert [d.status for d in report.deltas] == ["new"]
    assert report.ok()


def test_params_change_skips_gating():
    report = bc.compare_payloads(
        {"a": _payload("a", 1.0, params={"n": 4})},
        {"a": _payload("a", 99.0, params={"n": 512})},  # rescaled, not slower
    )
    assert [d.status for d in report.deltas] == ["params-changed"]
    assert report.ok()


def test_bytes_gate_exact_by_default():
    base = {"a": _payload("a", 1.0, total_bytes=1000)}
    drifted = {"a": _payload("a", 1.0, total_bytes=1001)}
    report = bc.compare_payloads(base, drifted)
    assert _statuses(report, "bytes")[("a", "total")] == "regression"
    # A tolerance admits the drift.
    relaxed = bc.compare_payloads(base, drifted, bytes_tolerance=0.01)
    assert relaxed.ok()
    # Shrinking bytes is an improvement, not a regression.
    shrunk = bc.compare_payloads(
        base, {"a": _payload("a", 1.0, total_bytes=900)}
    )
    assert _statuses(shrunk, "bytes")[("a", "total")] == "improvement"
    assert shrunk.ok()


def test_dropped_measurement_gates_only_in_strict_mode():
    base = {"a": _payload("a", 1.0)}
    current = {"a": _payload("a", 1.0)}
    del current["a"]["measurements"]["work"]
    current["a"]["measurements"]["other"] = {
        "mean_s": 1.0, "min_s": 1.0, "max_s": 1.0, "rounds": 1
    }
    report = bc.compare_payloads(base, current)
    assert _statuses(report)[("a", "work")] == "dropped"
    assert report.ok()
    assert not report.ok(strict=True)


def test_fields_selection_ignores_times():
    report = bc.compare_payloads(
        {"a": _payload("a", 1.0)},
        {"a": _payload("a", 100.0)},  # huge slowdown...
        fields=("bytes",),  # ...but only bytes are gated
    )
    assert report.ok()
    with pytest.raises(InvalidParameterError):
        bc.compare_payloads({}, {}, fields=("nope",))
    with pytest.raises(InvalidParameterError):
        bc.compare_payloads({}, {}, tolerance=-0.1)


def test_cli_end_to_end(tmp_path, capsys):
    baseline = tmp_path / "baseline"
    current = tmp_path / "current"
    baseline.mkdir()
    current.mkdir()
    (baseline / "BENCH_a.json").write_text(json.dumps(_payload("a", 1.0)))
    (current / "BENCH_a.json").write_text(json.dumps(_payload("a", 1.0)))
    assert bc.main(["--baseline", str(baseline), "--current", str(current)]) == 0
    # Inject a synthetic regression: the current run doubled its time.
    (current / "BENCH_a.json").write_text(json.dumps(_payload("a", 2.0)))
    assert bc.main(["--baseline", str(baseline), "--current", str(current)]) == 1
    out = capsys.readouterr()
    assert "REGRESSION" in out.err
    # Bad inputs exit 2, distinct from "regression found".
    assert bc.main(["--baseline", str(tmp_path / "missing"),
                    "--current", str(current)]) == 2


def test_load_bench_dir_rejects_garbage(tmp_path):
    (tmp_path / "BENCH_bad.json").write_text("{not json")
    with pytest.raises(InvalidParameterError):
        bc.load_bench_dir(str(tmp_path))
    (tmp_path / "BENCH_bad.json").write_text(json.dumps({"op": "nameless"}))
    with pytest.raises(InvalidParameterError):
        bc.load_bench_dir(str(tmp_path))


def test_per_benchmark_tolerance_override():
    """A noisy benchmark can carry a wider gate than the global default."""
    base = {"a": _payload("a", 1.0), "b": _payload("b", 1.0)}
    current = {"a": _payload("a", 1.6), "b": _payload("b", 1.6)}
    # Globally +60% is a regression...
    plain = bc.compare_payloads(base, current, tolerance=0.30)
    assert _statuses(plain) == {
        ("a", "work"): "regression", ("b", "work"): "regression",
    }
    # ...but an override widens exactly one benchmark, not the other.
    report = bc.compare_payloads(
        base, current, tolerance=0.30, tolerance_overrides={"a": 0.80}
    )
    assert _statuses(report) == {
        ("a", "work"): "ok", ("b", "work"): "regression",
    }


def test_label_override_beats_bench_override():
    base = {"a": _payload("a", 1.0)}
    current = {"a": _payload("a", 1.6)}
    report = bc.compare_payloads(
        base, current, tolerance=0.30,
        tolerance_overrides={"a": 0.10, "a/work": 0.80},
    )
    assert _statuses(report)[("a", "work")] == "ok"


def test_bytes_tolerance_override():
    base = {"a": _payload("a", 1.0, total_bytes=1000)}
    current = {"a": _payload("a", 1.0, total_bytes=1050)}
    exact = bc.compare_payloads(base, current)
    assert _statuses(exact, field="bytes")[("a", "total")] == "regression"
    report = bc.compare_payloads(
        base, current, bytes_tolerance_overrides={"a/total": 0.10}
    )
    assert _statuses(report, field="bytes")[("a", "total")] == "ok"
    assert report.ok()


def test_parse_overrides():
    assert bc.parse_overrides(["a=0.5", "b/label=0.2"]) == {
        "a": 0.5, "b/label": 0.2,
    }
    for bad in ("a", "=0.5", "a=x", "a=-0.1", "a=nan", "a=inf", "a=-inf"):
        with pytest.raises(InvalidParameterError):
            bc.parse_overrides([bad])
    for value in (-1.0, float("nan"), float("inf")):
        with pytest.raises(InvalidParameterError):
            bc.compare_payloads({}, {}, tolerance_overrides={"a": value})


def test_cli_tolerance_override(tmp_path):
    baseline = tmp_path / "baseline"
    current = tmp_path / "current"
    baseline.mkdir()
    current.mkdir()
    (baseline / "BENCH_a.json").write_text(json.dumps(_payload("a", 1.0)))
    (current / "BENCH_a.json").write_text(json.dumps(_payload("a", 1.6)))
    args = ["--baseline", str(baseline), "--current", str(current)]
    assert bc.main(args) == 1
    assert bc.main(args + ["--tolerance-override", "a=0.80"]) == 0
    assert bc.main(args + ["--tolerance-override", "nonsense"]) == 2


def test_trend_view(tmp_path, capsys):
    runs = []
    for index, mean in enumerate((1.0, 1.2, 0.9)):
        run_dir = tmp_path / ("run%d" % index)
        run_dir.mkdir()
        (run_dir / "BENCH_a.json").write_text(
            json.dumps(_payload("a", mean, total_bytes=1000 + index))
        )
        runs.append(run_dir)
    # A benchmark that appears mid-history renders with "-" gaps.
    (runs[-1] / "BENCH_late.json").write_text(json.dumps(_payload("late", 2.0)))
    text = bc.format_trend(
        [(p.name, bc.load_bench_dir(str(p))) for p in runs]
    )
    line = next(
        ln for ln in text.splitlines()
        if ln.startswith("a") and "| time" in ln
    )
    assert "1000.000" in line and "1200.000" in line and "900.000" in line
    late = next(ln for ln in text.splitlines() if ln.startswith("late"))
    assert late.count(" - ") >= 2
    # CLI: view only, exit 0, rejects mixing with the gate mode.
    argv = []
    for run_dir in runs:
        argv += ["--trend", str(run_dir)]
    assert bc.main(argv) == 0
    assert "bench trend" in capsys.readouterr().out
    with pytest.raises(SystemExit):
        bc.main(argv + ["--baseline", str(runs[0])])
    with pytest.raises(InvalidParameterError):
        bc.format_trend([])


def test_vanished_benchmark_file_is_dropped():
    base = {"a": _payload("a", 1.0), "b": _payload("b", 1.0)}
    current = {"a": _payload("a", 1.0)}  # BENCH_b.json never emitted
    report = bc.compare_payloads(base, current)
    assert {(d.bench, d.status) for d in report.deltas if d.bench == "b"} == {
        ("b", "dropped")
    }
    assert report.ok()
    assert not report.ok(strict=True)
