"""Edge cases of the BENCH_*.json emitter (the bench-gate's input side).

The emitter feeds CI's regression gate, so its failure modes must be
typed and its overwrite semantics explicit: a half-written or
silently-missing result file would make the gate pass vacuously.
"""

import json
import os

import pytest

from repro.bench.runner import Measurement, avg_time, emit_bench_json
from repro.errors import BenchError, InvalidParameterError


def _measurement(mean=0.5):
    return {"work": Measurement(mean=mean, minimum=mean, maximum=mean, rounds=1)}


def test_writes_into_repro_bench_dir(tmp_path, monkeypatch):
    out = tmp_path / "results"
    monkeypatch.setenv("REPRO_BENCH_DIR", str(out))
    path = emit_bench_json("alpha", op="op", params={"n": 1},
                           measurements=_measurement())
    assert path == str(out / "BENCH_alpha.json")
    payload = json.loads((out / "BENCH_alpha.json").read_text())
    assert payload["name"] == "alpha"
    assert payload["measurements"]["work"]["mean_s"] == 0.5


def test_defaults_to_cwd_when_env_unset(tmp_path, monkeypatch):
    monkeypatch.delenv("REPRO_BENCH_DIR", raising=False)
    monkeypatch.chdir(tmp_path)
    path = emit_bench_json("beta", op="op", params={},
                           measurements=_measurement())
    assert os.path.dirname(path) == "."
    assert (tmp_path / "BENCH_beta.json").exists()


def test_name_collision_overwrites_atomically(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_BENCH_DIR", str(tmp_path))
    emit_bench_json("gamma", op="op", params={"run": 1},
                    measurements=_measurement(0.1))
    emit_bench_json("gamma", op="op", params={"run": 2},
                    measurements=_measurement(0.2))
    files = [n for n in os.listdir(tmp_path) if n.startswith("BENCH_")]
    assert files == ["BENCH_gamma.json"]
    payload = json.loads((tmp_path / "BENCH_gamma.json").read_text())
    assert payload["params"] == {"run": 2}  # newest run wins
    assert not (tmp_path / "BENCH_gamma.json.tmp").exists()


def test_unsafe_name_rejected():
    with pytest.raises(InvalidParameterError):
        emit_bench_json("../escape", op="op", params={},
                        measurements=_measurement())


def test_non_serializable_params_raise_typed_error(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_BENCH_DIR", str(tmp_path))
    with pytest.raises(InvalidParameterError):
        emit_bench_json("delta", op="op", params={"obj": object()},
                        measurements=_measurement())
    with pytest.raises(InvalidParameterError):
        emit_bench_json("delta", op="op", params={},
                        measurements=_measurement(), extra={"bad": {1, 2}})
    # Nothing landed on disk from the refused emissions.
    assert not os.listdir(tmp_path)


def test_unwritable_output_dir_raises_bench_error(tmp_path, monkeypatch):
    # Point the output "directory" at an existing *file*: os.makedirs
    # cannot succeed for any caller (even root), so the OSError path is
    # exercised deterministically.
    blocker = tmp_path / "not-a-dir"
    blocker.write_text("occupied")
    monkeypatch.setenv("REPRO_BENCH_DIR", str(blocker))
    with pytest.raises(BenchError):
        emit_bench_json("epsilon", op="op", params={},
                        measurements=_measurement())


def test_avg_time_floors_rounds():
    measurement = avg_time(lambda: None, rounds=0)
    assert measurement.rounds == 1
    assert measurement.minimum <= measurement.mean <= measurement.maximum
