"""Smoke tests for the figure drivers (tiny parameters).

The real sweeps live in benchmarks/; here we only assert the drivers run,
return the right shape, and show the paper's qualitative trends.
"""

import random


from repro.bench.figures import fig2, fig3, fig4, fig5, fig6, table2
from repro.bench.runner import Measurement, avg_time, format_table
from repro.gkm.acv import FAST_FIELD


class TestRunner:
    def test_avg_time(self):
        m = avg_time(lambda: sum(range(100)), rounds=3)
        assert isinstance(m, Measurement)
        assert m.minimum <= m.mean <= m.maximum
        assert m.rounds == 3
        assert m.mean_ms == m.mean * 1000

    def test_format_table(self):
        text = format_table("T", ["a", "bb"], [[1, 2.5], ["x", "y"]])
        assert "T" in text and "bb" in text and "2.500" in text

    def test_format_table_empty(self):
        text = format_table("T", ["a"], [])
        assert "a" in text


class TestDrivers:
    def test_table2(self):
        result = table2(group_name="nist-p192", rounds=1, rng=random.Random(0))
        assert result["create_commitments_ms"] == 0.0
        assert result["compose_envelope_ms"] > 0
        assert result["open_envelope_ms"] > 0

    def test_fig2_shape_and_trend(self):
        rows = fig2(ells=(4, 12), rounds=1, rng=random.Random(1))
        assert [r["ell"] for r in rows] == [4, 12]
        # Per-step cost grows with l (the paper's Figure-2 trend).
        assert rows[1]["compose_envelope_ms"] > rows[0]["compose_envelope_ms"]

    def test_fig3_shape(self):
        rows = fig3(
            max_users=(10, 20), fractions=(0.5, 1.0), field=FAST_FIELD,
            rounds=1, rng=random.Random(2),
        )
        assert [r["max_users"] for r in rows] == [10, 20]
        assert "50%" in rows[0] and "100%" in rows[0]

    def test_fig4_values_positive(self):
        rows = fig4(
            max_users=(10,), fractions=(1.0,), field=FAST_FIELD,
            rounds=1, rng=random.Random(3),
        )
        assert rows[0]["100%"] > 0

    def test_fig5_size_grows_with_fraction(self):
        rows = fig5(
            max_users=(60,), fractions=(0.25, 1.0), rng=random.Random(4)
        )
        assert rows[0]["100%"] > rows[0]["25%"]

    def test_fig6_shape(self):
        rows = fig6(
            conditions=(1, 3), max_users=20, num_policies=5,
            field=FAST_FIELD, rounds=1, rng=random.Random(5),
        )
        assert [r["conditions"] for r in rows] == [1, 3]
        assert all(r["generation_ms"] > 0 for r in rows)

    def test_verbose_paths_print(self, capsys):
        table2(group_name="nist-p192", rounds=1, verbose=True, rng=random.Random(6))
        fig5(max_users=(20,), fractions=(1.0,), verbose=True, rng=random.Random(7))
        out = capsys.readouterr().out
        assert "Table II" in out
        assert "Figure 5" in out
