"""WAL robustness: torn tails tolerated, everything else loudly typed."""

import os
import struct
import zlib

import pytest

from repro.errors import LogCorruptionError, ReproError, SerializationError
from repro.store.wal import (
    CRC_SIZE,
    WalRecord,
    WriteAheadLog,
    decode_record,
    encode_record,
    replay,
    scan_records,
)
from repro.wire.codec import FRAME_HEADER_SIZE


RECORDS = [(16, b"alpha"), (17, b""), (40, b"x" * 1000), (255, b"genesis")]


def _log_bytes(records=RECORDS):
    return b"".join(encode_record(t, p) for t, p in records)


class TestRoundTrip:
    def test_scan_inverts_encode(self):
        records, clean_end = scan_records(_log_bytes())
        assert [(r.type_id, r.payload) for r in records] == RECORDS
        assert clean_end == len(_log_bytes())

    def test_decode_single_record(self):
        record = decode_record(encode_record(7, b"payload"))
        assert record == WalRecord(type_id=7, payload=b"payload")

    def test_decode_rejects_trailing_bytes(self):
        with pytest.raises(LogCorruptionError):
            decode_record(encode_record(7, b"payload") + b"\x00")

    def test_replay_missing_file_is_empty(self, tmp_path):
        assert list(replay(str(tmp_path / "absent.log"))) == []


class TestTornTail:
    """Every strict prefix of a record is a tolerable torn tail."""

    @pytest.mark.parametrize("cut", [1, CRC_SIZE, FRAME_HEADER_SIZE - 1,
                                     FRAME_HEADER_SIZE,
                                     len(encode_record(*RECORDS[-1])) - 1])
    def test_truncated_final_record_is_dropped(self, cut):
        data = _log_bytes()
        intact = _log_bytes(RECORDS[:-1])
        records, clean_end = scan_records(data[: len(data) - cut])
        assert clean_end == len(intact)
        assert [(r.type_id, r.payload) for r in records] == RECORDS[:-1]

    def test_open_truncates_torn_tail_and_appends_cleanly(self, tmp_path):
        path = str(tmp_path / "wal.log")
        with WriteAheadLog(path, sync=False) as wal:
            wal.append(1, b"one")
            wal.append(2, b"two")
        with open(path, "ab") as handle:
            handle.write(encode_record(3, b"three")[:-3])  # torn write
        with WriteAheadLog(path, sync=False) as wal:
            assert [(r.type_id, r.payload) for r in wal.recovered] == [
                (1, b"one"), (2, b"two")
            ]
            wal.append(4, b"four")
        assert [(r.type_id, r.payload) for r in replay(path)] == [
            (1, b"one"), (2, b"two"), (4, b"four")
        ]

    def test_every_prefix_recovers_or_raises_typed(self, tmp_path):
        """No prefix length may escape the ReproError hierarchy."""
        data = _log_bytes()
        for cut in range(len(data)):
            try:
                scan_records(data[:cut])
            except ReproError:
                pass  # typed is fine; struct.error/IndexError are not


class TestCorruption:
    """Present-but-wrong bytes are corruption, never silently skipped."""

    def test_bit_flipped_crc_raises(self):
        data = bytearray(_log_bytes())
        data[-1] ^= 0x01  # last CRC byte of the final record
        with pytest.raises(LogCorruptionError, match="CRC mismatch"):
            scan_records(bytes(data))

    def test_bit_flipped_payload_raises(self):
        record = bytearray(encode_record(5, b"sensitive"))
        record[FRAME_HEADER_SIZE] ^= 0x80
        with pytest.raises(LogCorruptionError, match="CRC mismatch"):
            scan_records(bytes(record))

    def test_mid_log_corruption_does_not_resurrect_later_records(self):
        first = bytearray(encode_record(1, b"a"))
        first[FRAME_HEADER_SIZE] ^= 0xFF
        with pytest.raises(LogCorruptionError):
            scan_records(bytes(first) + encode_record(2, b"b"))

    def test_oversized_declared_length_raises_before_allocation(self):
        # A header declaring ~4 GiB: rejected from the 12 real bytes alone.
        header = struct.pack(">2sBBI", b"RW", 1, 9, 0xFFFFFFF0)
        bogus = header + struct.pack(">I", zlib.crc32(header))
        with pytest.raises(LogCorruptionError, match="cap"):
            scan_records(bogus)

    def test_bad_magic_raises(self):
        data = bytearray(encode_record(1, b"a"))
        data[0] = 0x58
        with pytest.raises(LogCorruptionError, match="invalid record header"):
            scan_records(bytes(data))

    def test_foreign_wire_version_raises(self):
        data = bytearray(encode_record(1, b"a"))
        data[2] = 99
        with pytest.raises(LogCorruptionError, match="invalid record header"):
            scan_records(bytes(data))

    def test_small_record_cap_applies_to_disk_reads(self):
        data = encode_record(1, b"y" * 128)
        with pytest.raises(LogCorruptionError, match="cap"):
            scan_records(data, max_payload=64)

    def test_append_rejects_oversized_payload(self, tmp_path):
        wal = WriteAheadLog(str(tmp_path / "wal.log"), max_payload=16,
                            sync=False)
        with pytest.raises(SerializationError):
            wal.append(1, b"z" * 17)
        wal.close()
        with pytest.raises(LogCorruptionError):
            wal.append(1, b"late")

    def test_corrupt_log_refuses_to_open_for_append(self, tmp_path):
        path = str(tmp_path / "wal.log")
        data = bytearray(encode_record(1, b"a") + encode_record(2, b"b"))
        data[FRAME_HEADER_SIZE] ^= 0xFF
        with open(path, "wb") as handle:
            handle.write(data)
        with pytest.raises(LogCorruptionError):
            WriteAheadLog(path, sync=False)
        assert os.path.getsize(path) == len(data)  # refused, not "repaired"
