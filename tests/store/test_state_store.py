"""StateStore: recovery sequence, compaction crash windows, version skew."""

import os

import pytest

from repro.errors import LogCorruptionError, StoreVersionError
from repro.store.state import (
    SNAPSHOT_FILE,
    SNAPSHOT_WRAPPER_TYPE,
    STORE_VERSION,
    WAL_GENESIS_TYPE,
    StateStore,
)
from repro.store.wal import encode_record
from repro.wire.codec import pack_bytes, pack_u8, pack_u16, pack_u32


def _records(store):
    return [(r.type_id, r.payload) for r in store.tail]


class TestLifecycle:
    def test_fresh_directory(self, tmp_path):
        with StateStore(str(tmp_path / "d")) as store:
            assert not store.recovered
            assert store.snapshot is None and store.tail == []
            assert store.generation == 0

    def test_journal_and_reopen(self, tmp_path):
        path = str(tmp_path / "d")
        with StateStore(path, sync=False) as store:
            store.append(17, b"one")
            store.append(18, b"two")
        with StateStore(path, sync=False) as store:
            assert store.recovered
            assert store.snapshot is None
            assert _records(store) == [(17, b"one"), (18, b"two")]
            assert store.pending_records == 2

    def test_snapshot_rotates_wal(self, tmp_path):
        path = str(tmp_path / "d")
        with StateStore(path, sync=False) as store:
            store.append(17, b"folded")
            store.save_snapshot(2, b"state-v1")
            assert store.pending_records == 0
            store.append(17, b"after")
        with StateStore(path, sync=False) as store:
            assert store.generation == 1
            assert (store.snapshot.type_id, store.snapshot.payload) == (2, b"state-v1")
            assert _records(store) == [(17, b"after")]
        # exactly one WAL file remains, named for the live generation
        wals = sorted(p for p in os.listdir(path) if p.startswith("wal-"))
        assert wals == ["wal-00000001.log"]

    def test_snapshot_is_atomic_no_tmp_left(self, tmp_path):
        path = str(tmp_path / "d")
        with StateStore(path, sync=False) as store:
            store.save_snapshot(2, b"s")
        assert SNAPSHOT_FILE in os.listdir(path)
        assert not any(p.endswith(".tmp") for p in os.listdir(path))


class TestCrashWindows:
    """Each interruption point of save_snapshot leaves a recoverable pair."""

    def _populated(self, path):
        store = StateStore(path, sync=False)
        store.append(17, b"cell")
        store.close()

    def test_crash_after_next_wal_created(self, tmp_path):
        path = str(tmp_path / "d")
        self._populated(path)
        # simulate: generation-1 WAL exists, snapshot never renamed
        with open(os.path.join(path, "wal-00000001.log"), "wb") as handle:
            handle.write(
                encode_record(
                    WAL_GENESIS_TYPE, pack_u16(STORE_VERSION) + pack_u32(1)
                )
            )
        with StateStore(path, sync=False) as store:
            assert store.generation == 0
            assert _records(store) == [(17, b"cell")]
        assert not os.path.exists(os.path.join(path, "wal-00000001.log"))

    def test_crash_after_snapshot_rename(self, tmp_path):
        path = str(tmp_path / "d")
        with StateStore(path, sync=False) as store:
            store.append(17, b"cell")
            store.save_snapshot(2, b"folded")
            # simulate dying before stray-WAL cleanup: resurrect the old WAL
            with open(os.path.join(path, "wal-00000000.log"), "wb") as handle:
                handle.write(
                    encode_record(
                        WAL_GENESIS_TYPE, pack_u16(STORE_VERSION) + pack_u32(0)
                    )
                )
                handle.write(encode_record(17, b"cell"))
        with StateStore(path, sync=False) as store:
            assert store.generation == 1
            assert store.snapshot.payload == b"folded"
            assert store.tail == []  # the stale WAL was not replayed
        assert not os.path.exists(os.path.join(path, "wal-00000000.log"))


def _write_snapshot(path, version=STORE_VERSION, generation=0, inner=b"x"):
    wrapper = pack_u16(version) + pack_u32(generation) + pack_u8(2) + pack_bytes(inner)
    with open(os.path.join(path, SNAPSHOT_FILE), "wb") as handle:
        handle.write(encode_record(SNAPSHOT_WRAPPER_TYPE, wrapper))


class TestSkewAndCorruption:
    def test_foreign_snapshot_version_refused(self, tmp_path):
        path = str(tmp_path / "d")
        os.makedirs(path)
        _write_snapshot(path, version=STORE_VERSION + 1)
        with pytest.raises(StoreVersionError, match="store version"):
            StateStore(path, sync=False)

    def test_foreign_wal_version_refused(self, tmp_path):
        path = str(tmp_path / "d")
        os.makedirs(path)
        with open(os.path.join(path, "wal-00000000.log"), "wb") as handle:
            handle.write(
                encode_record(
                    WAL_GENESIS_TYPE, pack_u16(STORE_VERSION + 9) + pack_u32(0)
                )
            )
        with pytest.raises(StoreVersionError, match="store version"):
            StateStore(path, sync=False)

    def test_generation_skew_refused(self, tmp_path):
        """A WAL from another snapshot generation must never be replayed:
        it might double-apply folded transitions or resurrect revoked ones."""
        path = str(tmp_path / "d")
        os.makedirs(path)
        _write_snapshot(path, generation=2)
        with open(os.path.join(path, "wal-00000002.log"), "wb") as handle:
            handle.write(
                encode_record(
                    WAL_GENESIS_TYPE, pack_u16(STORE_VERSION) + pack_u32(1)
                )
            )
        with pytest.raises(StoreVersionError, match="generation"):
            StateStore(path, sync=False)

    def test_snapshot_bit_flip_refused(self, tmp_path):
        path = str(tmp_path / "d")
        with StateStore(path, sync=False) as store:
            store.save_snapshot(2, b"precious")
        snap = os.path.join(path, SNAPSHOT_FILE)
        data = bytearray(open(snap, "rb").read())
        data[-6] ^= 0x40
        with open(snap, "wb") as handle:
            handle.write(bytes(data))
        with pytest.raises(LogCorruptionError):
            StateStore(path, sync=False)

    def test_wal_missing_genesis_refused(self, tmp_path):
        path = str(tmp_path / "d")
        os.makedirs(path)
        with open(os.path.join(path, "wal-00000000.log"), "wb") as handle:
            handle.write(encode_record(17, b"no genesis stamp"))
        with pytest.raises(LogCorruptionError, match="genesis"):
            StateStore(path, sync=False)

    def test_snapshots_allowed_far_beyond_the_frame_cap(self, tmp_path):
        """A snapshot aggregates whole-entity state: the 16 MiB per-frame
        wire cap must not apply to it (a big table would wedge compaction
        forever), while WAL records stay frame-capped."""
        path = str(tmp_path / "d")
        big = b"\x5a" * (17 * 1024 * 1024)  # > DEFAULT_MAX_FRAME_PAYLOAD
        with StateStore(path, sync=False) as store:
            with pytest.raises(Exception):
                store.append(17, big)  # journal records keep the wire cap
            store.save_snapshot(2, big)
        with StateStore(path, sync=False) as store:
            assert store.snapshot.payload == big

    def test_failed_oversized_snapshot_leaves_store_usable(self, tmp_path):
        path = str(tmp_path / "d")
        with StateStore(path, sync=False,
                        max_snapshot_payload=1024) as store:
            store.append(17, b"cell")
            with pytest.raises(Exception):
                store.save_snapshot(2, b"\x00" * 2048)
            # no half-made generation: no stray WAL, journaling continues
            wals = [p for p in os.listdir(path) if p.startswith("wal-")]
            assert wals == ["wal-00000000.log"]
            store.append(17, b"more")
        with StateStore(path, sync=False) as store:
            assert _records(store) == [(17, b"cell"), (17, b"more")]

    def test_retry_after_failed_snapshot_does_not_double_genesis(self, tmp_path):
        """An ENOSPC-style failure leaves wal-(G+1) behind; the retried
        compaction must discard it, not append a second genesis stamp
        (which would poison the next recovery as an unknown record)."""
        path = str(tmp_path / "d")
        with StateStore(path, sync=False,
                        max_snapshot_payload=1024) as store:
            store.append(17, b"cell")
            with pytest.raises(Exception):
                store.save_snapshot(2, b"\x00" * 2048)  # attempt fails
            # simulate the worst leftover: a stray next-gen WAL on disk
            with open(os.path.join(path, "wal-00000001.log"), "wb") as handle:
                handle.write(
                    encode_record(
                        WAL_GENESIS_TYPE, pack_u16(STORE_VERSION) + pack_u32(1)
                    )
                )
            store.save_snapshot(2, b"small")  # retry succeeds
            store.append(17, b"after")
        with StateStore(path, sync=False) as store:
            assert store.snapshot.payload == b"small"
            assert _records(store) == [(17, b"after")]

    def test_snapshot_without_wal_refused(self, tmp_path):
        """A snapshot whose WAL vanished (partial backup restore) must not
        silently drop the journaled transitions -- they may be revocations."""
        path = str(tmp_path / "d")
        with StateStore(path, sync=False) as store:
            store.save_snapshot(2, b"state")
            store.append(17, b"revocation")
        os.remove(os.path.join(path, "wal-00000001.log"))
        with pytest.raises(LogCorruptionError, match="no write-ahead log"):
            StateStore(path, sync=False)
        # an empty (zero-byte) WAL is the same loss
        open(os.path.join(path, "wal-00000001.log"), "wb").close()
        with pytest.raises(LogCorruptionError, match="no write-ahead log"):
            StateStore(path, sync=False)

    def test_closed_store_refuses_writes(self, tmp_path):
        store = StateStore(str(tmp_path / "d"), sync=False)
        store.close()
        with pytest.raises(LogCorruptionError):
            store.append(17, b"x")
        with pytest.raises(LogCorruptionError):
            store.save_snapshot(2, b"x")
