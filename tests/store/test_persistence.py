"""Entity-level recovery: attach, crash, rebuild, resume -- zero unicast.

The in-memory twin of ``tests/net/test_crash_recovery.py``: every entity
runs against :class:`InMemoryTransport`, "crashing" is dropping the live
object, and recovery is rebuilding it from the scenario + re-attaching
the same data directory.
"""

import random

import pytest

from repro.documents.model import Document
from repro.errors import LogCorruptionError, SnapshotMismatchError
from repro.policy.acp import parse_policy
from repro.store import (
    IdMgrPersistence,
    PublisherPersistence,
    SubscriberPersistence,
    TokenHeldRecord,
)
from repro.store.state import StateStore
from repro.system.service import (
    DisseminationService,
    IdentityManagerEndpoint,
    SubscriberClient,
    run_until_idle,
)
from repro.system.transport import InMemoryTransport
from tests.store.conftest import build_world

DOC = Document.of(
    "report", {"clinical": b"clinical body", "billing": b"billing body"}
)

#: Transport kinds that may NOT appear while a recovered system resumes.
UNICAST_KINDS = {
    "token-request",
    "token-grant",
    "token+condition-request",
    "registration-ack",
    "ocbe-bit-commitments",
    "ocbe-envelope",
}


def _register_everyone(idp, idmgr, pub, sub, transport, **client_kw):
    service = DisseminationService(pub, transport)
    idmgr_ep = IdentityManagerEndpoint(idmgr, transport)
    client = SubscriberClient(sub, transport, publisher_name=pub.name,
                              **client_kw)
    for attr in sub.attribute_tags() or ("role", "level"):
        if attr not in sub.attribute_tags():
            client.request_token(attr, assertion=idp.assert_attribute("carol", attr))
    client.register_all_attributes()
    run_until_idle([service, idmgr_ep, client])
    return service, idmgr_ep, client


class TestFullLifecycleRecovery:
    def test_publisher_and_subscriber_resume_with_zero_unicast(self, tmp_path):
        pub_dir = str(tmp_path / "pub")
        sub_dir = str(tmp_path / "sub")

        # -- run 1: normal registration, everything journaled ------------
        idp, idmgr, pub, sub = build_world()
        pub_store = PublisherPersistence.attach(pub_dir, pub, sync=False)
        sub_store = SubscriberPersistence.attach(sub_dir, sub, sync=False)
        transport = InMemoryTransport()
        service, _, client = _register_everyone(
            idp, idmgr, pub, sub, transport
        )
        assert pub.table.cell_count() == 2
        package = service.publish(DOC)
        run_until_idle([client])
        assert sorted(client.documents[DOC.name]) == ["billing", "clinical"]
        epoch_before = pub.epoch
        pub_store.close()  # SIGKILL stand-in: nothing flushed beyond the WAL
        sub_store.close()

        # -- run 2: fresh objects, recovered state ------------------------
        _, _, pub2, sub2 = build_world()
        pub_store2 = PublisherPersistence.attach(pub_dir, pub2, sync=False)
        sub_store2 = SubscriberPersistence.attach(sub_dir, sub2, sync=False)
        assert pub_store2.recovered and sub_store2.recovered
        assert pub2.table.rows() == pub.table.rows()
        assert pub2.epoch == epoch_before
        assert sub2.css_store == sub.css_store
        assert [w.token for w in sub2.wallet_entries()] == [
            w.token for w in sub.wallet_entries()
        ]

        transport2 = InMemoryTransport()
        service2 = DisseminationService(pub2, transport2)
        client2 = SubscriberClient(
            sub2, transport2, publisher_name=pub2.name, reuse_css=True
        )
        client2.register_all_attributes()
        run_until_idle([service2, client2])
        # both conditions report success without one OCBE frame
        assert client2.results == {
            "role": {"role = doc": True},
            "level": {"level >= 50": True},
        }
        package2 = service2.publish(DOC)  # the rekey-on-recovery broadcast
        run_until_idle([client2])
        assert sorted(client2.documents[DOC.name]) == ["billing", "clinical"]
        assert pub2.epoch == epoch_before + 1

        seen_kinds = set(transport2.kinds_count())
        assert not seen_kinds & UNICAST_KINDS, seen_kinds
        pub_store2.close()
        sub_store2.close()

    def test_revocation_survives_recovery(self, tmp_path):
        pub_dir = str(tmp_path / "pub")
        idp, idmgr, pub, sub = build_world()
        store = PublisherPersistence.attach(pub_dir, pub, sync=False)
        transport = InMemoryTransport()
        _register_everyone(idp, idmgr, pub, sub, transport)
        assert pub.revoke_credential(sub.nym, "level >= 50")
        assert pub.revoke_subscription(sub.nym)
        store.close()

        _, _, pub2, _ = build_world()
        store2 = PublisherPersistence.attach(pub_dir, pub2, sync=False)
        assert pub2.table.cell_count() == 0  # the revocations replayed too
        store2.close()

    def test_gkm_strategy_survives_recovery(self, tmp_path):
        """A bucketed publisher's strategy + bucket layout are durable:
        the recovered process rekeys under the configuration its
        subscribers were dispatched with, even when the restarted
        binary was (mis)configured dense."""
        from repro.gkm.buckets import BucketedHeader

        pub_dir = str(tmp_path / "pub")
        idp, idmgr, pub, sub = build_world()
        pub.set_gkm_strategy("bucketed", 4)
        store = PublisherPersistence.attach(pub_dir, pub, sync=False)
        transport = InMemoryTransport()
        _register_everyone(idp, idmgr, pub, sub, transport)
        store.snapshot_now()
        store.close()

        _, _, pub2, _ = build_world()  # default: dense
        assert pub2.gkm == "dense"
        store2 = PublisherPersistence.attach(pub_dir, pub2, sync=False)
        assert store2.recovered
        assert pub2.gkm == "bucketed"
        assert pub2.gkm_bucket_size == 4
        package = pub2.publish(DOC)
        assert any(
            isinstance(header.acv, BucketedHeader)
            for header in package.headers
            if header.acv is not None
        )
        store2.close()

    def test_runtime_strategy_switch_survives_crash_before_snapshot(
        self, tmp_path
    ):
        """set_gkm_strategy on an attached publisher is journaled: a crash
        before the next compaction snapshot must not roll the recovered
        publisher back to the strategy of the stale snapshot."""
        pub_dir = str(tmp_path / "pub")
        idp, idmgr, pub, sub = build_world()
        store = PublisherPersistence.attach(pub_dir, pub, sync=False)
        assert pub.gkm == "dense"  # snapshotted dense at attach
        pub.set_gkm_strategy("bucketed", 4)  # runtime switch, WAL only
        store.close()

        _, _, pub2, _ = build_world()
        store2 = PublisherPersistence.attach(pub_dir, pub2, sync=False)
        assert pub2.gkm == "bucketed"
        assert pub2.gkm_bucket_size == 4
        store2.close()

    def test_idmgr_registry_and_key_survive(self, tmp_path):
        idm_dir = str(tmp_path / "idmgr")
        idp, idmgr, pub, sub = build_world()
        store = IdMgrPersistence.attach(idm_dir, idmgr, sync=False)
        idmgr.issue_decoy_token("pn-0001", "ghost")
        store.close()
        issued_before = list(idmgr.issued)

        # rebuild with a different rng: only the data dir carries the key
        idmgr2_world = build_world(seed=0xFFFF)
        idmgr2 = idmgr2_world[1]
        store2 = IdMgrPersistence.attach(idm_dir, idmgr2, sync=False)
        assert idmgr2.signing_key == idmgr.signing_key
        assert idmgr2.public_key == idmgr.public_key
        assert idmgr2.issued == issued_before
        assert idmgr2.nym_counter == idmgr.nym_counter
        # recovered key verifies tokens signed before the "crash"
        assert idmgr2.verify_token(sub.token_for("role"))
        store2.close()


class TestCompaction:
    def test_wal_folds_into_snapshot_at_threshold(self, tmp_path):
        idp, idmgr, pub, sub = build_world()
        store = PublisherPersistence.attach(
            str(tmp_path / "pub"), pub, sync=False, compact_every=3
        )
        generation = store.store.generation
        for i in range(7):
            pub.table.set("pn-%04d" % i, "role = doc", bytes(16))
            store.css_installed("pn-%04d" % i, "role = doc", bytes(16))
        assert store.store.generation > generation
        assert store.store.pending_records < 3
        store.close()

        _, _, pub2, _ = build_world()
        store2 = PublisherPersistence.attach(str(tmp_path / "pub"), pub2)
        assert pub2.table.cell_count() == 7
        store2.close()


class TestMismatch:
    def test_wrong_publisher_name_refused(self, tmp_path):
        idp, idmgr, pub, sub = build_world()
        PublisherPersistence.attach(str(tmp_path / "d"), pub, sync=False).close()
        imposter = build_world()[2]
        imposter.name = "other-pub"
        with pytest.raises(SnapshotMismatchError, match="publisher"):
            PublisherPersistence.attach(str(tmp_path / "d"), imposter)

    def test_drifted_policy_set_refused(self, tmp_path):
        idp, idmgr, pub, sub = build_world()
        PublisherPersistence.attach(str(tmp_path / "d"), pub, sync=False).close()
        drifted = build_world()[2]
        drifted.add_policy(parse_policy("role = admin", ["billing"], "report"))
        with pytest.raises(SnapshotMismatchError, match="policy"):
            PublisherPersistence.attach(str(tmp_path / "d"), drifted)

    def test_wrong_subscriber_nym_refused(self, tmp_path):
        idp, idmgr, pub, sub = build_world()
        SubscriberPersistence.attach(str(tmp_path / "d"), sub, sync=False).close()
        from repro.system.subscriber import Subscriber

        other = Subscriber("pn-9999", pub.params, rng=random.Random(5))
        with pytest.raises(SnapshotMismatchError, match="nym"):
            SubscriberPersistence.attach(str(tmp_path / "d"), other)

    def test_wrong_entity_family_refused(self, tmp_path):
        idp, idmgr, pub, sub = build_world()
        SubscriberPersistence.attach(str(tmp_path / "d"), sub, sync=False).close()
        with pytest.raises(SnapshotMismatchError, match="expected"):
            PublisherPersistence.attach(str(tmp_path / "d"), pub)

    def test_foreign_record_type_in_wal_refused(self, tmp_path):
        idp, idmgr, pub, sub = build_world()
        path = str(tmp_path / "d")
        wallet = sub.wallet_entries()[0]
        with StateStore(path, sync=False) as store:
            record = TokenHeldRecord(
                token_raw=wallet.token.to_bytes(), x=wallet.x, r=wallet.r
            )
            store.append(record.TYPE_ID, record.to_bytes())
        with pytest.raises(LogCorruptionError, match="publisher WAL"):
            PublisherPersistence.attach(path, pub)
