"""Snapshot/record codecs: exact round trips, typed failures on hostility.

Every store record type must satisfy ``byte_size() == len(to_bytes())``
and survive ``from_payload(to_bytes())`` unchanged; every mangling of the
payload must raise :class:`SerializationError` (or a
:class:`ReproError` subclass), never ``struct.error``/``IndexError``.
"""

import pytest

from repro.errors import ReproError, SerializationError
from repro.store.snapshots import (
    STORE_RECORD_TYPES,
    CredentialRevokedRecord,
    CssExtractedRecord,
    CssInstalledRecord,
    EpochAdvancedRecord,
    GkmStrategyChangedRecord,
    IdMgrSnapshot,
    PublisherSnapshot,
    SubscriberSnapshot,
    SubscriptionRevokedRecord,
    TokenHeldRecord,
    TokenIssuedRecord,
    decode_state,
)
from tests.store.conftest import build_world


def _samples():
    """One representative instance of every store record type."""
    idp, idmgr, pub, sub = build_world()
    pub.table.set(sub.nym, "role = doc", b"\x01" * 16)
    pub.table.set(sub.nym, "level >= 50", b"\x02" * 16)
    pub.table.set("pn-0099", "role = doc", b"\x03" * 16)
    wallet = sub.wallet_entries()
    return [
        IdMgrSnapshot(
            group_name=idmgr.group.name,
            signing_key=idmgr.signing_key,
            nym_counter=idmgr.nym_counter,
            issued=tuple(idmgr.issued),
        ),
        PublisherSnapshot(
            name=pub.name,
            epoch=3,
            policies=tuple(pub.policies),
            table=pub.table.rows(),
        ),
        PublisherSnapshot(
            name=pub.name,
            epoch=7,
            policies=tuple(pub.policies),
            table=pub.table.rows(),
            gkm="bucketed",
            gkm_bucket_size=8,
        ),
        SubscriberSnapshot(
            nym=sub.nym,
            wallet=tuple((w.token.to_bytes(), w.x, w.r) for w in wallet),
            css=(("role = doc", b"\x01" * 16),),
        ),
        TokenIssuedRecord(nym=sub.nym, tag="role", decoy=False),
        TokenIssuedRecord(nym=sub.nym, tag="ghost", decoy=True),
        CssInstalledRecord(nym=sub.nym, condition_key="role = doc", css=b"s" * 16),
        CredentialRevokedRecord(nym=sub.nym, condition_key="role = doc"),
        SubscriptionRevokedRecord(nym=sub.nym),
        EpochAdvancedRecord(epoch=41),
        TokenHeldRecord(token_raw=wallet[0].token.to_bytes(),
                        x=wallet[0].x, r=wallet[0].r),
        CssExtractedRecord(condition_key="level >= 50", css=b"t" * 16),
        GkmStrategyChangedRecord(gkm="bucketed", gkm_bucket_size=4),
        GkmStrategyChangedRecord(gkm="dense", gkm_bucket_size=0),
    ]


SAMPLES = _samples()


@pytest.mark.parametrize(
    "record", SAMPLES, ids=[type(s).__name__ for s in SAMPLES]
)
class TestRoundTrip:
    def test_exact_round_trip(self, record, group):
        raw = record.to_bytes()
        assert record.byte_size() == len(raw)
        back = type(record).from_payload(raw, group)
        assert back == record

    def test_registry_dispatch(self, record, group):
        assert STORE_RECORD_TYPES[record.TYPE_ID] is type(record)
        back = decode_state(record.TYPE_ID, record.to_bytes(), group)
        assert back == record

    def test_truncated_tail_raises_typed(self, record, group):
        raw = record.to_bytes()
        for cut in range(len(raw)):
            with pytest.raises(ReproError):
                type(record).from_payload(raw[:cut], group)

    def test_trailing_garbage_raises(self, record, group):
        with pytest.raises(SerializationError):
            type(record).from_payload(record.to_bytes() + b"\x00", group)

    def test_every_single_byte_flip_is_typed(self, record, group):
        """Bit flips either still parse (to a different value) or raise a
        library error -- never an uncaught low-level exception."""
        raw = record.to_bytes()
        stride = max(1, len(raw) // 48)  # bounded work on big snapshots
        for i in range(0, len(raw), stride):
            mangled = raw[:i] + bytes([raw[i] ^ 0xFF]) + raw[i + 1:]
            try:
                type(record).from_payload(mangled, group)
            except ReproError:
                pass


def test_unknown_type_id_raises(group):
    with pytest.raises(SerializationError, match="unknown store record"):
        decode_state(200, b"", group)


def test_unknown_gkm_strategy_in_snapshot_raises(group):
    snapshot = next(
        s for s in SAMPLES
        if isinstance(s, PublisherSnapshot) and s.gkm == "dense"
    )
    raw = snapshot.to_bytes()
    # "dense" -> "densa": still a valid string, not a valid strategy.
    mangled = raw.replace(b"dense", b"densa")
    with pytest.raises(SerializationError, match="GKM strategy"):
        PublisherSnapshot.from_payload(mangled, group)


def test_type_ids_are_unique_and_stable():
    ids = [cls.TYPE_ID for cls in STORE_RECORD_TYPES.values()]
    assert len(ids) == len(set(ids))
    # Snapshots sit below 16, transition records at 16+: renumbering would
    # silently orphan existing data dirs, so pin the assignment here.
    assert IdMgrSnapshot.TYPE_ID == 1
    assert PublisherSnapshot.TYPE_ID == 2
    assert SubscriberSnapshot.TYPE_ID == 3
    assert min(
        cls.TYPE_ID
        for cls in STORE_RECORD_TYPES.values()
        if "Snapshot" not in cls.__name__
    ) == 16


def test_subscriber_snapshot_decodes_tokens(group):
    snapshot = next(s for s in SAMPLES if isinstance(s, SubscriberSnapshot))
    tokens = snapshot.tokens(group)
    assert [t.tag for t, _, _ in tokens] == ["level", "role"]
    assert all(t.nym == snapshot.nym for t, _, _ in tokens)
