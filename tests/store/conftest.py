"""Fixtures for the durable-state tests: a small fully-wired world."""

from __future__ import annotations

import random

import pytest

from repro.gkm.acv import FAST_FIELD
from repro.groups import get_group
from repro.policy.acp import parse_policy
from repro.system.idmgr import IdentityManager
from repro.system.idp import IdentityProvider
from repro.system.publisher import Publisher
from repro.system.subscriber import Subscriber


def build_world(seed=0xD15C):
    """(idp, idmgr, publisher, subscriber-with-tokens); deterministic."""
    rng = random.Random(seed)
    group = get_group("nist-p192")
    idp = IdentityProvider("hr", group, rng=rng)
    idmgr = IdentityManager(group, rng=rng)
    idmgr.trust_idp(idp)
    pub = Publisher(
        "pub", idmgr.params, idmgr.public_key, gkm_field=FAST_FIELD,
        attribute_bits=8, rng=rng,
    )
    pub.add_policy(parse_policy("role = doc", ["clinical"], "report"))
    pub.add_policy(parse_policy("level >= 50", ["billing"], "report"))
    idp.enroll("carol", "role", "doc")
    idp.enroll("carol", "level", 70)
    nym = idmgr.assign_pseudonym()
    sub = Subscriber(nym, pub.params, rng=rng)
    for attr in ("role", "level"):
        token, x, r = idmgr.issue_token(
            nym, idp.assert_attribute("carol", attr), rng=rng
        )
        sub.hold_token(token, x, r)
    return idp, idmgr, pub, sub


@pytest.fixture
def world():
    return build_world()


@pytest.fixture
def group():
    return get_group("nist-p192")
