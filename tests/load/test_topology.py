"""The relay-topology knob: spec, JSON round trip, and deployment rules.

The topology is declarative -- ``RelaySpec`` rows in a ``LoadScenario``
(and a ``topology`` section in the bootstrap scenario JSON) -- and
*order is the contract*: a relay's upstream must appear earlier in the
list, so any well-formed spec is a tree a supervisor can spawn in
declaration order.  These tests pin that contract from every entrance:
the dataclass validator, the file round trip, the bootstrap-JSON
normalizer, and the engine's driver gate.
"""

import pytest

from dataclasses import replace

from repro.errors import InvalidParameterError, LoadScenarioError
from repro.load import (
    LoadEngine,
    RelaySpec,
    load_scenario_file,
    save_scenario_file,
    smoke_scenario,
    with_relays,
)
from repro.load.scenarios import builtin_scenario
from repro.net.bootstrap import relay_for_entity, relay_specs


class TestRelaySpec:
    def test_with_relays_builds_a_chain(self):
        scenario = with_relays(smoke_scenario(), 3)
        assert scenario.name == "smoke-relay3"
        assert [r.name for r in scenario.topology] == [
            "relay1", "relay2", "relay3",
        ]
        assert [r.upstream for r in scenario.topology] == [
            None, "relay1", "relay2",
        ]
        # Everything else is untouched: same population, same phases.
        base = smoke_scenario()
        assert scenario.publishers == base.publishers
        assert scenario.phases == base.phases
        assert scenario.seed == base.seed

    def test_with_relays_rejects_zero_depth(self):
        with pytest.raises(InvalidParameterError):
            with_relays(smoke_scenario(), 0)

    def test_builtin_relay_scenarios_resolve(self):
        assert len(builtin_scenario("smoke-relay").topology) == 2
        assert len(builtin_scenario("churn-relay").topology) == 3

    def test_duplicate_relay_names_rejected(self):
        scenario = replace(
            smoke_scenario(),
            topology=(RelaySpec("r1"), RelaySpec("r1", upstream="r1")),
        )
        with pytest.raises(InvalidParameterError, match="duplicate"):
            scenario.validate()

    def test_upstream_must_be_an_earlier_relay(self):
        # Forward reference: r1 names r2 which is declared later.
        scenario = replace(
            smoke_scenario(),
            topology=(RelaySpec("r1", upstream="r2"), RelaySpec("r2")),
        )
        with pytest.raises(InvalidParameterError, match="earlier"):
            scenario.validate()
        # Unknown reference is the same violation.
        scenario = replace(
            smoke_scenario(), topology=(RelaySpec("r1", upstream="ghost"),)
        )
        with pytest.raises(InvalidParameterError):
            scenario.validate()

    def test_empty_relay_name_rejected(self):
        with pytest.raises(InvalidParameterError):
            RelaySpec("").validate()

    def test_json_round_trip_preserves_topology(self, tmp_path):
        scenario = with_relays(smoke_scenario(), 2)
        path = str(tmp_path / "scenario.json")
        save_scenario_file(scenario, path)
        loaded = load_scenario_file(path)
        assert loaded == scenario
        assert loaded.topology == scenario.topology

    def test_payload_without_topology_means_single_broker(self):
        scenario = smoke_scenario()
        payload = scenario.to_payload()
        assert payload["topology"] == []
        assert scenario.topology == ()


class TestEngineGate:
    def test_memory_driver_refuses_a_topology(self, tmp_path):
        scenario = with_relays(smoke_scenario(), 2)
        with pytest.raises(LoadScenarioError, match="tcp"):
            LoadEngine(scenario, driver="memory", data_root=str(tmp_path))


class TestBootstrapTopology:
    def test_relay_specs_normalizes_and_orders(self):
        scenario = {
            "topology": {
                "relays": [
                    {"name": "r1"},
                    {"name": "r2", "upstream": "r1"},
                ],
                "attach": {"alice": "r2"},
            }
        }
        assert relay_specs(scenario) == [
            {"name": "r1", "upstream": None},
            {"name": "r2", "upstream": "r1"},
        ]
        assert relay_for_entity(scenario, "alice") == "r2"
        assert relay_for_entity(scenario, "bob") is None

    def test_relay_specs_empty_without_topology(self):
        assert relay_specs({}) == []
        assert relay_for_entity({}, "anyone") is None

    def test_relay_specs_rejects_malformed(self):
        with pytest.raises(InvalidParameterError, match="name"):
            relay_specs({"topology": {"relays": [{"upstream": "r1"}]}})
        with pytest.raises(InvalidParameterError, match="duplicate"):
            relay_specs(
                {"topology": {"relays": [{"name": "r"}, {"name": "r"}]}}
            )
        # Forward/unknown upstream: order is the tree-ness proof.
        with pytest.raises(InvalidParameterError, match="earlier"):
            relay_specs(
                {"topology": {"relays": [
                    {"name": "r1", "upstream": "r2"}, {"name": "r2"},
                ]}}
            )

    def test_scenario_validation_checks_attach_targets(self, tmp_path):
        from repro.net.bootstrap import load_scenario, write_json

        scenario = {
            "group": "toy",
            "seed": 7,
            "users": {"alice": {"level": 3}},
            "policies": ["level >= 1"],
            "topology": {
                "relays": [{"name": "r1"}],
                "attach": {"alice": "ghost"},
            },
        }
        path = str(tmp_path / "scenario.json")
        write_json(path, scenario)
        with pytest.raises(InvalidParameterError, match="unknown relay"):
            load_scenario(path)
