"""The invariant checker must catch violations, not just bless runs."""

import random
from dataclasses import replace as dc_replace

import pytest

from repro.documents.model import Document
from repro.errors import InvariantViolation
from repro.gkm.acv import FAST_FIELD
from repro.gkm.buckets import BucketedHeader
from repro.groups import get_group
from repro.load import (
    LoadEngine,
    LoadScenario,
    PhaseSpec,
    bucketed,
    check_bucket_layout,
    check_bucketed_package,
    check_members,
    check_rekey_window,
    expected_plaintexts,
    feed_publisher,
)
from repro.policy.acp import parse_policy
from repro.system.idmgr import IdentityManager
from repro.system.idp import IdentityProvider
from repro.system.publisher import Publisher
from repro.system.transport import BROADCAST, Message


def _broadcast(sender="alpha"):
    return Message(sender=sender, receiver=BROADCAST,
                   kind="broadcast-package", size=100)


def test_clean_rekey_window_passes():
    records = [_broadcast("alpha"), _broadcast("beta")]
    check_rekey_window(records, ["alpha", "beta"], 2, context="t")


def test_publisher_unicast_is_a_violation():
    records = [
        _broadcast(),
        Message(sender="alpha", receiver="pn-3",
                kind="broadcast-package", size=10),
    ]
    with pytest.raises(InvariantViolation, match="unicast"):
        check_rekey_window(records, ["alpha"], 2, context="t")


def test_registration_traffic_in_rekey_window_is_a_violation():
    records = [
        _broadcast(),
        Message(sender="pn-3", receiver="alpha",
                kind="token+condition-request", size=10),
    ]
    with pytest.raises(InvariantViolation, match="registration"):
        check_rekey_window(records, ["alpha"], 1, context="t")


def test_inbound_publisher_traffic_is_a_violation():
    records = [
        _broadcast(),
        Message(sender="pn-3", receiver="alpha",
                kind="condition-query", size=10),
    ]
    with pytest.raises(InvariantViolation, match="received"):
        check_rekey_window(records, ["alpha"], 1, context="t")


def test_missing_broadcast_is_a_violation():
    with pytest.raises(InvariantViolation, match="expected 2"):
        check_rekey_window([_broadcast()], ["alpha"], 2, context="t")


def test_expected_plaintexts_tracks_clearance():
    spec = feed_publisher("alpha")
    doc = spec.documents[0]
    both = expected_plaintexts(spec, {"alpha_clr": 85}, doc)
    assert sorted(both) == ["body", "vip"]
    body_only = expected_plaintexts(spec, {"alpha_clr": 45}, doc)
    assert sorted(body_only) == ["body"]
    assert expected_plaintexts(spec, {"alpha_clr": 5}, doc) == {}


@pytest.fixture(scope="module")
def small_world():
    scenario = LoadScenario(
        name="tamper",
        seed=0xBAD,
        publishers=(feed_publisher("alpha"),),
        phases=(PhaseSpec(kind="join", count=4),),
    )
    with LoadEngine(scenario, driver="memory") as engine:
        engine.run()
        yield engine


def test_check_members_passes_untampered(small_world):
    check_members(small_world, context="clean")


def test_fake_revocation_detected(small_world):
    # Mark a deriving member revoked WITHOUT touching the publisher: the
    # checker must notice it still decrypts (and still has table rows).
    member = next(
        m for m in small_world.members.values()
        if m.attributes["alpha_clr"] >= 40
    )
    member.revoked = True
    try:
        with pytest.raises(InvariantViolation, match="REVOKED"):
            check_members(small_world, context="tampered")
    finally:
        member.revoked = False


# -- bucketed-header violations ----------------------------------------------

DOC = Document.of("doc", {"body": b"bulletin body"})
N_MEMBERS = 6
BUCKET_SIZE = 2


def _bucketed_publisher():
    rng = random.Random(0xB0C4)
    group = get_group("nist-p192")
    idp = IdentityProvider("hr", group, rng=rng)
    idmgr = IdentityManager(group, rng=rng)
    idmgr.trust_idp(idp)
    publisher = Publisher(
        "pub", idmgr.params, idmgr.public_key, gkm_field=FAST_FIELD,
        attribute_bits=8, rng=rng, gkm="bucketed", gkm_bucket_size=BUCKET_SIZE,
    )
    publisher.add_policy(parse_policy("clr >= 40", ["body"], "doc"))
    table_rng = random.Random(0xB0C5)
    for i in range(N_MEMBERS):
        publisher.table.set(
            "pn-%04d" % i, "clr >= 40",
            bytes(table_rng.randrange(256) for _ in range(16)),
        )
    return publisher


def _tamper_acv(package, acv):
    header = dc_replace(package.headers[0], acv=acv)
    return dc_replace(package, headers=(header,) + package.headers[1:])


def test_clean_bucketed_package_passes():
    publisher = _bucketed_publisher()
    package = publisher.publish(DOC)
    assert len(package.headers[0].acv.buckets) == N_MEMBERS // BUCKET_SIZE
    check_bucketed_package(publisher, package, context="clean")


def test_member_in_wrong_bucket_detected():
    publisher = _bucketed_publisher()
    package = publisher.publish(DOC)
    buckets = package.headers[0].acv.buckets
    # Swap the first two buckets: every row of chunk 0 now sits behind
    # chunk 1's ACV and vice versa -- each bucket is still a perfectly
    # valid ACV in isolation, only the assignment is wrong.
    swapped = BucketedHeader(buckets=(buckets[1], buckets[0]) + buckets[2:])
    with pytest.raises(InvariantViolation, match="wrong bucket"):
        check_bucketed_package(
            publisher, _tamper_acv(package, swapped), context="tampered"
        )


def test_stale_bucket_surviving_revoke_detected():
    publisher = _bucketed_publisher()
    before = publisher.publish(DOC)
    stale = before.headers[0].acv.buckets[-1]
    # Revoke exactly one bucket's worth of members, rekey...
    revoked = ["pn-%04d" % i for i in range(N_MEMBERS - BUCKET_SIZE, N_MEMBERS)]
    assert publisher.revoke_subscriptions(revoked) == BUCKET_SIZE
    after = publisher.publish(DOC)
    good = after.headers[0].acv.buckets
    assert len(good) == len(before.headers[0].acv.buckets) - 1
    # ...then fabricate a broadcast that still carries the pre-revoke
    # bucket: one extra bucket vs what the current table implies.
    appended = BucketedHeader(buckets=good + (stale,))
    with pytest.raises(InvariantViolation, match="stale or missing"):
        check_bucketed_package(
            publisher, _tamper_acv(after, appended), context="tampered"
        )
    # The sneakier variant: same bucket count, but the last live bucket
    # replaced by the stale one (old nonces, old key) -- its chunk's rows
    # no longer derive the current key.
    replaced = BucketedHeader(buckets=good[:-1] + (stale,))
    with pytest.raises(InvariantViolation):
        check_bucketed_package(
            publisher, _tamper_acv(after, replaced), context="tampered"
        )


def test_dense_header_from_bucketed_publisher_detected():
    publisher = _bucketed_publisher()
    package = publisher.publish(DOC)
    dense_acv = package.headers[0].acv.buckets[0]  # a plain AcvHeader
    with pytest.raises(InvariantViolation, match="dense header"):
        check_bucketed_package(
            publisher, _tamper_acv(package, dense_acv), context="tampered"
        )


def test_engine_level_bucket_layout_wiring():
    """check_bucket_layout reads the engine's retained rekey packages."""
    scenario = bucketed(LoadScenario(
        name="tamper",
        seed=0xBAD2,
        publishers=(feed_publisher("alpha"),),
        phases=(PhaseSpec(kind="join", count=6),),
    ), bucket_size=1)  # one row per bucket: any 2-member config splits
    with LoadEngine(scenario, driver="memory") as engine:
        engine.run()
        check_bucket_layout(engine, context="clean")
        tampered = False
        rebuilt = []
        for name, package in engine.last_rekey_packages:
            headers = list(package.headers)
            for index, header in enumerate(headers):
                if header.acv is not None and len(header.acv.buckets) > 1:
                    buckets = header.acv.buckets
                    headers[index] = dc_replace(
                        header,
                        acv=BucketedHeader(
                            buckets=(buckets[1], buckets[0]) + buckets[2:]
                        ),
                    )
                    tampered = True
                    break
            rebuilt.append((name, dc_replace(package, headers=tuple(headers))))
        assert tampered, "no multi-bucket configuration to tamper with"
        engine.last_rekey_packages = rebuilt
        with pytest.raises(InvariantViolation):
            check_bucket_layout(engine, context="tampered")


def test_overclaimed_entitlement_detected(small_world):
    # Claim a member is entitled to more than its real clearance can
    # derive: actual plaintexts no longer match the ground truth.
    member = next(
        m for m in small_world.members.values()
        if m.attributes["alpha_clr"] < 80
    )
    original = dict(member.attributes)
    member.attributes = {"alpha_clr": 99}
    try:
        with pytest.raises(InvariantViolation, match="entitled"):
            check_members(small_world, context="tampered")
    finally:
        member.attributes = original
