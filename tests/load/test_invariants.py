"""The invariant checker must catch violations, not just bless runs."""

import pytest

from repro.errors import InvariantViolation
from repro.load import (
    LoadEngine,
    LoadScenario,
    PhaseSpec,
    check_members,
    check_rekey_window,
    expected_plaintexts,
    feed_publisher,
)
from repro.system.transport import BROADCAST, Message


def _broadcast(sender="alpha"):
    return Message(sender=sender, receiver=BROADCAST,
                   kind="broadcast-package", size=100)


def test_clean_rekey_window_passes():
    records = [_broadcast("alpha"), _broadcast("beta")]
    check_rekey_window(records, ["alpha", "beta"], 2, context="t")


def test_publisher_unicast_is_a_violation():
    records = [
        _broadcast(),
        Message(sender="alpha", receiver="pn-3",
                kind="broadcast-package", size=10),
    ]
    with pytest.raises(InvariantViolation, match="unicast"):
        check_rekey_window(records, ["alpha"], 2, context="t")


def test_registration_traffic_in_rekey_window_is_a_violation():
    records = [
        _broadcast(),
        Message(sender="pn-3", receiver="alpha",
                kind="token+condition-request", size=10),
    ]
    with pytest.raises(InvariantViolation, match="registration"):
        check_rekey_window(records, ["alpha"], 1, context="t")


def test_inbound_publisher_traffic_is_a_violation():
    records = [
        _broadcast(),
        Message(sender="pn-3", receiver="alpha",
                kind="condition-query", size=10),
    ]
    with pytest.raises(InvariantViolation, match="received"):
        check_rekey_window(records, ["alpha"], 1, context="t")


def test_missing_broadcast_is_a_violation():
    with pytest.raises(InvariantViolation, match="expected 2"):
        check_rekey_window([_broadcast()], ["alpha"], 2, context="t")


def test_expected_plaintexts_tracks_clearance():
    spec = feed_publisher("alpha")
    doc = spec.documents[0]
    both = expected_plaintexts(spec, {"alpha_clr": 85}, doc)
    assert sorted(both) == ["body", "vip"]
    body_only = expected_plaintexts(spec, {"alpha_clr": 45}, doc)
    assert sorted(body_only) == ["body"]
    assert expected_plaintexts(spec, {"alpha_clr": 5}, doc) == {}


@pytest.fixture(scope="module")
def small_world():
    scenario = LoadScenario(
        name="tamper",
        seed=0xBAD,
        publishers=(feed_publisher("alpha"),),
        phases=(PhaseSpec(kind="join", count=4),),
    )
    with LoadEngine(scenario, driver="memory") as engine:
        engine.run()
        yield engine


def test_check_members_passes_untampered(small_world):
    check_members(small_world, context="clean")


def test_fake_revocation_detected(small_world):
    # Mark a deriving member revoked WITHOUT touching the publisher: the
    # checker must notice it still decrypts (and still has table rows).
    member = next(
        m for m in small_world.members.values()
        if m.attributes["alpha_clr"] >= 40
    )
    member.revoked = True
    try:
        with pytest.raises(InvariantViolation, match="REVOKED"):
            check_members(small_world, context="tampered")
    finally:
        member.revoked = False


def test_overclaimed_entitlement_detected(small_world):
    # Claim a member is entitled to more than its real clearance can
    # derive: actual plaintexts no longer match the ground truth.
    member = next(
        m for m in small_world.members.values()
        if m.attributes["alpha_clr"] < 80
    )
    original = dict(member.attributes)
    member.attributes = {"alpha_clr": 99}
    try:
        with pytest.raises(InvariantViolation, match="entitled"):
            check_members(small_world, context="tampered")
    finally:
        member.attributes = original
