"""Scenario spec validation and the JSON round trip."""

import pytest

from repro.errors import InvalidParameterError
from repro.load import (
    AttributeSpec,
    LoadScenario,
    PhaseSpec,
    churn_phases,
    churn_scenario,
    feed_publisher,
    load_scenario_file,
    save_scenario_file,
    smoke_scenario,
)


def test_builtins_validate():
    assert smoke_scenario().validate() is not None
    churn = churn_scenario()
    assert sum(1 for p in churn.phases
               if p.kind in ("join", "revoke", "flap")) >= 4
    assert len(churn.publishers) >= 2
    assert churn.phases[0].count >= 64


def test_json_round_trip(tmp_path):
    scenario = smoke_scenario()
    path = str(tmp_path / "scenario.json")
    save_scenario_file(scenario, path)
    assert load_scenario_file(path) == scenario


def test_from_payload_rejects_malformed():
    with pytest.raises(InvalidParameterError):
        LoadScenario.from_payload({"name": "x"})


@pytest.mark.parametrize(
    "mutate",
    [
        lambda s: s.__class__(**{**_fields(s), "publishers": ()}),
        lambda s: s.__class__(**{**_fields(s), "phases": ()}),
        # first phase must be a join
        lambda s: s.__class__(
            **{**_fields(s), "phases": (PhaseSpec(kind="revoke", count=1),)}
        ),
        # unknown phase kind
        lambda s: s.__class__(
            **{**_fields(s),
               "phases": (PhaseSpec(kind="join", count=1),
                          PhaseSpec(kind="meltdown", count=1))}
        ),
        # phase targeting an unknown publisher
        lambda s: s.__class__(
            **{**_fields(s),
               "phases": (PhaseSpec(kind="join", count=1, publisher="nope"),)}
        ),
        # duplicate publisher
        lambda s: s.__class__(
            **{**_fields(s),
               "publishers": (feed_publisher("alpha"), feed_publisher("alpha"))}
        ),
        # bad seed type
        lambda s: s.__class__(**{**_fields(s), "seed": "not-an-int"}),
        # unknown gkm field
        lambda s: s.__class__(**{**_fields(s), "gkm_field": "huge"}),
        # negative / non-int worker counts
        lambda s: s.__class__(**{**_fields(s), "ocbe_workers": -1}),
        lambda s: s.__class__(**{**_fields(s), "ocbe_workers": True}),
    ],
)
def test_validation_rejects(mutate):
    with pytest.raises(InvalidParameterError):
        mutate(smoke_scenario()).validate()


def _fields(scenario):
    return {
        "name": scenario.name,
        "seed": scenario.seed,
        "publishers": scenario.publishers,
        "phases": scenario.phases,
        "group": scenario.group,
        "gkm_field": scenario.gkm_field,
        "attribute_bits": scenario.attribute_bits,
        "capacity_slack": scenario.capacity_slack,
    }


def test_attribute_universes_must_be_disjoint():
    alpha = feed_publisher("alpha")
    # Give beta an attribute that collides with alpha's.
    beta = feed_publisher("beta")
    beta = beta.__class__(
        name=beta.name,
        attributes=alpha.attributes,
        policies=tuple(
            p.__class__(
                condition=p.condition.replace("beta_clr", "alpha_clr"),
                segments=p.segments,
                document=p.document,
            )
            for p in beta.policies
        ),
        documents=beta.documents,
    )
    scenario = LoadScenario(
        name="clash",
        seed=1,
        publishers=(alpha, beta),
        phases=(PhaseSpec(kind="join", count=2),),
    )
    with pytest.raises(InvalidParameterError):
        scenario.validate()


def test_attribute_range_must_fit_encoding():
    with pytest.raises(InvalidParameterError):
        AttributeSpec("a", 0, 300).validate(attribute_bits=8)
    with pytest.raises(InvalidParameterError):
        AttributeSpec("a", 7, 3).validate(attribute_bits=8)
    AttributeSpec("a", 0, 255).validate(attribute_bits=8)


def test_policy_must_reference_declared_things():
    pub = feed_publisher("alpha")
    bad = pub.__class__(
        name=pub.name,
        attributes=pub.attributes,
        policies=(pub.policies[0].__class__(
            condition="ghost_attr >= 1",
            segments=("body",),
            document="alpha-feed",
        ),),
        documents=pub.documents,
    )
    with pytest.raises(InvalidParameterError):
        bad.validate(attribute_bits=8)


def test_churn_phases_expansion():
    phases = churn_phases(
        population=500, arrival_rate=0.05, departure_rate=0.05, steps=3
    )
    assert len(phases) == 6
    assert [p.kind for p in phases] == ["revoke", "join"] * 3
    assert all(p.count == 25 for p in phases)  # 5% of 500
    # A tiny nonzero rate still moves one member per step.
    tiny = churn_phases(population=10, arrival_rate=0.01,
                        departure_rate=0.0, steps=2)
    assert [p.kind for p in tiny] == ["join", "join"]
    assert all(p.count == 1 for p in tiny)
    with pytest.raises(InvalidParameterError):
        churn_phases(population=0, arrival_rate=0.1, departure_rate=0.1,
                     steps=1)


def test_segment_order_survives_the_round_trip(tmp_path):
    from repro.load import DocumentSpec, PolicySpec, PublisherSpec

    publisher = PublisherSpec(
        name="ops",
        attributes=(AttributeSpec("ops_clr", 0, 99),),
        policies=(PolicySpec("ops_clr >= 1", ("zz", "aa"), "feed"),),
        documents=(
            # Deliberately unsorted: order is part of the spec.
            DocumentSpec(name="feed", segments=(("zz", "last"), ("aa", "first"))),
        ),
    )
    scenario = LoadScenario(
        name="ordered", seed=5, publishers=(publisher,),
        phases=(PhaseSpec(kind="join", count=1),),
    ).validate()
    path = str(tmp_path / "ordered.json")
    save_scenario_file(scenario, path)
    loaded = load_scenario_file(path)
    assert loaded == scenario
    assert loaded.publishers[0].documents[0].segment_names() == ("zz", "aa")


def test_hand_written_dict_segments_accepted():
    payload = smoke_scenario().to_payload()
    for publisher in payload["publishers"]:
        for document in publisher["documents"]:
            document["segments"] = dict(document["segments"])  # JSON object
    loaded = LoadScenario.from_payload(payload)
    assert loaded.validate() is not None


def test_duplicate_segments_rejected():
    from repro.load import DocumentSpec

    publisher = feed_publisher("alpha")
    doc = publisher.documents[0]
    dupe = publisher.__class__(
        name=publisher.name,
        attributes=publisher.attributes,
        policies=publisher.policies,
        documents=(DocumentSpec(
            name=doc.name, segments=doc.segments + (doc.segments[0],)
        ),),
    )
    with pytest.raises(InvalidParameterError, match="duplicate segments"):
        dupe.validate(attribute_bits=8)
