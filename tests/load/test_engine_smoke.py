"""Smoke-scale engine runs over both drivers (the fast-tier coverage).

The nightly churn scenario lives in ``benchmarks/test_load_scenarios.py``;
here a deliberately small population exercises every phase kind, both
drivers, and the driver-equivalence property: the TCP run must carry
byte-identical protocol traffic to the in-memory run.
"""

import json

import pytest

from repro.load import (
    LoadEngine,
    LoadScenario,
    PhaseSpec,
    feed_publisher,
    run_scenario,
)
from repro.system.transport import BROADCAST


def tiny_scenario(name="tiny"):
    return LoadScenario(
        name=name,
        seed=0x717,
        publishers=(feed_publisher("alpha"), feed_publisher("beta")),
        phases=(
            PhaseSpec(kind="join", count=6),
            PhaseSpec(kind="revoke", count=2),
            PhaseSpec(kind="flap", count=1),
            PhaseSpec(kind="broadcast", repeat=2),
        ),
    ).validate()


@pytest.fixture(scope="module")
def memory_engine():
    with LoadEngine(tiny_scenario(), driver="memory") as engine:
        engine.report = engine.run()
        yield engine


def test_memory_run_shape(memory_engine):
    report = memory_engine.report
    assert [p.kind for p in report.phases] == [
        "join", "revoke", "flap", "broadcast",
    ]
    assert report.phases[-1].members_alive == 6
    assert report.phases[-1].members_revoked == 2
    # Every phase rekeyed: 2 publishers x 1 document (x2 for the flap's
    # down+recovery rekeys and the broadcast repeat).
    assert [p.broadcasts for p in report.phases] == [2, 2, 4, 4]
    # Registration (join/flap-recovery) legitimately unicasts acks and
    # envelopes; phases without registration must not unicast at all
    # (the rekey windows themselves are asserted by the invariants).
    for phase in report.phases:
        if phase.kind in ("revoke", "broadcast"):
            assert phase.publisher_unicast_frames == 0


def test_memory_membership_outcomes(memory_engine):
    engine = memory_engine
    revoked = [m for m in engine.members.values() if m.revoked]
    flapped = [m for m in engine.members.values() if m.flaps]
    assert len(revoked) == 2 and len(flapped) == 1
    for member in revoked:
        for document in engine.publisher_spec(member.publisher).documents:
            assert member.client.documents[document.name] == {}
    for member in flapped:
        assert member.client.reuse_css
        assert member.alive
        # The flapped member received the broadcast it missed while dead
        # (queued in its inbox) plus everything since.
        assert len(member.client.packages) >= member.expected_packages
    # Revoked rows are gone from every publisher table.
    for member in revoked:
        table = engine.services[member.publisher].publisher.table
        assert member.nym not in table.pseudonyms()


def test_memory_broadcasts_accounted_once(memory_engine):
    accounting = memory_engine.accounting()
    broadcasts = [
        m for m in accounting.messages if m.kind == "broadcast-package"
    ]
    assert broadcasts
    assert all(m.receiver == BROADCAST for m in broadcasts)


def test_bench_emission(memory_engine, tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_BENCH_DIR", str(tmp_path))
    path = memory_engine.report.emit_bench()
    payload = json.loads((tmp_path / "BENCH_load_tiny.json").read_text())
    assert path.endswith("BENCH_load_tiny.json")
    assert payload["op"] == "load-scenario"
    assert payload["params"]["driver"] == "memory"
    assert set(payload["measurements"]) == {
        "00_join", "01_revoke", "02_flap", "03_broadcast", "total",
        "00_join:rekey-publish", "01_revoke:rekey-publish",
        "02_flap:rekey-publish", "03_broadcast:rekey-publish",
        "rekey_publish_total",
    }
    assert payload["measurements"]["rekey_publish_total"]["mean_s"] > 0
    assert payload["bytes"]["total"] > 0
    assert len(payload["phases"]) == 4


def test_tcp_run_matches_memory_traffic(memory_engine):
    report = run_scenario(tiny_scenario(), driver="tcp")
    assert report.driver == "tcp"
    # Same scenario, same seed: the socket run must carry byte-identical
    # protocol traffic (frames and sizes), only wall times may differ.
    assert report.bytes_by_kind() == memory_engine.report.bytes_by_kind()
    assert [p.frames for p in report.phases] == [
        p.frames for p in memory_engine.report.phases
    ]


def test_revoking_more_than_population_is_typed():
    from repro.errors import LoadScenarioError

    scenario = LoadScenario(
        name="overdraw",
        seed=3,
        publishers=(feed_publisher("alpha"),),
        phases=(
            PhaseSpec(kind="join", count=2),
            PhaseSpec(kind="revoke", count=5),
        ),
    )
    with pytest.raises(LoadScenarioError, match="only 2 current"):
        run_scenario(scenario, driver="memory")
