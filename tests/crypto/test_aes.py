"""AES known-answer and structural tests."""

import random

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.crypto.aes import AES, _SBOX, _INV_SBOX, _gf_mul
from repro.errors import InvalidParameterError

PLAINTEXT = bytes.fromhex("00112233445566778899aabbccddeeff")


class TestKnownAnswers:
    """FIPS-197 Appendix C vectors."""

    def test_aes128(self):
        key = bytes(range(16))
        assert (
            AES(key).encrypt_block(PLAINTEXT).hex()
            == "69c4e0d86a7b0430d8cdb78070b4c55a"
        )

    def test_aes192(self):
        key = bytes(range(24))
        assert (
            AES(key).encrypt_block(PLAINTEXT).hex()
            == "dda97ca4864cdfe06eaf70a0ec0d7191"
        )

    def test_aes256(self):
        key = bytes(range(32))
        assert (
            AES(key).encrypt_block(PLAINTEXT).hex()
            == "8ea2b7ca516745bfeafc49904b496089"
        )

    def test_sbox_spot_values(self):
        """Classic S-box entries from the FIPS table."""
        assert _SBOX[0x00] == 0x63
        assert _SBOX[0x01] == 0x7C
        assert _SBOX[0x53] == 0xED
        assert _SBOX[0xFF] == 0x16

    def test_sbox_inverse_table(self):
        for a in range(256):
            assert _INV_SBOX[_SBOX[a]] == a

    def test_gf_mul_known(self):
        assert _gf_mul(0x57, 0x83) == 0xC1  # FIPS-197 example
        assert _gf_mul(0x57, 0x13) == 0xFE


class TestStructure:
    @pytest.mark.parametrize("key_len,rounds", [(16, 10), (24, 12), (32, 14)])
    def test_round_counts(self, key_len, rounds):
        assert AES(bytes(key_len)).rounds == rounds

    def test_invalid_key_length(self):
        with pytest.raises(InvalidParameterError):
            AES(bytes(15))

    def test_invalid_block_length(self):
        cipher = AES(bytes(16))
        with pytest.raises(InvalidParameterError):
            cipher.encrypt_block(b"short")
        with pytest.raises(InvalidParameterError):
            cipher.decrypt_block(b"x" * 17)

    @given(st.binary(min_size=16, max_size=16), st.sampled_from([16, 24, 32]))
    def test_roundtrip(self, block, key_len):
        rng = random.Random(1)
        key = bytes(rng.randrange(256) for _ in range(key_len))
        cipher = AES(key)
        assert cipher.decrypt_block(cipher.encrypt_block(block)) == block

    def test_different_keys_different_ciphertexts(self):
        c1 = AES(bytes(16)).encrypt_block(PLAINTEXT)
        c2 = AES(bytes([1] + [0] * 15)).encrypt_block(PLAINTEXT)
        assert c1 != c2

    def test_avalanche(self):
        """Flipping one plaintext bit flips ~half the ciphertext bits."""
        cipher = AES(bytes(range(16)))
        base = cipher.encrypt_block(PLAINTEXT)
        flipped_pt = bytes([PLAINTEXT[0] ^ 1]) + PLAINTEXT[1:]
        flipped = cipher.encrypt_block(flipped_pt)
        diff_bits = sum(bin(a ^ b).count("1") for a, b in zip(base, flipped))
        assert 32 <= diff_bits <= 96  # 128 bits, expect ~64
