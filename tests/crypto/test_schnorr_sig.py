"""Tests for Schnorr signatures."""

import random

import pytest

from repro.crypto.schnorr_sig import SchnorrKeyPair, SchnorrSignature, verify
from repro.errors import InvalidParameterError
from repro.groups import get_group


@pytest.fixture(scope="module")
def keypair():
    return SchnorrKeyPair(get_group("nist-p192"), rng=random.Random(11))


class TestSignVerify:
    def test_roundtrip(self, keypair):
        rng = random.Random(0)
        sig = keypair.sign(b"message", rng=rng)
        assert keypair.verify(b"message", sig)

    def test_wrong_message(self, keypair):
        sig = keypair.sign(b"message", rng=random.Random(1))
        assert not keypair.verify(b"other", sig)

    def test_tampered_signature(self, keypair):
        sig = keypair.sign(b"message", rng=random.Random(2))
        assert not keypair.verify(b"message", SchnorrSignature(sig.e + 1, sig.s))
        assert not keypair.verify(b"message", SchnorrSignature(sig.e, sig.s + 1))

    def test_out_of_range_rejected(self, keypair):
        q = keypair.group.order
        sig = keypair.sign(b"m", rng=random.Random(3))
        assert not keypair.verify(b"m", SchnorrSignature(sig.e + q, sig.s))
        assert not keypair.verify(b"m", SchnorrSignature(sig.e, sig.s + q))

    def test_wrong_key(self):
        group = get_group("nist-p192")
        kp1 = SchnorrKeyPair(group, rng=random.Random(4))
        kp2 = SchnorrKeyPair(group, rng=random.Random(5))
        sig = kp1.sign(b"m", rng=random.Random(6))
        assert not kp2.verify(b"m", sig)
        assert verify(group, kp1.pk, b"m", sig)
        assert not verify(group, kp2.pk, b"m", sig)

    def test_empty_message(self, keypair):
        sig = keypair.sign(b"", rng=random.Random(7))
        assert keypair.verify(b"", sig)

    def test_nonce_freshness(self, keypair):
        """Two signatures of the same message differ (random nonces)."""
        s1 = keypair.sign(b"m", rng=random.Random(8))
        s2 = keypair.sign(b"m", rng=random.Random(9))
        assert (s1.e, s1.s) != (s2.e, s2.s)
        assert keypair.verify(b"m", s1) and keypair.verify(b"m", s2)

    def test_explicit_secret_key(self):
        group = get_group("nist-p192")
        kp = SchnorrKeyPair(group, sk=123456789)
        sig = kp.sign(b"m", rng=random.Random(10))
        assert kp.verify(b"m", sig)

    def test_zero_secret_rejected(self):
        group = get_group("nist-p192")
        with pytest.raises(InvalidParameterError):
            SchnorrKeyPair(group, sk=group.order)  # reduces to 0

    def test_system_rng_path(self, keypair):
        sig = keypair.sign(b"m")  # secrets-based nonce
        assert keypair.verify(b"m", sig)


class TestSerialization:
    def test_roundtrip(self, keypair):
        sig = keypair.sign(b"m", rng=random.Random(12))
        scalar_len = keypair.group.scalar_byte_length()
        raw = sig.to_bytes(scalar_len)
        assert SchnorrSignature.from_bytes(raw, scalar_len) == sig

    def test_bad_length(self):
        with pytest.raises(InvalidParameterError):
            SchnorrSignature.from_bytes(b"123", 24)

    def test_works_on_schnorr_group(self):
        kp = SchnorrKeyPair(get_group("schnorr-256"), rng=random.Random(13))
        sig = kp.sign(b"m", rng=random.Random(14))
        assert kp.verify(b"m", sig)
