"""Tests for CTR and CBC modes and PKCS#7 padding."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.crypto.aes import AES
from repro.crypto.modes import (
    cbc_decrypt,
    cbc_encrypt,
    ctr_keystream,
    ctr_xor,
    pkcs7_pad,
    pkcs7_unpad,
)
from repro.errors import DecryptionError, InvalidParameterError

KEY = bytes(range(16))
IV = bytes(range(16, 32))


class TestPkcs7:
    def test_pad_lengths(self):
        assert pkcs7_pad(b"") == bytes([16]) * 16
        assert pkcs7_pad(b"a" * 15) == b"a" * 15 + b"\x01"
        assert pkcs7_pad(b"a" * 16)[-16:] == bytes([16]) * 16

    @given(st.binary(max_size=100))
    def test_roundtrip(self, data):
        padded = pkcs7_pad(data)
        assert len(padded) % 16 == 0
        assert pkcs7_unpad(padded) == data

    def test_unpad_rejects_bad_length(self):
        with pytest.raises(DecryptionError):
            pkcs7_unpad(b"12345")

    def test_unpad_rejects_bad_padding(self):
        with pytest.raises(DecryptionError):
            pkcs7_unpad(b"a" * 15 + b"\x03")
        with pytest.raises(DecryptionError):
            pkcs7_unpad(b"a" * 15 + b"\x00")
        with pytest.raises(DecryptionError):
            pkcs7_unpad(b"")


class TestCtr:
    def test_keystream_deterministic(self):
        cipher = AES(KEY)
        assert ctr_keystream(cipher, IV, 40) == ctr_keystream(cipher, IV, 40)

    def test_keystream_is_block_encryptions(self):
        cipher = AES(KEY)
        stream = ctr_keystream(cipher, IV, 32)
        counter = int.from_bytes(IV, "big")
        assert stream[:16] == cipher.encrypt_block(counter.to_bytes(16, "big"))
        assert stream[16:] == cipher.encrypt_block(
            (counter + 1).to_bytes(16, "big")
        )

    def test_counter_wraps(self):
        cipher = AES(KEY)
        stream = ctr_keystream(cipher, b"\xff" * 16, 32)
        assert stream[16:] == cipher.encrypt_block(bytes(16))  # wrapped to 0

    @given(st.binary(max_size=200))
    def test_xor_involution(self, data):
        cipher = AES(KEY)
        assert ctr_xor(cipher, IV, ctr_xor(cipher, IV, data)) == data

    def test_bad_nonce_length(self):
        with pytest.raises(InvalidParameterError):
            ctr_keystream(AES(KEY), b"short", 16)


class TestCbc:
    @given(st.binary(max_size=200))
    def test_roundtrip(self, data):
        cipher = AES(KEY)
        assert cbc_decrypt(cipher, IV, cbc_encrypt(cipher, IV, data)) == data

    def test_iv_matters(self):
        cipher = AES(KEY)
        ct1 = cbc_encrypt(cipher, IV, b"hello world")
        ct2 = cbc_encrypt(cipher, bytes(16), b"hello world")
        assert ct1 != ct2

    def test_chaining(self):
        """Identical plaintext blocks produce distinct ciphertext blocks."""
        cipher = AES(KEY)
        ct = cbc_encrypt(cipher, IV, b"A" * 32)
        assert ct[:16] != ct[16:32]

    def test_tampered_ciphertext_breaks_padding_or_plaintext(self):
        cipher = AES(KEY)
        ct = bytearray(cbc_encrypt(cipher, IV, b"hello"))
        ct[-1] ^= 0xFF
        try:
            out = cbc_decrypt(cipher, IV, bytes(ct))
            assert out != b"hello"
        except DecryptionError:
            pass

    def test_bad_lengths(self):
        cipher = AES(KEY)
        with pytest.raises(InvalidParameterError):
            cbc_encrypt(cipher, b"x", b"data")
        with pytest.raises(DecryptionError):
            cbc_decrypt(cipher, IV, b"123")
