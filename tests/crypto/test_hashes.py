"""Tests for hash functions and hash-to-field helpers."""

import hashlib

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.crypto.hashes import (
    PureSha1,
    PureSha256,
    default_hash,
    expand_message,
    hash_concat,
    hash_to_int,
    hash_to_range,
    pure_sha1,
    pure_sha256,
    sha1,
    sha256,
)
from repro.errors import InvalidParameterError


class TestPureImplementations:
    """The from-scratch SHA implementations agree with hashlib."""

    KNOWN_SHA256 = [
        (b"", "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"),
        (b"abc", "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"),
    ]
    KNOWN_SHA1 = [
        (b"", "da39a3ee5e6b4b0d3255bfef95601890afd80709"),
        (b"abc", "a9993e364706816aba3e25717850c26c9cd0d89d"),
    ]

    @pytest.mark.parametrize("data,expected", KNOWN_SHA256)
    def test_sha256_known_answers(self, data, expected):
        assert PureSha256.hash(data).hex() == expected

    @pytest.mark.parametrize("data,expected", KNOWN_SHA1)
    def test_sha1_known_answers(self, data, expected):
        assert PureSha1.hash(data).hex() == expected

    @given(st.binary(max_size=300))
    def test_sha256_matches_hashlib(self, data):
        assert PureSha256.hash(data) == hashlib.sha256(data).digest()

    @given(st.binary(max_size=300))
    def test_sha1_matches_hashlib(self, data):
        assert PureSha1.hash(data) == hashlib.sha1(data).digest()

    @pytest.mark.parametrize("n", [55, 56, 63, 64, 65, 119, 120, 128])
    def test_padding_boundaries(self, n):
        """Lengths around the 64-byte block boundary exercise padding."""
        data = bytes(range(256))[:n] * 1
        assert PureSha256.hash(data) == hashlib.sha256(data).digest()
        assert PureSha1.hash(data) == hashlib.sha1(data).digest()

    def test_instances_consistent(self):
        data = b"cross-check"
        assert sha256.digest(data) == pure_sha256.digest(data)
        assert sha1.digest(data) == pure_sha1.digest(data)

    def test_metadata(self):
        assert sha256.digest_size == 32
        assert sha1.digest_size == 20
        assert sha256.block_size == 64
        assert default_hash().name == "sha256"
        assert sha256.hexdigest(b"abc") == hashlib.sha256(b"abc").hexdigest()


class TestExpandAndRange:
    def test_expand_lengths(self):
        h = default_hash()
        for n in (0, 1, 31, 32, 33, 100):
            assert len(expand_message(h, b"seed", n)) == n

    def test_expand_deterministic_prefix(self):
        h = default_hash()
        long = expand_message(h, b"seed", 100)
        short = expand_message(h, b"seed", 40)
        assert long[:40] == short

    def test_expand_negative(self):
        with pytest.raises(InvalidParameterError):
            expand_message(default_hash(), b"x", -1)

    @given(st.binary(max_size=64), st.integers(1, 512))
    def test_hash_to_int_bits(self, data, bits):
        value = hash_to_int(default_hash(), data, bits)
        assert 0 <= value < (1 << bits)

    @given(st.binary(max_size=64))
    def test_hash_to_range_bounds(self, data):
        for modulus in (2, 17, 10007, 2**80):
            value = hash_to_range(default_hash(), data, modulus)
            assert 0 <= value < modulus

    def test_hash_to_range_rejects_tiny_modulus(self):
        with pytest.raises(InvalidParameterError):
            hash_to_range(default_hash(), b"x", 1)

    def test_hash_to_range_spreads(self):
        """Different inputs should land on different values (whp)."""
        h = default_hash()
        values = {hash_to_range(h, bytes([i]), 2**80) for i in range(64)}
        assert len(values) == 64


class TestHashConcat:
    """The canonical concatenation hash of the GKM scheme (Eq. 2)."""

    def test_deterministic(self):
        h = default_hash()
        q = 2**80
        assert hash_concat(h, [b"r1", b"r2", b"z"], q) == hash_concat(
            h, [b"r1", b"r2", b"z"], q
        )

    def test_no_concatenation_ambiguity(self):
        """('ab','c') and ('a','bc') must hash differently -- the property
        plain || concatenation would violate."""
        h = default_hash()
        q = 2**80
        assert hash_concat(h, [b"ab", b"c"], q) != hash_concat(h, [b"a", b"bc"], q)

    def test_order_matters(self):
        h = default_hash()
        q = 2**80
        assert hash_concat(h, [b"x", b"y"], q) != hash_concat(h, [b"y", b"x"], q)

    def test_empty_parts_distinct(self):
        h = default_hash()
        q = 2**80
        assert hash_concat(h, [b"", b"x"], q) != hash_concat(h, [b"x", b""], q)

    @given(
        st.lists(st.binary(max_size=16), min_size=1, max_size=4),
        st.lists(st.binary(max_size=16), min_size=1, max_size=4),
    )
    def test_injective_whp(self, parts_a, parts_b):
        h = default_hash()
        q = PRIME_80 = 604462909807314587353111
        if parts_a != parts_b:
            assert hash_concat(h, parts_a, q) != hash_concat(h, parts_b, q)
        else:
            assert hash_concat(h, parts_a, q) == hash_concat(h, parts_b, q)
