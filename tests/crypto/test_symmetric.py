"""Tests for the authenticated symmetric envelopes."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.crypto.symmetric import (
    AesCtrHmacCipher,
    HashStreamCipher,
    default_cipher,
)
from repro.errors import DecryptionError, InvalidParameterError

CIPHERS = [AesCtrHmacCipher(), HashStreamCipher()]
IDS = [c.name for c in CIPHERS]


@pytest.mark.parametrize("cipher", CIPHERS, ids=IDS)
class TestRoundtrip:
    @given(key=st.binary(min_size=1, max_size=64), data=st.binary(max_size=300))
    def test_roundtrip(self, cipher, key, data):
        assert cipher.decrypt(key, cipher.encrypt(key, data)) == data

    def test_empty_plaintext(self, cipher):
        assert cipher.decrypt(b"k", cipher.encrypt(b"k", b"")) == b""

    def test_nondeterministic(self, cipher):
        """Semantic security requires fresh randomness per encryption."""
        ct1 = cipher.encrypt(b"key", b"message")
        ct2 = cipher.encrypt(b"key", b"message")
        assert ct1 != ct2

    def test_wrong_key_rejected(self, cipher):
        ct = cipher.encrypt(b"right", b"message")
        with pytest.raises(DecryptionError):
            cipher.decrypt(b"wrong", ct)

    def test_tampered_body_rejected(self, cipher):
        ct = bytearray(cipher.encrypt(b"key", b"message"))
        ct[20] ^= 1
        with pytest.raises(DecryptionError):
            cipher.decrypt(b"key", bytes(ct))

    def test_tampered_tag_rejected(self, cipher):
        ct = bytearray(cipher.encrypt(b"key", b"message"))
        ct[-1] ^= 1
        with pytest.raises(DecryptionError):
            cipher.decrypt(b"key", bytes(ct))

    def test_truncated_rejected(self, cipher):
        with pytest.raises(DecryptionError):
            cipher.decrypt(b"key", b"short")

    def test_overhead_accounting(self, cipher):
        ct = cipher.encrypt(b"key", b"x" * 100)
        assert len(ct) == 100 + cipher.overhead()


class TestSpecifics:
    def test_default_cipher_is_aes(self):
        assert default_cipher().name == "aes-ctr-hmac"

    def test_aes_key_sizes(self):
        for size in (16, 24, 32):
            c = AesCtrHmacCipher(aes_key_size=size)
            assert c.decrypt(b"k", c.encrypt(b"k", b"data")) == b"data"

    def test_aes_bad_key_size(self):
        with pytest.raises(InvalidParameterError):
            AesCtrHmacCipher(aes_key_size=20)

    def test_ciphertexts_not_interchangeable(self):
        """An AES-CTR ciphertext must not decrypt under the hash-stream
        cipher (domain-separated subkeys + different construction)."""
        ct = AesCtrHmacCipher().encrypt(b"key", b"data")
        with pytest.raises(DecryptionError):
            HashStreamCipher().decrypt(b"key", ct)

    def test_long_payload(self):
        cipher = HashStreamCipher()
        data = bytes(range(256)) * 64  # 16 KiB
        assert cipher.decrypt(b"k", cipher.encrypt(b"k", data)) == data
