"""HMAC (vs stdlib + RFC fixtures) and HKDF (RFC 5869 vectors)."""

import hashlib
import hmac as std_hmac

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.crypto.hashes import pure_sha256, sha1, sha256
from repro.crypto.kdf import derive_key, hkdf_expand, hkdf_extract
from repro.crypto.mac import constant_time_equal, hmac_digest
from repro.errors import InvalidParameterError


class TestHmac:
    @given(st.binary(max_size=200), st.binary(max_size=200))
    def test_matches_stdlib_sha256(self, key, msg):
        assert hmac_digest(key, msg, sha256) == std_hmac.new(
            key, msg, hashlib.sha256
        ).digest()

    @given(st.binary(max_size=100), st.binary(max_size=100))
    def test_matches_stdlib_sha1(self, key, msg):
        assert hmac_digest(key, msg, sha1) == std_hmac.new(
            key, msg, hashlib.sha1
        ).digest()

    def test_long_key_hashed_down(self):
        key = b"k" * 200  # longer than the 64-byte block
        assert hmac_digest(key, b"m") == std_hmac.new(
            key, b"m", hashlib.sha256
        ).digest()

    def test_pure_hash_backend(self):
        assert hmac_digest(b"key", b"msg", pure_sha256) == std_hmac.new(
            b"key", b"msg", hashlib.sha256
        ).digest()

    def test_rfc4231_case_1(self):
        key = b"\x0b" * 20
        data = b"Hi There"
        expected = (
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
        )
        assert hmac_digest(key, data, sha256).hex() == expected


class TestConstantTimeEqual:
    def test_equal(self):
        assert constant_time_equal(b"abc", b"abc")

    def test_unequal_same_length(self):
        assert not constant_time_equal(b"abc", b"abd")

    def test_unequal_lengths(self):
        assert not constant_time_equal(b"abc", b"abcd")

    def test_empty(self):
        assert constant_time_equal(b"", b"")


class TestHkdf:
    def test_rfc5869_case_1(self):
        ikm = b"\x0b" * 22
        salt = bytes(range(13))
        info = bytes(range(0xF0, 0xFA))
        prk = hkdf_extract(salt, ikm)
        assert prk.hex() == (
            "077709362c2e32df0ddc3f0dc47bba6390b6c73bb50f9c3122ec844ad7c2b3e5"
        )
        okm = hkdf_expand(prk, info, 42)
        assert okm.hex() == (
            "3cb25f25faacd57a90434f64d0362f2a"
            "2d2d0a90cf1a5a4c5db02d56ecc4c5bf"
            "34007208d5b887185865"
        )

    def test_empty_salt_defaults_to_zeros(self):
        assert hkdf_extract(b"", b"ikm") == hkdf_extract(b"\x00" * 32, b"ikm")

    def test_expand_lengths(self):
        prk = hkdf_extract(b"salt", b"ikm")
        for n in (1, 16, 32, 33, 64, 255):
            assert len(hkdf_expand(prk, b"info", n)) == n

    def test_expand_rejects_bad_lengths(self):
        prk = hkdf_extract(b"salt", b"ikm")
        with pytest.raises(InvalidParameterError):
            hkdf_expand(prk, b"info", 0)
        with pytest.raises(InvalidParameterError):
            hkdf_expand(prk, b"info", 256 * 32)

    def test_info_separates_keys(self):
        prk = hkdf_extract(b"salt", b"ikm")
        assert hkdf_expand(prk, b"a", 16) != hkdf_expand(prk, b"b", 16)

    @given(st.binary(min_size=1, max_size=64), st.integers(8, 64))
    def test_derive_key_deterministic(self, secret, length):
        assert derive_key(secret, length) == derive_key(secret, length)
        assert len(derive_key(secret, length)) == length

    def test_derive_key_domain_separation(self):
        assert derive_key(b"s", 16, info=b"a") != derive_key(b"s", 16, info=b"b")
