"""Tests for Pedersen commitments over multiple group backends."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.pedersen import PedersenParams
from repro.errors import CommitmentError, InvalidParameterError
from repro.groups import get_group


@pytest.fixture(scope="module")
def params():
    return PedersenParams(get_group("nist-p192"))


class TestSetup:
    def test_distinct_generators(self, params):
        assert params.g != params.h

    def test_rejects_equal_generators(self):
        group = get_group("nist-p192")
        with pytest.raises(InvalidParameterError):
            PedersenParams(group, g=group.generator(), h=group.generator())

    def test_rejects_identity_generator(self):
        group = get_group("nist-p192")
        with pytest.raises(InvalidParameterError):
            PedersenParams(group, g=group.identity())

    @pytest.mark.parametrize("name", ["nist-p192", "schnorr-256", "paper-genus2"])
    def test_works_on_all_backends(self, name):
        p = PedersenParams(get_group(name))
        rng = random.Random(0)
        c, r = p.commit(42, rng=rng)
        assert p.verify_open(c, 42, r)
        assert not p.verify_open(c, 43, r)


class TestCommitOpen:
    @settings(max_examples=10)
    @given(x=st.integers(0, 2**64))
    def test_open_roundtrip(self, params, x):
        rng = random.Random(x)
        c, r = params.commit(x, rng=rng)
        assert params.verify_open(c, x, r)

    def test_wrong_value_rejected(self, params):
        rng = random.Random(1)
        c, r = params.commit(100, rng=rng)
        assert not params.verify_open(c, 101, r)
        assert not params.verify_open(c, 100, r + 1)

    def test_require_open(self, params):
        rng = random.Random(2)
        c, r = params.commit(7, rng=rng)
        params.require_open(c, 7, r)
        with pytest.raises(CommitmentError):
            params.require_open(c, 8, r)

    def test_explicit_blinding(self, params):
        c1, r1 = params.commit(5, r=12345)
        assert r1 == 12345
        c2, _ = params.commit(5, r=12345)
        assert c1.value == c2.value  # deterministic with fixed r

    def test_hiding(self, params):
        """Same value, different blinding: different commitments."""
        c1, _ = params.commit(5, r=1)
        c2, _ = params.commit(5, r=2)
        assert c1.value != c2.value

    def test_values_reduced_mod_order(self, params):
        p = params.order
        c1, _ = params.commit(5, r=7)
        c2, _ = params.commit(5 + p, r=7 + p)
        assert c1.value == c2.value

    def test_homomorphic_addition(self, params):
        c1, r1 = params.commit(10, r=3)
        c2, r2 = params.commit(20, r=4)
        combined = c1 * c2
        assert params.verify_open(combined, 30, r1 + r2)

    def test_commitment_bytes(self, params):
        c, _ = params.commit(5, r=9)
        assert c.to_bytes() == c.value.to_bytes()

    def test_system_rng_path(self, params):
        c, r = params.commit(5)  # no rng given -> secrets module
        assert params.verify_open(c, 5, r)


class TestBinding:
    def test_binding_would_need_dlog(self, params):
        """Opening to a different value requires solving r' from
        g^x h^r = g^x' h^r' -- exhaustively check infeasibility on the toy
        group is meaningless, so we check algebra instead: for a random
        commitment, no small r' opens it to x+1."""
        rng = random.Random(3)
        c, r = params.commit(42, rng=rng)
        assert all(not params.verify_open(c, 43, rp) for rp in range(64))
