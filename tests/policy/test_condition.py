"""Tests for attribute conditions and their parsing."""

import pytest

from repro.errors import PolicyParseError
from repro.ocbe.predicates import (
    EqPredicate,
    GePredicate,
    GtPredicate,
    LePredicate,
    LtPredicate,
    NePredicate,
)
from repro.policy.condition import AttributeCondition, parse_condition
from repro.policy.encoding import MAX_STRING_BITS, encode_value


class TestParsing:
    @pytest.mark.parametrize(
        "text,name,op,value",
        [
            ("level >= 59", "level", ">=", 59),
            ("level<=100", "level", "<=", 100),
            ("age > 17", "age", ">", 17),
            ("age<5", "age", "<", 5),
            ("role = nur", "role", "=", "nur"),
            ('role = "nurse"', "role", "=", "nurse"),
            ("role='doc'", "role", "=", "doc"),
            ("dept != ICU", "dept", "!=", "ICU"),
            ("YoS >= 5", "YoS", ">=", 5),
            ("x == 3", "x", "=", 3),
        ],
    )
    def test_valid(self, text, name, op, value):
        cond = parse_condition(text)
        assert cond.name == name
        assert cond.op == op
        assert cond.value == value

    @pytest.mark.parametrize(
        "text",
        ["", "level", ">= 5", "level >=", "level ~ 5", "1level >= 5", "a = b = c"],
    )
    def test_invalid(self, text):
        with pytest.raises(PolicyParseError):
            parse_condition(text)

    def test_negative_literal_string_ops_only(self):
        # Negative integers parse but violate the encoding's domain when
        # used; order ops on strings are rejected at construction.
        with pytest.raises(PolicyParseError):
            AttributeCondition("level", ">=", "high")


class TestSemantics:
    def test_key_stability(self):
        assert parse_condition("level >= 59").key() == "level >= 59"
        assert str(parse_condition("role = nur")) == "role = nur"

    def test_key_distinguishes_value_types(self):
        # 5 the int and "5" the string encode differently...
        c_int = AttributeCondition("a", "=", 5)
        c_str = AttributeCondition("a", "=", "5")
        assert encode_value(c_int.value) != encode_value(c_str.value)

    def test_equality_and_hash(self):
        assert parse_condition("a >= 1") == parse_condition("a >= 1")
        assert parse_condition("a >= 1") != parse_condition("a >= 2")
        assert len({parse_condition("a >= 1"), parse_condition("a >= 1")}) == 1

    def test_bad_operator_rejected(self):
        with pytest.raises(PolicyParseError):
            AttributeCondition("a", "~~", 1)


class TestPredicateConversion:
    @pytest.mark.parametrize(
        "text,cls",
        [
            ("a = 5", EqPredicate),
            ("a != 5", NePredicate),
            ("a >= 5", GePredicate),
            ("a <= 5", LePredicate),
            ("a > 5", GtPredicate),
            ("a < 5", LtPredicate),
        ],
    )
    def test_int_predicates(self, text, cls):
        predicate = parse_condition(text).predicate(ell=16)
        assert isinstance(predicate, cls)
        assert predicate.evaluate(5) == (text.split()[1] in ("=", ">=", "<="))

    def test_string_equality_predicate(self):
        predicate = parse_condition("role = nur").predicate()
        assert isinstance(predicate, EqPredicate)
        assert predicate.x0 == encode_value("nur")

    def test_string_inequality_predicate_uses_string_bits(self):
        predicate = parse_condition("role != nur").predicate(ell=8)
        assert isinstance(predicate, NePredicate)
        assert predicate.ell == MAX_STRING_BITS

    def test_ell_carried_for_ints(self):
        predicate = parse_condition("a >= 5").predicate(ell=12)
        assert predicate.ell == 12
