"""Tests for access control policies (Definition 4)."""

import pytest

from repro.errors import PolicyParseError
from repro.policy.acp import AccessControlPolicy, parse_policy


class TestParsePolicy:
    def test_example_2(self):
        """The paper's Example 2 policy."""
        acp = parse_policy(
            'level >= 58 AND role = "nurse"',
            ["physical_exam", "treatment_plan"],
            "EHR.xml",
        )
        assert len(acp.conditions) == 2
        assert acp.objects == {"physical_exam", "treatment_plan"}
        assert acp.document == "EHR.xml"

    @pytest.mark.parametrize(
        "subject,count",
        [
            ("a >= 1", 1),
            ("a >= 1 AND b = 2", 2),
            ("a >= 1 and b = 2 and c < 3", 3),
            ("a >= 1 && b = 2", 2),
            ("a >= 1 ∧ b = 2", 2),
        ],
    )
    def test_conjunction_separators(self, subject, count):
        assert len(parse_policy(subject, ["o"], "d").conditions) == count

    def test_empty_subject_rejected(self):
        with pytest.raises(PolicyParseError):
            parse_policy("", ["o"], "d")

    def test_empty_objects_rejected(self):
        with pytest.raises(PolicyParseError):
            parse_policy("a = 1", [], "d")

    def test_no_conditions_rejected(self):
        with pytest.raises(PolicyParseError):
            AccessControlPolicy(conditions=(), objects=frozenset({"o"}), document="d")


class TestAccessors:
    def test_attribute_names(self):
        acp = parse_policy("level >= 58 AND role = nur", ["o"], "d")
        assert acp.attribute_names == {"level", "role"}

    def test_condition_keys_ordered(self):
        acp = parse_policy("level >= 58 AND role = nur", ["o"], "d")
        assert acp.condition_keys() == ("level >= 58", "role = nur")

    def test_applies_to(self):
        acp = parse_policy("a = 1", ["o1", "o2"], "d")
        assert acp.applies_to("o1")
        assert not acp.applies_to("o3")

    def test_describe(self):
        acp = parse_policy("a = 1 AND b >= 2", ["o2", "o1"], "d")
        text = acp.describe()
        assert "a = 1" in text and "b >= 2" in text
        assert "o1, o2" in text  # objects sorted
        assert str(acp) == text

    def test_hashable_and_equal(self):
        a1 = parse_policy("a = 1", ["o"], "d")
        a2 = parse_policy("a = 1", ["o"], "d")
        assert a1 == a2
        assert len({a1, a2}) == 1
