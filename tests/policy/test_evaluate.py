"""Tests for ground-truth policy evaluation."""

import pytest

from repro.errors import PolicyError
from repro.policy.condition import parse_condition
from repro.policy.acp import parse_policy
from repro.policy.configuration import PolicyConfiguration
from repro.policy.evaluate import (
    satisfies_condition,
    satisfies_configuration,
    satisfies_policy,
)


class TestConditions:
    @pytest.mark.parametrize(
        "cond,attrs,expected",
        [
            ("level >= 59", {"level": 59}, True),
            ("level >= 59", {"level": 58}, False),
            ("level <= 10", {"level": 10}, True),
            ("level > 10", {"level": 10}, False),
            ("level < 10", {"level": 9}, True),
            ("role = nur", {"role": "nur"}, True),
            ("role = nur", {"role": "doc"}, False),
            ("role != nur", {"role": "doc"}, True),
            ("level >= 59", {}, False),                 # missing attribute
            ("level >= 59", {"other": 100}, False),
        ],
    )
    def test_cases(self, cond, attrs, expected):
        assert satisfies_condition(attrs, parse_condition(cond)) == expected

    def test_type_confusion_raises(self):
        with pytest.raises(PolicyError):
            satisfies_condition({"level": "high"}, parse_condition("level >= 5"))

    def test_string_vs_int_equality(self):
        assert not satisfies_condition({"a": "5"}, parse_condition("a = 5"))


class TestPoliciesAndConfigurations:
    def test_conjunction(self):
        acp = parse_policy("role = nur AND level >= 59", ["o"], "d")
        assert satisfies_policy({"role": "nur", "level": 59}, acp)
        assert not satisfies_policy({"role": "nur", "level": 58}, acp)
        assert not satisfies_policy({"role": "doc", "level": 59}, acp)
        assert not satisfies_policy({"level": 59}, acp)

    def test_configuration_disjunction(self):
        acp1 = parse_policy("role = rec", ["o"], "d")
        acp2 = parse_policy("role = doc", ["o"], "d")
        config = PolicyConfiguration.of([acp1, acp2])
        assert satisfies_configuration({"role": "rec"}, config)
        assert satisfies_configuration({"role": "doc"}, config)
        assert not satisfies_configuration({"role": "cas"}, config)

    def test_empty_configuration_never_satisfied(self):
        assert not satisfies_configuration({"role": "rec"}, PolicyConfiguration.of([]))
