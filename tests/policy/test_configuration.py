"""Tests for policy configurations and dominance -- including the exact
configuration algebra of the paper's Example 4."""


from repro.policy.configuration import (
    PolicyConfiguration,
    build_configurations,
    dominance_order,
    dominates,
)
from repro.workloads.ehr import EHR_SUBDOCUMENT_TAGS, build_ehr_policies


class TestBasics:
    def test_empty(self):
        empty = PolicyConfiguration.of([])
        assert empty.is_empty
        assert len(empty) == 0
        assert empty.describe() == "{}"

    def test_of_dedupes(self, ):
        acps = build_ehr_policies()
        config = PolicyConfiguration.of([acps[0], acps[0]])
        assert len(config) == 1

    def test_condition_keys_union(self):
        acps = build_ehr_policies()
        config = PolicyConfiguration.of([acps[2], acps[3]])  # doc + nurse policy
        assert "role = doc" in config.condition_keys()
        assert "role = nur" in config.condition_keys()
        assert "level >= 59" in config.condition_keys()

    def test_sorted_policies_deterministic(self):
        acps = build_ehr_policies()
        c1 = PolicyConfiguration.of([acps[0], acps[3]])
        c2 = PolicyConfiguration.of([acps[3], acps[0]])
        assert c1.sorted_policies() == c2.sorted_policies()
        assert list(c1) == c1.sorted_policies()


class TestDominance:
    def test_subset_dominates(self):
        acps = build_ehr_policies()
        small = PolicyConfiguration.of([acps[0]])
        large = PolicyConfiguration.of([acps[0], acps[1]])
        assert small.dominates(large)
        assert not large.dominates(small)
        assert dominates(small, large)

    def test_reflexive(self):
        acps = build_ehr_policies()
        c = PolicyConfiguration.of([acps[0]])
        assert c.dominates(c)

    def test_empty_dominates_everything(self):
        acps = build_ehr_policies()
        empty = PolicyConfiguration.of([])
        c = PolicyConfiguration.of([acps[0]])
        assert empty.dominates(c)

    def test_dominance_order_strict_pairs(self):
        acps = build_ehr_policies()
        a = PolicyConfiguration.of([acps[0]])
        b = PolicyConfiguration.of([acps[0], acps[1]])
        c = PolicyConfiguration.of([acps[2]])
        pairs = dominance_order([a, b, c])
        assert (a, b) in pairs
        assert (b, a) not in pairs
        assert all(x.policies != y.policies for x, y in pairs)


class TestExample4:
    """The paper's Pc1..Pc6 mapping, verbatim."""

    def test_configurations_match_paper(self):
        acps = build_ehr_policies()
        acp1, acp2, acp3, acp4, acp5, acp6 = acps
        subdocs = list(EHR_SUBDOCUMENT_TAGS) + ["_rest"]
        by_sub = build_configurations(subdocs, acps)

        assert by_sub["ContactInfo"].policies == {acp1, acp4, acp5}     # Pc1
        assert by_sub["BillingInfo"].policies == {acp2, acp6}           # Pc2
        assert by_sub["Medication"].policies == {acp3, acp4, acp6}      # Pc3
        assert by_sub["PhysicalExams"].policies == {acp3, acp4}         # Pc4
        assert by_sub["LabRecords"].policies == {acp3, acp4, acp5}      # Pc5
        assert by_sub["_rest"].is_empty                                 # Pc6

    def test_pc4_dominates_pc3_and_pc5(self):
        """{acp3, acp4} is a subset of {acp3, acp4, acp6} and of
        {acp3, acp4, acp5}: anyone reading PhysicalExams can read
        Medication and LabRecords (Section VIII-A)."""
        acps = build_ehr_policies()
        subdocs = list(EHR_SUBDOCUMENT_TAGS)
        by_sub = build_configurations(subdocs, acps)
        pc3 = by_sub["Medication"]
        pc4 = by_sub["PhysicalExams"]
        pc5 = by_sub["LabRecords"]
        assert pc4.dominates(pc3)
        assert pc4.dominates(pc5)
        assert not pc3.dominates(pc4)

    def test_shared_configuration_instances_equal(self):
        """PhysicalExams and Plan share Pc4 (same key in the paper)."""
        acps = build_ehr_policies()
        by_sub = build_configurations(list(EHR_SUBDOCUMENT_TAGS), acps)
        assert by_sub["PhysicalExams"] == by_sub["Plan"]
