"""Tests for the attribute-value encoding."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import InvalidParameterError
from repro.policy.encoding import MAX_STRING_BITS, encode_value


class TestIntegers:
    @given(st.integers(0, 2**64))
    def test_identity_on_non_negative(self, n):
        assert encode_value(n) == n

    def test_negative_rejected(self):
        with pytest.raises(InvalidParameterError):
            encode_value(-1)

    def test_bool_rejected(self):
        with pytest.raises(InvalidParameterError):
            encode_value(True)


class TestStrings:
    def test_deterministic(self):
        assert encode_value("nurse") == encode_value("nurse")

    def test_distinct(self):
        assert encode_value("nurse") != encode_value("doctor")

    def test_range(self):
        assert 0 <= encode_value("nurse") < (1 << MAX_STRING_BITS)

    @given(st.text(max_size=50), st.text(max_size=50))
    def test_injective_whp(self, a, b):
        if a != b:
            assert encode_value(a) != encode_value(b)

    def test_unicode(self):
        assert encode_value("médecin") != encode_value("medecin")

    def test_string_int_never_collide_with_small_ints(self):
        """Hash encodings land in [0, 2^128); honest integer attributes are
        far smaller, so type confusion cannot produce accidental equality
        (probability ~2^-64 checked by construction here)."""
        assert encode_value("5") != 5


class TestOther:
    def test_unsupported_type(self):
        with pytest.raises(InvalidParameterError):
            encode_value(3.14)
        with pytest.raises(InvalidParameterError):
            encode_value(None)
