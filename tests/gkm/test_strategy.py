"""The publish-path strategy layer: caching, invalidation, dispatch."""

import pytest

from repro.errors import InvalidParameterError, SerializationError
from repro.gkm.acv import FAST_FIELD, AcvBgkm, AcvHeader
from repro.gkm.buckets import BucketedHeader
from repro.gkm.strategy import (
    AcvBuildCache,
    BucketedGkmStrategy,
    DenseGkmStrategy,
    build_strategy,
    decode_keying_header,
)
from repro.workloads.generator import make_css_rows


@pytest.fixture
def core():
    return AcvBgkm(FAST_FIELD)


def test_decode_keying_header_dispatch(core, rng):
    rows = make_css_rows(4, rng=rng)
    _, dense = core.generate(rows, rng=rng)
    assert isinstance(decode_keying_header(dense.to_bytes()), AcvHeader)
    split = BucketedGkmStrategy(core, bucket_size=2)
    _, header = split.build(rows, capacity=None, slack=0, rng=rng)
    assert isinstance(decode_keying_header(header.to_bytes()), BucketedHeader)
    with pytest.raises(SerializationError, match="magic"):
        decode_keying_header(b"????rest")
    with pytest.raises(SerializationError):
        decode_keying_header(b"")


def test_build_strategy_validates(core):
    assert build_strategy("dense", core).name == "dense"
    assert build_strategy("bucketed", core).name == "bucketed"
    with pytest.raises(InvalidParameterError):
        build_strategy("sparse", core)
    with pytest.raises(InvalidParameterError):
        BucketedGkmStrategy(core, bucket_size=0)


def test_auto_bucket_size_policy(core):
    strategy = BucketedGkmStrategy(core)  # auto = ceil(sqrt(m))
    assert strategy.resolve_bucket_size(0) == 1
    assert strategy.resolve_bucket_size(1) == 1
    assert strategy.resolve_bucket_size(4) == 2
    assert strategy.resolve_bucket_size(5) == 3
    assert strategy.resolve_bucket_size(64) == 8
    assert strategy.resolve_bucket_size(65) == 9
    fixed = BucketedGkmStrategy(core, bucket_size=7)
    assert fixed.resolve_bucket_size(1000) == 7


def test_cache_hit_skips_elimination_and_stays_correct(core, rng):
    """A hit returns fresh keys over the cached (zs, Y): every row still
    derives, consecutive keys differ, zs/Y are reused verbatim."""
    cache = AcvBuildCache()
    strategy = DenseGkmStrategy(core, cache)
    rows = make_css_rows(6, rng=rng)
    key1, header1 = strategy.build(rows, capacity=None, slack=0, rng=rng)
    key2, header2 = strategy.build(rows, capacity=None, slack=0, rng=rng)
    assert cache.stats()["misses"] == 1
    assert cache.stats()["hits"] == 1
    assert key1 != key2
    assert header1.zs == header2.zs  # nonces reused within the epoch
    # Both headers carry the same Y: X2 - X1 = (K2 - K1) e0.
    assert header1.x[1:] == header2.x[1:]
    for row in rows:
        assert core.derive(header1, row) == key1
        assert core.derive(header2, row) == key2


def test_cache_misses_on_different_rows_or_capacity(core, rng):
    cache = AcvBuildCache()
    strategy = DenseGkmStrategy(core, cache)
    rows = make_css_rows(4, rng=rng)
    strategy.build(rows, capacity=None, slack=0, rng=rng)
    strategy.build(rows[:-1], capacity=None, slack=0, rng=rng)
    strategy.build(rows, capacity=16, slack=0, rng=rng)
    assert cache.stats()["misses"] == 3
    assert cache.stats()["hits"] == 0


def test_cache_invalidation_drops_entries(core, rng):
    cache = AcvBuildCache()
    strategy = DenseGkmStrategy(core, cache)
    rows = make_css_rows(4, rng=rng)
    _, header1 = strategy.build(rows, capacity=None, slack=0, rng=rng)
    cache.invalidate()  # the publisher's join/revoke hook
    _, header2 = strategy.build(rows, capacity=None, slack=0, rng=rng)
    assert cache.stats() == {
        "hits": 0,
        "misses": 2,
        "extends": 0,
        "epoch": 1,
        "entries": 1,
    }
    assert header1.zs != header2.zs  # fresh nonces in the new epoch


def test_cache_bound_evicts_oldest(core, rng):
    cache = AcvBuildCache(max_entries=2)
    strategy = DenseGkmStrategy(core, cache)
    row_sets = [make_css_rows(3, rng=rng) for _ in range(3)]
    for rows in row_sets:
        strategy.build(rows, capacity=None, slack=0, rng=rng)
    assert cache.stats()["entries"] == 2
    strategy.build(row_sets[0], capacity=None, slack=0, rng=rng)  # evicted
    assert cache.stats()["misses"] == 4


def test_cache_true_lru_keeps_hot_entry_under_cycling(core, rng):
    """Regression: eviction used to be plain insertion order, so a hot
    configuration that kept hitting was also the first evicted once a
    cycle of cold ones overflowed the cache.  A hit must refresh recency."""
    cache = AcvBuildCache(max_entries=2)
    strategy = DenseGkmStrategy(core, cache)
    hot = make_css_rows(3, rng=rng)
    cold1 = make_css_rows(3, rng=rng)
    cold2 = make_css_rows(3, rng=rng)
    strategy.build(hot, capacity=None, slack=0, rng=rng)  # store hot
    strategy.build(cold1, capacity=None, slack=0, rng=rng)  # store cold1
    strategy.build(hot, capacity=None, slack=0, rng=rng)  # HIT refreshes hot
    strategy.build(cold2, capacity=None, slack=0, rng=rng)  # evicts cold1
    assert cache.stats()["hits"] == 1
    strategy.build(hot, capacity=None, slack=0, rng=rng)  # must still hit
    assert cache.stats()["hits"] == 2
    strategy.build(cold1, capacity=None, slack=0, rng=rng)  # was evicted
    assert cache.stats()["misses"] == 4


def test_join_delta_extends_instead_of_resolving(core, rng):
    """After note_join, a strict row superset extends the carried
    factorization: old nonces are reused (plus fresh ones for the added
    capacity), every old and new row derives, outsiders stay locked out."""
    cache = AcvBuildCache()
    strategy = DenseGkmStrategy(core, cache)
    rows = make_css_rows(5, rng=rng)
    key1, header1 = strategy.build(rows, capacity=None, slack=0, rng=rng)
    cache.note_join()
    assert cache.stats()["epoch"] == 1
    assert cache.stats()["entries"] == 1  # entries survive a pure join
    joined = rows + make_css_rows(1, rng=rng)
    key2, header2 = strategy.build(joined, capacity=None, slack=0, rng=rng)
    assert cache.stats()["extends"] == 1
    assert cache.stats()["misses"] == 2  # neither build exact-hit
    assert header2.zs[: len(header1.zs)] == header1.zs  # join reuses nonces
    assert header2.capacity == len(joined)
    assert key1 != key2
    for row in joined:
        assert core.derive(header2, row) == key2
    assert core.derive(header2, (b"outsider",)) != key2
    # The extended state was re-stored: the same configuration now hits.
    _, header3 = strategy.build(joined, capacity=None, slack=0, rng=rng)
    assert cache.stats()["hits"] == 1
    assert header3.zs == header2.zs


def test_bucketed_join_delta_touches_only_last_bucket(core, rng):
    """Joins append in row order, so earlier buckets exact-hit and only
    the tail bucket extends."""
    cache = AcvBuildCache()
    strategy = BucketedGkmStrategy(core, cache, bucket_size=4)
    rows = make_css_rows(6, rng=rng)
    key1, _ = strategy.build(rows, capacity=None, slack=0, rng=rng)
    cache.note_join()
    joined = rows + make_css_rows(1, rng=rng)
    key2, header2 = strategy.build(joined, capacity=None, slack=0, rng=rng)
    stats = cache.stats()
    assert stats["hits"] == 1  # bucket 1 unchanged
    assert stats["extends"] == 1  # bucket 2 grew by one row
    for index, row in enumerate(joined):
        assert core.derive(header2.buckets[index // 4], row) == key2
    assert key1 != key2


def test_revoke_invalidation_forces_full_resolve(core, rng):
    """invalidate() (the revoke/credential-replacement hook) must leave
    nothing extendable: the next build re-solves under fresh nonces."""
    cache = AcvBuildCache()
    strategy = DenseGkmStrategy(core, cache)
    rows = make_css_rows(4, rng=rng)
    _, header1 = strategy.build(rows, capacity=None, slack=0, rng=rng)
    cache.invalidate()
    remaining = rows[:-1]
    _, header2 = strategy.build(remaining, capacity=None, slack=0, rng=rng)
    assert cache.stats()["extends"] == 0
    assert set(header2.zs).isdisjoint(header1.zs)  # fresh nonces, no reuse
    revoked = rows[-1]
    assert core.derive(header2, revoked) not in {
        core.derive(header2, row) for row in remaining
    }


def test_delta_capacity_never_shrinks_published_nonces(core, rng):
    """A candidate whose capacity exceeds the new build's n_max must not
    be extended (nonces cannot be dropped); the build re-solves instead."""
    cache = AcvBuildCache()
    strategy = DenseGkmStrategy(core, cache)
    rows = make_css_rows(2, rng=rng)
    strategy.build(rows, capacity=16, slack=0, rng=rng)  # capacity 16
    cache.note_join()
    joined = rows + make_css_rows(1, rng=rng)
    key, header = strategy.build(joined, capacity=None, slack=0, rng=rng)
    assert cache.stats()["extends"] == 0  # 16 > 3: not extendable
    assert header.capacity == 3
    for row in joined:
        assert core.derive(header, row) == key


def test_bucketed_build_shares_cache_per_chunk(core, rng):
    cache = AcvBuildCache()
    strategy = BucketedGkmStrategy(core, cache, bucket_size=2)
    rows = make_css_rows(6, rng=rng)
    key1, header1 = strategy.build(rows, capacity=None, slack=0, rng=rng)
    key2, header2 = strategy.build(rows, capacity=None, slack=0, rng=rng)
    assert cache.stats() == {
        "hits": 3,
        "misses": 3,
        "extends": 0,
        "epoch": 0,
        "entries": 3,
    }
    assert key1 != key2
    for index, row in enumerate(rows):
        assert core.derive(header1.buckets[index // 2], row) == key1
        assert core.derive(header2.buckets[index // 2], row) == key2


def test_repeated_chunk_never_duplicates_a_bucket(core, rng):
    """Two policies sharing a condition-key list repeat each member row,
    and aligned chunk boundaries then repeat whole chunks.  The repeat
    must solve fresh instead of rebinding the twin's cache entry, or the
    two buckets come out byte-identical and the header's own canonical
    decoding (duplicate-bucket refusal) rejects the broadcast."""
    cache = AcvBuildCache()
    strategy = BucketedGkmStrategy(core, cache, bucket_size=2)
    member_rows = make_css_rows(2, rng=rng)
    rows = member_rows + member_rows
    for _ in range(2):  # second build re-hits the stored entries
        key, header = strategy.build(rows, capacity=None, slack=0, rng=rng)
        payloads = [bucket.to_bytes() for bucket in header.buckets]
        assert len(set(payloads)) == len(payloads)
        assert BucketedHeader.from_bytes(header.to_bytes()) == header
        for row in member_rows:
            assert all(core.derive(b, row) == key for b in header.buckets)


def test_bucketed_empty_rows(core, rng):
    strategy = BucketedGkmStrategy(core, bucket_size=4)
    key, header = strategy.build([], capacity=None, slack=0, rng=rng)
    assert len(header.buckets) == 1
    assert core.derive(header.buckets[0], (b"outsider",)) != key


def test_capacity_slack_applies_per_bucket(core, rng):
    strategy = BucketedGkmStrategy(core, bucket_size=2)
    rows = make_css_rows(4, rng=rng)
    _, header = strategy.build(rows, capacity=None, slack=3, rng=rng)
    assert [b.capacity for b in header.buckets] == [5, 5]
