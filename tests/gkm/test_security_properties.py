"""The security requirements of Section I / VI-B as executable tests."""


import pytest

from repro.gkm.acv import FAST_FIELD, AcvBgkm
from repro.mathx.linalg import vec_dot


@pytest.fixture
def gkm():
    return AcvBgkm(FAST_FIELD)


def make_rows(rng, count, arity=2):
    return [
        tuple(bytes(rng.randrange(256) for _ in range(8)) for _ in range(arity))
        for _ in range(count)
    ]


class TestForwardSecrecy:
    """A revoked subscriber must not derive post-revocation keys."""

    def test_revoked_row_fails_after_rekey(self, gkm, rng):
        rows = make_rows(rng, 5)
        key1, header1 = gkm.generate(rows, rng=rng)
        leaving = rows.pop(2)
        assert gkm.derive(header1, leaving) == key1  # was a member
        key2, header2 = gkm.generate(rows, rng=rng)
        assert gkm.derive(header2, leaving) != key2
        for row in rows:
            assert gkm.derive(header2, row) == key2

    def test_old_kev_useless_against_new_header(self, gkm, rng):
        rows = make_rows(rng, 4)
        key1, header1 = gkm.generate(rows, rng=rng)
        old_kev = gkm.key_extraction_vector(header1, rows[0])
        rows_without = rows[1:]
        key2, header2 = gkm.generate(rows_without, n_max=4, rng=rng)
        # Replaying the *old* KEV against the new X misses the new key.
        assert vec_dot(old_kev, header2.x, header2.q) != key2


class TestBackwardSecrecy:
    """A newly joined subscriber must not derive pre-join keys."""

    def test_new_member_fails_on_old_header(self, gkm, rng):
        rows = make_rows(rng, 4)
        key1, header1 = gkm.generate(rows, rng=rng)
        newcomer = make_rows(rng, 1)[0]
        rows.append(newcomer)
        key2, header2 = gkm.generate(rows, rng=rng)
        assert gkm.derive(header2, newcomer) == key2     # current session OK
        assert gkm.derive(header1, newcomer) != key1     # old session not


class TestCollusionResistance:
    """Colluding unqualified subscribers gain nothing (Section VI-B.2)."""

    def test_two_partial_holders_cannot_combine(self, gkm, rng):
        """Each colluder holds one CSS of a 2-condition policy -- together
        they hold both CSS values but neither's *row* (the tuple order/
        membership binds them): combining across rows fails."""
        row_a = (b"css-a1", b"css-a2")
        row_b = (b"css-b1", b"css-b2")
        key, header = gkm.generate([row_a, row_b], rng=rng)
        # Frankenstein tuples mixing the colluders' secrets:
        for frank in [
            (b"css-a1", b"css-b2"),
            (b"css-b1", b"css-a2"),
            (b"css-a2", b"css-a1"),  # wrong order
        ]:
            assert gkm.derive(header, frank) != key

    def test_revoked_members_cannot_pool_old_knowledge(self, gkm, rng):
        rows = make_rows(rng, 5)
        key1, header1 = gkm.generate(rows, rng=rng)
        revoked = [rows[0], rows[1]]
        survivors = rows[2:]
        key2, header2 = gkm.generate(survivors, rng=rng)
        # Both revoked rows, separately and "combined" (any of their KEVs
        # or sums thereof), miss the new key.
        kev0 = gkm.key_extraction_vector(header2, revoked[0])
        kev1 = gkm.key_extraction_vector(header2, revoked[1])
        q = header2.q
        combined = tuple((a + b) % q for a, b in zip(kev0, kev1))
        for candidate in (kev0, kev1, combined):
            assert vec_dot(candidate, header2.x, q) != key2


class TestKeyIndependenceAndIndistinguishability:
    def test_keys_of_different_sessions_independent(self, gkm, rng):
        """Same rows, two sessions: knowing key1 says nothing about key2
        (they are drawn independently and the headers differ)."""
        rows = make_rows(rng, 3)
        key1, header1 = gkm.generate(rows, rng=rng)
        key2, header2 = gkm.generate(rows, rng=rng)
        assert key1 != key2
        assert header1.x != header2.x

    def test_any_key_consistent_with_public_x(self, gkm, rng):
        """Key indistinguishability (Section VI-B.2): for ANY candidate key
        K' there exists a KEV nu with nu . X = K', so the public values
        rule nothing out."""
        rows = make_rows(rng, 3)
        key, header = gkm.generate(rows, rng=rng)
        q = header.q
        x = header.x
        # Find a coordinate j >= 1 with x_j != 0 and solve for nu_j.
        j = next(i for i in range(1, len(x)) if x[i] != 0)
        for k_prime in (1, 2, key, q - 1):
            nu = [1] + [0] * (len(x) - 1)
            nu[j] = ((k_prime - x[0]) * pow(x[j], q - 2, q)) % q
            assert vec_dot(nu, x, q) == k_prime

    def test_derived_values_for_outsiders_spread(self, gkm, rng):
        """Outsider derivations behave like uniform field elements: no two
        wrong CSS tuples land on the same value (whp), and none on K."""
        rows = make_rows(rng, 3)
        key, header = gkm.generate(rows, rng=rng)
        outsider_values = {
            gkm.derive(header, (bytes([i]) * 8,)) for i in range(32)
        }
        assert key not in outsider_values
        assert len(outsider_values) == 32


class TestMinimalTrust:
    def test_only_publisher_holds_secrets(self, gkm, rng):
        """Structural: everything a subscriber needs is (header, own CSS);
        the header alone is public and reveals no key."""
        rows = make_rows(rng, 3)
        key, header = gkm.generate(rows, rng=rng)
        public_only_guess = gkm.derive(header, (b"",))
        assert public_only_guess != key
