"""Tests for the bucketized ACV scheme (Section VIII-C)."""


import pytest

from repro.errors import InvalidParameterError, KeyDerivationError, SerializationError
from repro.gkm.acv import FAST_FIELD
from repro.gkm.buckets import BucketedAcvBgkm, BucketedHeader


def make_rows(rng, count):
    return [(bytes(rng.randrange(256) for _ in range(8)),) for _ in range(count)]


@pytest.fixture
def bucketed():
    return BucketedAcvBgkm(bucket_size=4, field=FAST_FIELD)


class TestGeneration:
    def test_same_key_all_buckets(self, bucketed, rng):
        rows = make_rows(rng, 11)
        key, header = bucketed.generate(rows, rng=rng)
        assert len(header.buckets) == 3  # 4 + 4 + 3
        for i, row in enumerate(rows):
            assert bucketed.derive(header, row, bucket=i // 4) == key

    def test_single_bucket_when_small(self, bucketed, rng):
        rows = make_rows(rng, 3)
        key, header = bucketed.generate(rows, rng=rng)
        assert len(header.buckets) == 1
        assert bucketed.derive(header, rows[0], bucket=0) == key

    def test_empty_rows(self, bucketed, rng):
        key, header = bucketed.generate([], rng=rng)
        assert len(header.buckets) == 1
        assert bucketed.derive(header, (b"x",), bucket=0) != key

    def test_wrong_bucket_wrong_key(self, bucketed, rng):
        rows = make_rows(rng, 8)
        key, header = bucketed.generate(rows, rng=rng)
        assert bucketed.derive(header, rows[0], bucket=1) != key

    def test_bucket_index_validation(self, bucketed, rng):
        rows = make_rows(rng, 4)
        _, header = bucketed.generate(rows, rng=rng)
        with pytest.raises(KeyDerivationError):
            bucketed.derive(header, rows[0], bucket=5)

    def test_derive_candidates(self, bucketed, rng):
        rows = make_rows(rng, 8)
        key, header = bucketed.generate(rows, rng=rng)
        candidates = bucketed.derive_candidates(header, rows[5])
        assert key in candidates
        assert len(candidates) == 2

    def test_bucket_size_validation(self):
        with pytest.raises(InvalidParameterError):
            BucketedAcvBgkm(bucket_size=0, field=FAST_FIELD)

    def test_generate_for_key_binds_existing_key(self, bucketed, rng):
        rows = make_rows(rng, 3)
        header = bucketed.generate_for_key(rows, key=424242, rng=rng)
        for row in rows:
            assert bucketed._core.derive(header, row) == 424242


class TestSerialization:
    def test_roundtrip(self, bucketed, rng):
        rows = make_rows(rng, 9)
        _, header = bucketed.generate(rows, rng=rng)
        assert BucketedHeader.from_bytes(header.to_bytes()) == header

    def test_bad_magic(self):
        with pytest.raises(SerializationError):
            BucketedHeader.from_bytes(b"XXXX\x00\x00\x00\x00")

    def test_size_scales_with_rows_not_cube(self, bucketed, rng):
        """Total header size stays linear in rows even when bucketed."""
        small = bucketed.generate(make_rows(rng, 4), rng=rng)[1].byte_size()
        large = bucketed.generate(make_rows(rng, 16), rng=rng)[1].byte_size()
        assert large < small * 8  # linear-ish, not cubic
