"""Section VIII-D: the marker scheme's nonce-reuse weakness vs ACV-BGKM.

The paper argues that if two documents with the same user base share the
``z`` value, then in the reviewer's scheme an attacker knowing key ``k1``
immediately computes ``k2`` from the public values
(``X1 xor X2 = (k1||m) xor (k2||m)``), while ACV-BGKM can reuse its nonces
across two *independent* ACVs safely.  Both claims are demonstrated here
against the real implementations.
"""


import pytest

from repro.gkm.acv import FAST_FIELD
from repro.gkm.buckets import BucketedAcvBgkm
from repro.gkm.marker import MarkerBgkm
from repro.errors import InvalidParameterError
from repro.mathx.linalg import vec_dot


class TestMarkerNonceReuseLeak:
    def test_known_k1_reveals_k2(self, rng):
        """The attack the paper describes, executed end to end."""
        core = MarkerBgkm(key_len=16)
        rows = [(b"shared-css",)]
        z = bytes(16)  # the reused nonce
        k1, header1 = core.generate(rows, rng=rng, z=z)
        k2, header2 = core.generate(rows, rng=rng, z=z)
        assert k1 != k2

        # Attacker view: both public headers + knowledge of k1.  No CSS.
        x1 = header1.masked[0]
        x2 = header2.masked[0]
        xor = bytes(a ^ b for a, b in zip(x1, x2))
        # (k1||m) xor (k2||m) = (k1 xor k2) || 0...: marker part cancels.
        assert xor[16:] == bytes(len(xor) - 16)
        recovered_k2 = bytes(a ^ b for a, b in zip(xor[:16], k1))
        assert recovered_k2 == k2  # full key recovery!

    def test_fresh_nonce_does_not_leak(self, rng):
        core = MarkerBgkm(key_len=16)
        rows = [(b"shared-css",)]
        k1, header1 = core.generate(rows, rng=rng)
        k2, header2 = core.generate(rows, rng=rng)
        xor = bytes(a ^ b for a, b in zip(header1.masked[0], header2.masked[0]))
        # Pads differ, so the marker region does NOT cancel.
        assert xor[16:] != bytes(len(xor) - 16)

    def test_key_length_restriction(self):
        """The paper's other criticism: key must fit under the hash output."""
        with pytest.raises(InvalidParameterError):
            MarkerBgkm(key_len=32)  # 32 + marker > 32-byte SHA-256 output


class TestAcvNonceReuseSafety:
    def test_two_keys_one_matrix_independent(self, rng):
        """ACV-BGKM's counterpart (Section VIII-D): same user base, same
        z values, two linearly independent ACVs carrying different keys.
        Knowing k1 and both public vectors does not determine k2."""
        bucketed = BucketedAcvBgkm(bucket_size=10, field=FAST_FIELD)
        rows = [(b"css-one",), (b"css-two",)]
        k1, header1 = bucketed._core.generate(rows, n_max=4, rng=rng)
        # Second key bound to the SAME rows via generate_for_key (fresh zs
        # internally, then shifted) -- emulate same-zs by deriving k2's
        # header from header1's null space directly:
        k2 = (k1 + 12345) % FAST_FIELD.p
        x2 = list(header1.x)
        x2[0] = (x2[0] - k1 + k2) % FAST_FIELD.p
        # Subscribers derive both keys from their cached KEV:
        kev = bucketed._core.key_extraction_vector(header1, rows[0])
        assert vec_dot(kev, header1.x, FAST_FIELD.p) == k1
        assert vec_dot(kev, tuple(x2), FAST_FIELD.p) == k2
        # Attacker with k1, X1, X2 but no CSS: X1 - X2 reveals only k1 - k2
        # *at coordinate 0* if Y were reused identically -- so a proper
        # deployment uses an independent Y per key.  Demonstrate the safe
        # variant: independent ACVs over the same zs.
        k3, header3 = bucketed._core.generate(rows, n_max=4, rng=rng)
        diff = [
            (a - b) % FAST_FIELD.p for a, b in zip(header1.x, header3.x)
        ]
        # The difference vector is NOT of the form (k1-k3, 0, ..., 0):
        assert any(d != 0 for d in diff[1:])

    def test_subscriber_kev_cacheable(self, rng):
        """The deployment benefit: one KEV computation serves every key
        published against the same zs (the paper's daily-broadcast case)."""
        core = BucketedAcvBgkm(bucket_size=10, field=FAST_FIELD)._core
        rows = [(b"css-one",), (b"css-two",)]
        k1, header1 = core.generate(rows, n_max=4, rng=rng)
        kev = core.key_extraction_vector(header1, rows[1])
        # Re-keying with the same zs (simulated via generate_for_key):
        bucketed = BucketedAcvBgkm(bucket_size=10, field=FAST_FIELD)
        header_b = bucketed.generate_for_key(rows, key=999, rng=rng)
        # New zs => new KEV needed; with cached zs the KEV dot-product is
        # all a subscriber recomputes.  We simply verify the cached-KEV
        # path computes correctly for its own header:
        assert vec_dot(kev, header1.x, FAST_FIELD.p) == k1
        assert bucketed._core.derive(header_b, rows[1]) == 999
