"""Differential GKM harness: alternative build paths are equivalent.

A publish-path optimisation is only safe if it is *behaviorally
invisible*: for any member set, bucket count and join/revoke history,
members derive exactly the key the baseline scheme would give them and
everyone else fails exactly as before.  This file proves it
differentially for two strategy swaps:

* **bucketed vs dense** (PR 5) -- at the core, flat-adapter (including
  ``member_state()`` checkpoint round trips) and load-engine levels;
* **incremental vs from-scratch** -- the rank-1 join maintenance: a
  cache-carried :class:`~repro.gkm.acv.AcvFactorization` extended across
  joins must produce headers with identical derivation and lockout
  behaviour to a full re-solve, across join-only and join/revoke
  interleaved scripts, dense and bucketed, cold restarts mid-sequence,
  and (end to end) the warm-churn scenario on both load drivers.
"""

import dataclasses
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import KeyDerivationError
from repro.gkm.acv import FAST_FIELD, AcvBgkm, AcvBroadcastGkm
from repro.gkm.buckets import BucketedAcvBgkm, BucketedBroadcastGkm
from repro.gkm.strategy import (
    AcvBuildCache,
    BucketedGkmStrategy,
    DenseGkmStrategy,
    build_strategy,
)
from repro.load import LoadEngine, bucketed, smoke_scenario
from repro.load.scenarios import warm_churn_scenario
from repro.workloads.generator import make_css_rows


# -- core level ---------------------------------------------------------------


@given(
    n_rows=st.integers(min_value=0, max_value=12),
    bucket_size=st.integers(min_value=1, max_value=6),
    seed=st.integers(min_value=0, max_value=2**16),
)
@settings(max_examples=40)
def test_core_members_derive_nonmembers_fail(n_rows, bucket_size, seed):
    rng = random.Random(seed)
    rows = make_css_rows(n_rows, rng=rng) if n_rows else []
    dense = AcvBgkm(FAST_FIELD)
    split = BucketedAcvBgkm(bucket_size=bucket_size, field=FAST_FIELD)
    dense_key, dense_header = dense.generate(rows, rng=rng)
    split_key, split_header = split.generate(rows, rng=rng)
    outsider = (bytes(rng.randrange(256) for _ in range(16)),)
    for index, row in enumerate(rows):
        # Every member derives its scheme's key...
        assert dense.derive(dense_header, row) == dense_key
        assert split.derive(split_header, row, bucket=index // bucket_size) == (
            split_key
        )
    # ...and a non-member CSS fails under both schemes alike.
    assert dense.derive(dense_header, outsider) != dense_key
    assert split_key not in split.derive_candidates(split_header, outsider)


@given(
    n_rows=st.integers(min_value=1, max_value=10),
    bucket_size=st.integers(min_value=0, max_value=5),
    seed=st.integers(min_value=0, max_value=2**16),
)
@settings(max_examples=25)
def test_strategy_layer_matches_core(n_rows, bucket_size, seed):
    """The publish-path strategy objects agree with the raw schemes."""
    rng = random.Random(seed)
    rows = make_css_rows(n_rows, rng=rng)
    core = AcvBgkm(FAST_FIELD)
    dense = DenseGkmStrategy(core)
    split = BucketedGkmStrategy(
        core, bucket_size=bucket_size or None
    )  # 0 -> auto
    dense_key, dense_header = dense.build(
        rows, capacity=None, slack=0, rng=random.Random(seed)
    )
    split_key, split_header = split.build(
        rows, capacity=None, slack=0, rng=random.Random(seed)
    )
    size = split.resolve_bucket_size(len(rows))
    assert len(split_header.buckets) == (len(rows) + size - 1) // size
    for index, row in enumerate(rows):
        assert core.derive(dense_header, row) == dense_key
        assert core.derive(split_header.buckets[index // size], row) == split_key


# -- flat adapters under churn ------------------------------------------------


def _secret(rng):
    return bytes(rng.randrange(256) for _ in range(16))


def _apply_ops(schemes, ops):
    """Replay a join/revoke script against every scheme identically."""
    members = {}
    counter = 0
    rng = random.Random(0xD1FF)
    for op in ops:
        if op == "join" or not members:
            member_id = "m%03d" % counter
            counter += 1
            secret = _secret(rng)
            members[member_id] = secret
            for scheme in schemes:
                scheme.join(member_id, secret)
        else:
            member_id = sorted(members)[op % len(members)]
            members.pop(member_id)
            for scheme in schemes:
                scheme.leave(member_id)
    return members


def _assert_equivalent(dense, split, members, removed, seed):
    dense_key, dense_bcast = dense.rekey(rng=random.Random(seed))
    split_key, split_bcast = split.rekey(rng=random.Random(seed))
    for secret in members.values():
        assert dense.derive(secret, dense_bcast) == dense_key
        assert split.derive(secret, split_bcast) == split_key
    for secret in removed:
        # "Fails" for the soft-failure ACV family: the derived bytes are
        # not the group key (or derivation refuses outright).
        for scheme, broadcast, key in (
            (dense, dense_bcast, dense_key),
            (split, split_bcast, split_key),
        ):
            try:
                assert scheme.derive(secret, broadcast) != key
            except KeyDerivationError:
                pass


@given(
    ops=st.lists(
        st.one_of(st.just("join"), st.integers(min_value=0, max_value=10)),
        min_size=1,
        max_size=14,
    ),
    bucket_size=st.integers(min_value=0, max_value=4),
    seed=st.integers(min_value=0, max_value=2**16),
)
@settings(max_examples=25)
def test_adapters_equivalent_under_churn(ops, bucket_size, seed):
    dense = AcvBroadcastGkm(field=FAST_FIELD)
    split = BucketedBroadcastGkm(
        bucket_size=bucket_size or None, field=FAST_FIELD
    )
    members = _apply_ops((dense, split), ops)
    all_secrets = {m: s for m, s in members.items()}
    removed = [_secret(random.Random(seed + 1))]  # a never-joined outsider
    _assert_equivalent(dense, split, all_secrets, removed, seed)
    # Revoke roughly half and rekey: the leavers must now fail too.
    leavers = sorted(members)[: len(members) // 2]
    removed_secrets = [members[m] for m in leavers]
    for member_id in leavers:
        dense.leave(member_id)
        split.leave(member_id)
        members.pop(member_id)
    if members:
        _assert_equivalent(
            dense, split, members, removed + removed_secrets, seed + 2
        )


@given(
    n_members=st.integers(min_value=1, max_value=10),
    bucket_size=st.integers(min_value=0, max_value=4),
    seed=st.integers(min_value=0, max_value=2**16),
)
@settings(max_examples=20)
def test_member_state_round_trip_equivalence(n_members, bucket_size, seed):
    """Checkpoint/restore preserves the differential equivalence, and the
    two schemes' checkpoints are byte-identical (shared base encoding)."""
    rng = random.Random(seed)
    dense = AcvBroadcastGkm(field=FAST_FIELD)
    split = BucketedBroadcastGkm(
        bucket_size=bucket_size or None, field=FAST_FIELD
    )
    members = {}
    for index in range(n_members):
        secret = _secret(rng)
        members["m%03d" % index] = secret
        dense.join("m%03d" % index, secret)
        split.join("m%03d" % index, secret)
    assert dense.member_state() == split.member_state()

    restored_dense = AcvBroadcastGkm(field=FAST_FIELD)
    restored_split = BucketedBroadcastGkm(
        bucket_size=bucket_size or None, field=FAST_FIELD
    )
    # Cross-restore: each scheme restores the OTHER's checkpoint, which
    # only works if membership state is scheme-independent.
    restored_dense.restore_members(split.member_state())
    restored_split.restore_members(dense.member_state())
    assert restored_dense.members == members
    assert restored_split.members == members
    outsider = [_secret(random.Random(seed + 7))]
    _assert_equivalent(restored_dense, restored_split, members, outsider, seed)
    # Restore-away: replace with half the membership; the removed half
    # must stop deriving after the next rekey, exactly like a revoke.
    keep = dict(sorted(members.items())[: (n_members + 1) // 2])
    gone = [members[m] for m in members if m not in keep]
    checkpoint_holder = AcvBroadcastGkm(field=FAST_FIELD)
    for member_id, secret in keep.items():
        checkpoint_holder.join(member_id, secret)
    state = checkpoint_holder.member_state()
    restored_dense.restore_members(state)
    restored_split.restore_members(state)
    _assert_equivalent(restored_dense, restored_split, keep, gone, seed + 3)


def test_adapter_capacity_is_per_bucket():
    """The capacity knob means the same thing on both adapters: padded
    columns that hide the fill (per header for dense, per bucket for
    bucketed) — members derive, the column count is the configured one,
    and an undersized capacity is a typed CapacityError."""
    from repro.errors import CapacityError

    rng = random.Random(11)
    members = {"m%d" % i: _secret(rng) for i in range(5)}
    dense = AcvBroadcastGkm(field=FAST_FIELD, capacity=8)
    split = BucketedBroadcastGkm(bucket_size=2, field=FAST_FIELD, capacity=8)
    for member_id, secret in members.items():
        dense.join(member_id, secret)
        split.join(member_id, secret)
    dense_key, dense_bcast = dense.rekey(rng=random.Random(1))
    split_key, split_bcast = split.rekey(rng=random.Random(1))
    assert dense_bcast.parts.capacity == 8
    assert all(b.capacity == 8 for b in split_bcast.parts.buckets)
    for secret in members.values():
        assert dense.derive(secret, dense_bcast) == dense_key
        assert split.derive(secret, split_bcast) == split_key

    tight = BucketedBroadcastGkm(bucket_size=4, field=FAST_FIELD, capacity=2)
    for member_id, secret in members.items():
        tight.join(member_id, secret)
    with pytest.raises(CapacityError):
        tight.rekey(rng=random.Random(2))


# -- incremental vs from-scratch ----------------------------------------------


def _assert_header_behaviour(core, header, key, rows, outsiders, bucket_size):
    """Members derive ``key``; outsiders (revoked or never joined) do not."""
    if bucket_size is None:
        for row in rows:
            assert core.derive(header, row) == key
        for row in outsiders:
            assert core.derive(header, row) != key
    else:
        for index, row in enumerate(rows):
            assert core.derive(header.buckets[index // bucket_size], row) == key
        for row in outsiders:
            assert all(core.derive(b, row) != key for b in header.buckets)


@given(
    ops=st.lists(
        st.one_of(st.just("join"), st.integers(min_value=0, max_value=10)),
        min_size=1,
        max_size=12,
    ),
    gkm=st.sampled_from(["dense", "bucketed"]),
    restart=st.booleans(),
    seed=st.integers(min_value=0, max_value=2**16),
)
@settings(max_examples=25, deadline=None)
def test_incremental_vs_scratch_membership_sweep(ops, gkm, restart, seed):
    """Random join/revoke scripts (join-only included), dense and
    bucketed: after every membership change the cache-backed build -- a
    mix of exact hits, incremental extensions and full solves -- and a
    cache-free from-scratch build must both give every current member the
    build's key and lock out every removed row and outsiders.

    ``restart`` drops the cache mid-sequence, modelling a publisher
    restart: durable CSS state survives recovery, the process-local
    factorizations do not, and parity must hold straight through.
    """
    rng = random.Random(seed)
    core = AcvBgkm(FAST_FIELD)
    bucket_size = 3 if gkm == "bucketed" else None
    cache = AcvBuildCache()
    warm = build_strategy(gkm, core, cache, bucket_size=bucket_size)
    cold = build_strategy(gkm, core, None, bucket_size=bucket_size)
    build_rng = random.Random(seed + 1)
    rows, removed = [], []
    for step, op in enumerate(ops):
        if op == "join" or not rows:
            rows.extend(make_css_rows(1, rng=rng))
            cache.note_join()
        else:
            removed.append(rows.pop(op % len(rows)))
            cache.invalidate()
        if restart and step == len(ops) // 2:
            cache = AcvBuildCache()
            warm = build_strategy(gkm, core, cache, bucket_size=bucket_size)
        warm_key, warm_header = warm.build(rows, capacity=None, slack=0, rng=build_rng)
        cold_key, cold_header = cold.build(rows, capacity=None, slack=0, rng=build_rng)
        outsiders = removed + [(b"never-joined",)]
        _assert_header_behaviour(
            core, warm_header, warm_key, rows, outsiders, bucket_size
        )
        _assert_header_behaviour(
            core, cold_header, cold_key, rows, outsiders, bucket_size
        )


def test_incremental_join_only_sequence_actually_extends():
    """Deterministic join-only ramp: beyond the cold start every dense
    build must take the delta path (no full re-solve sneaks back in), and
    behaviour stays identical to the scratch build."""
    rng = random.Random(0xACE)
    core = AcvBgkm(FAST_FIELD)
    cache = AcvBuildCache()
    warm = DenseGkmStrategy(core, cache)
    cold = DenseGkmStrategy(core)
    rows = []
    for _ in range(8):
        rows.extend(make_css_rows(1, rng=rng))
        cache.note_join()
        warm_key, warm_header = warm.build(rows, capacity=None, slack=0, rng=rng)
        cold_key, cold_header = cold.build(rows, capacity=None, slack=0, rng=rng)
        _assert_header_behaviour(
            core, warm_header, warm_key, rows, [(b"outsider",)], None
        )
        _assert_header_behaviour(
            core, cold_header, cold_key, rows, [(b"outsider",)], None
        )
    assert cache.stats()["extends"] == 7  # every build after the first


@given(
    initial=st.integers(min_value=0, max_value=6),
    joins=st.integers(min_value=1, max_value=5),
    extra_capacity=st.integers(min_value=0, max_value=3),
    seed=st.integers(min_value=0, max_value=2**16),
)
@settings(max_examples=25)
def test_extended_factorization_annihilates_rebuilt_matrix(
    initial, joins, extra_capacity, seed
):
    """Property: after staged extensions, the carried null-space basis
    equals (element for element) the basis of the fully rebuilt matrix
    and annihilates every row of it."""
    rng = random.Random(seed)
    core = AcvBgkm(FAST_FIELD)
    rows = make_css_rows(initial, rng=rng) if initial else []
    _, _, fact = core.generate_with_factorization(
        rows, n_max=initial + 1, rng=rng
    )
    first, second = joins // 2, joins - joins // 2
    if first:
        fact.extend(make_css_rows(first, rng=rng), added_capacity=first, rng=rng)
    fact.extend(
        make_css_rows(second, rng=rng),
        added_capacity=second - 1 + extra_capacity,
        rng=rng,
    )
    rebuilt = core.build_matrix(fact.rows, fact.zs)
    basis = fact.null_basis()
    assert basis == rebuilt.null_space()
    for vector in basis:
        assert all(x == 0 for x in rebuilt.mat_vec(vector))


def test_extension_parity_on_the_paper_field():
    """The 80-bit paper field takes the pure-Python kernels end to end:
    one staged extension, derivation + lockout + annihilation parity."""
    from repro.gkm.acv import PAPER_FIELD

    rng = random.Random(0x80B17)
    core = AcvBgkm(PAPER_FIELD)
    rows = make_css_rows(4, rng=rng)
    key, header, fact = core.generate_with_factorization(rows, n_max=4, rng=rng)
    for row in rows:
        assert core.derive(header, row) == key
    joined = make_css_rows(2, rng=rng)
    fact.extend(joined, added_capacity=2, rng=rng)
    key2, header2 = core.rekey_from_factorization(fact, rng=rng)
    for row in rows + joined:
        assert core.derive(header2, row) == key2
    assert core.derive(header2, (b"outsider",)) != key2
    rebuilt = core.build_matrix(fact.rows, fact.zs)
    assert fact.null_basis() == rebuilt.null_space()


# -- end to end through the load engine --------------------------------------


def _delivered_plaintexts(scenario, driver="memory"):
    """{user: {document: {segment: plaintext}}} after a full scenario run."""
    with LoadEngine(scenario, driver=driver) as engine:
        engine.run()
        return {
            member.user: {
                name: dict(plaintexts)
                for name, plaintexts in member.client.documents.items()
            }
            for member in engine.members.values()
            if member.client is not None
        }


def test_smoke_scenario_differential_memory():
    """Dense vs bucketed smoke run: byte-identical delivered plaintexts."""
    dense = _delivered_plaintexts(smoke_scenario())
    split = _delivered_plaintexts(bucketed(smoke_scenario()))
    assert dense.keys() == split.keys()
    assert dense == split


@pytest.mark.slow
def test_smoke_scenario_differential_both_drivers():
    """The full 2x2: {dense, bucketed} x {memory, tcp} all agree."""
    runs = {
        (gkm, driver): _delivered_plaintexts(
            bucketed(smoke_scenario()) if gkm == "bucketed" else smoke_scenario(),
            driver=driver,
        )
        for gkm in ("dense", "bucketed")
        for driver in ("memory", "tcp")
    }
    reference = runs[("dense", "memory")]
    assert reference  # the population actually decrypted something
    for key, plaintexts in runs.items():
        assert plaintexts == reference, "run %r diverged" % (key,)


def _scratch(scenario):
    """The same scenario with the ACV build cache disabled: every publish
    re-solves from scratch -- the incremental path's baseline."""
    return dataclasses.replace(
        scenario, name="%s-scratch" % scenario.name, acv_cache=False
    ).validate()


def _warm_churn_run(scenario, driver="memory"):
    """(plaintexts, per-publisher cache stats) for one warm-churn run."""
    with LoadEngine(scenario, driver=driver) as engine:
        engine.run()
        plaintexts = {
            member.user: {
                name: dict(texts)
                for name, texts in member.client.documents.items()
            }
            for member in engine.members.values()
            if member.client is not None
        }
        stats = {
            name: service.publisher.acv_cache_stats()
            for name, service in engine.services.items()
        }
        return plaintexts, stats


def test_warm_churn_incremental_vs_scratch_memory():
    """The warm-churn scenario under incremental maintenance vs full
    re-solves: identical delivered plaintexts (the engine has already
    asserted lockout and derivation invariants inside both runs), and the
    incremental run really took the delta path."""
    warm_docs, warm_stats = _warm_churn_run(warm_churn_scenario())
    cold_docs, cold_stats = _warm_churn_run(_scratch(warm_churn_scenario()))
    assert warm_docs  # the population decrypted something
    assert warm_docs == cold_docs
    for name, stats in warm_stats.items():
        assert stats["extends"] > 0, "publisher %s never extended" % name
    for stats in cold_stats.values():
        assert stats == {
            "hits": 0,
            "misses": 0,
            "extends": 0,
            "epoch": 0,
            "entries": 0,
        }


@pytest.mark.slow
def test_warm_churn_incremental_vs_scratch_both_drivers():
    """The full 2x2: {incremental, scratch} x {memory, tcp} deliver
    identical plaintexts -- the acceptance sweep for the join-delta path
    on both load drivers."""
    runs = {}
    for label, factory in (
        ("incremental", warm_churn_scenario),
        ("scratch", lambda: _scratch(warm_churn_scenario())),
    ):
        for driver in ("memory", "tcp"):
            docs, stats = _warm_churn_run(factory(), driver=driver)
            if label == "incremental":
                assert any(s["extends"] > 0 for s in stats.values())
            runs[(label, driver)] = docs
    reference = runs[("incremental", "memory")]
    assert reference
    for key, plaintexts in runs.items():
        assert plaintexts == reference, "run %r diverged" % (key,)


@pytest.mark.slow
def test_large_population_core_differential():
    """The nightly N=256 sweep: every member of a large population derives
    the shared key from its bucket; a revoked batch fails everywhere."""
    rng = random.Random(0x256)
    rows = make_css_rows(256, rng=rng)
    dense = AcvBgkm(FAST_FIELD)
    split = BucketedAcvBgkm(bucket_size=16, field=FAST_FIELD)
    dense_key, dense_header = dense.generate(rows, rng=rng)
    split_key, split_header = split.generate(rows, rng=rng)
    for index, row in enumerate(rows):
        assert dense.derive(dense_header, row) == dense_key
        assert split.derive(split_header, row, bucket=index // 16) == split_key
    # Revoke a batch: regenerate over the survivors only.
    survivors = rows[32:]
    dense_key2, dense_header2 = dense.generate(survivors, rng=rng)
    split_key2, split_header2 = split.generate(survivors, rng=rng)
    for index, row in enumerate(survivors):
        assert dense.derive(dense_header2, row) == dense_key2
        assert split.derive(split_header2, row, bucket=index // 16) == split_key2
    for row in rows[:32]:
        assert dense.derive(dense_header2, row) != dense_key2
        assert split_key2 not in split.derive_candidates(split_header2, row)
