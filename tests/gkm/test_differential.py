"""Differential GKM harness: dense and bucketed ACV-BGKM are equivalent.

Wiring :class:`~repro.gkm.buckets.BucketedAcvBgkm` into the live publish
path is only safe if bucketing is *behaviorally invisible*: for any
member set, bucket count and join/revoke history, members derive exactly
the key the dense scheme would give them and everyone else fails exactly
as before.  This file proves it differentially, at three levels:

* **core** -- random CSS rows under :class:`AcvBgkm` vs
  :class:`BucketedAcvBgkm` at every bucket size;
* **flat adapters** -- :class:`AcvBroadcastGkm` vs
  :class:`BucketedBroadcastGkm` driven through identical random
  join/revoke sequences, including ``member_state()`` /
  ``restore_members()`` checkpoint round trips;
* **end to end** -- the load-engine smoke scenario run under both
  publish-path strategies (and, in the slow tier, both drivers),
  asserting byte-identical delivered plaintexts.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import KeyDerivationError
from repro.gkm.acv import FAST_FIELD, AcvBgkm, AcvBroadcastGkm
from repro.gkm.buckets import BucketedAcvBgkm, BucketedBroadcastGkm
from repro.gkm.strategy import BucketedGkmStrategy, DenseGkmStrategy
from repro.load import LoadEngine, bucketed, smoke_scenario
from repro.workloads.generator import make_css_rows


# -- core level ---------------------------------------------------------------


@given(
    n_rows=st.integers(min_value=0, max_value=12),
    bucket_size=st.integers(min_value=1, max_value=6),
    seed=st.integers(min_value=0, max_value=2**16),
)
@settings(max_examples=40)
def test_core_members_derive_nonmembers_fail(n_rows, bucket_size, seed):
    rng = random.Random(seed)
    rows = make_css_rows(n_rows, rng=rng) if n_rows else []
    dense = AcvBgkm(FAST_FIELD)
    split = BucketedAcvBgkm(bucket_size=bucket_size, field=FAST_FIELD)
    dense_key, dense_header = dense.generate(rows, rng=rng)
    split_key, split_header = split.generate(rows, rng=rng)
    outsider = (bytes(rng.randrange(256) for _ in range(16)),)
    for index, row in enumerate(rows):
        # Every member derives its scheme's key...
        assert dense.derive(dense_header, row) == dense_key
        assert split.derive(split_header, row, bucket=index // bucket_size) == (
            split_key
        )
    # ...and a non-member CSS fails under both schemes alike.
    assert dense.derive(dense_header, outsider) != dense_key
    assert split_key not in split.derive_candidates(split_header, outsider)


@given(
    n_rows=st.integers(min_value=1, max_value=10),
    bucket_size=st.integers(min_value=0, max_value=5),
    seed=st.integers(min_value=0, max_value=2**16),
)
@settings(max_examples=25)
def test_strategy_layer_matches_core(n_rows, bucket_size, seed):
    """The publish-path strategy objects agree with the raw schemes."""
    rng = random.Random(seed)
    rows = make_css_rows(n_rows, rng=rng)
    core = AcvBgkm(FAST_FIELD)
    dense = DenseGkmStrategy(core)
    split = BucketedGkmStrategy(
        core, bucket_size=bucket_size or None
    )  # 0 -> auto
    dense_key, dense_header = dense.build(
        rows, capacity=None, slack=0, rng=random.Random(seed)
    )
    split_key, split_header = split.build(
        rows, capacity=None, slack=0, rng=random.Random(seed)
    )
    size = split.resolve_bucket_size(len(rows))
    assert len(split_header.buckets) == (len(rows) + size - 1) // size
    for index, row in enumerate(rows):
        assert core.derive(dense_header, row) == dense_key
        assert core.derive(split_header.buckets[index // size], row) == split_key


# -- flat adapters under churn ------------------------------------------------


def _secret(rng):
    return bytes(rng.randrange(256) for _ in range(16))


def _apply_ops(schemes, ops):
    """Replay a join/revoke script against every scheme identically."""
    members = {}
    counter = 0
    rng = random.Random(0xD1FF)
    for op in ops:
        if op == "join" or not members:
            member_id = "m%03d" % counter
            counter += 1
            secret = _secret(rng)
            members[member_id] = secret
            for scheme in schemes:
                scheme.join(member_id, secret)
        else:
            member_id = sorted(members)[op % len(members)]
            members.pop(member_id)
            for scheme in schemes:
                scheme.leave(member_id)
    return members


def _assert_equivalent(dense, split, members, removed, seed):
    dense_key, dense_bcast = dense.rekey(rng=random.Random(seed))
    split_key, split_bcast = split.rekey(rng=random.Random(seed))
    for secret in members.values():
        assert dense.derive(secret, dense_bcast) == dense_key
        assert split.derive(secret, split_bcast) == split_key
    for secret in removed:
        # "Fails" for the soft-failure ACV family: the derived bytes are
        # not the group key (or derivation refuses outright).
        for scheme, broadcast, key in (
            (dense, dense_bcast, dense_key),
            (split, split_bcast, split_key),
        ):
            try:
                assert scheme.derive(secret, broadcast) != key
            except KeyDerivationError:
                pass


@given(
    ops=st.lists(
        st.one_of(st.just("join"), st.integers(min_value=0, max_value=10)),
        min_size=1,
        max_size=14,
    ),
    bucket_size=st.integers(min_value=0, max_value=4),
    seed=st.integers(min_value=0, max_value=2**16),
)
@settings(max_examples=25)
def test_adapters_equivalent_under_churn(ops, bucket_size, seed):
    dense = AcvBroadcastGkm(field=FAST_FIELD)
    split = BucketedBroadcastGkm(
        bucket_size=bucket_size or None, field=FAST_FIELD
    )
    members = _apply_ops((dense, split), ops)
    all_secrets = {m: s for m, s in members.items()}
    removed = [_secret(random.Random(seed + 1))]  # a never-joined outsider
    _assert_equivalent(dense, split, all_secrets, removed, seed)
    # Revoke roughly half and rekey: the leavers must now fail too.
    leavers = sorted(members)[: len(members) // 2]
    removed_secrets = [members[m] for m in leavers]
    for member_id in leavers:
        dense.leave(member_id)
        split.leave(member_id)
        members.pop(member_id)
    if members:
        _assert_equivalent(
            dense, split, members, removed + removed_secrets, seed + 2
        )


@given(
    n_members=st.integers(min_value=1, max_value=10),
    bucket_size=st.integers(min_value=0, max_value=4),
    seed=st.integers(min_value=0, max_value=2**16),
)
@settings(max_examples=20)
def test_member_state_round_trip_equivalence(n_members, bucket_size, seed):
    """Checkpoint/restore preserves the differential equivalence, and the
    two schemes' checkpoints are byte-identical (shared base encoding)."""
    rng = random.Random(seed)
    dense = AcvBroadcastGkm(field=FAST_FIELD)
    split = BucketedBroadcastGkm(
        bucket_size=bucket_size or None, field=FAST_FIELD
    )
    members = {}
    for index in range(n_members):
        secret = _secret(rng)
        members["m%03d" % index] = secret
        dense.join("m%03d" % index, secret)
        split.join("m%03d" % index, secret)
    assert dense.member_state() == split.member_state()

    restored_dense = AcvBroadcastGkm(field=FAST_FIELD)
    restored_split = BucketedBroadcastGkm(
        bucket_size=bucket_size or None, field=FAST_FIELD
    )
    # Cross-restore: each scheme restores the OTHER's checkpoint, which
    # only works if membership state is scheme-independent.
    restored_dense.restore_members(split.member_state())
    restored_split.restore_members(dense.member_state())
    assert restored_dense.members == members
    assert restored_split.members == members
    outsider = [_secret(random.Random(seed + 7))]
    _assert_equivalent(restored_dense, restored_split, members, outsider, seed)
    # Restore-away: replace with half the membership; the removed half
    # must stop deriving after the next rekey, exactly like a revoke.
    keep = dict(sorted(members.items())[: (n_members + 1) // 2])
    gone = [members[m] for m in members if m not in keep]
    checkpoint_holder = AcvBroadcastGkm(field=FAST_FIELD)
    for member_id, secret in keep.items():
        checkpoint_holder.join(member_id, secret)
    state = checkpoint_holder.member_state()
    restored_dense.restore_members(state)
    restored_split.restore_members(state)
    _assert_equivalent(restored_dense, restored_split, keep, gone, seed + 3)


def test_adapter_capacity_is_per_bucket():
    """The capacity knob means the same thing on both adapters: padded
    columns that hide the fill (per header for dense, per bucket for
    bucketed) — members derive, the column count is the configured one,
    and an undersized capacity is a typed CapacityError."""
    from repro.errors import CapacityError

    rng = random.Random(11)
    members = {"m%d" % i: _secret(rng) for i in range(5)}
    dense = AcvBroadcastGkm(field=FAST_FIELD, capacity=8)
    split = BucketedBroadcastGkm(bucket_size=2, field=FAST_FIELD, capacity=8)
    for member_id, secret in members.items():
        dense.join(member_id, secret)
        split.join(member_id, secret)
    dense_key, dense_bcast = dense.rekey(rng=random.Random(1))
    split_key, split_bcast = split.rekey(rng=random.Random(1))
    assert dense_bcast.parts.capacity == 8
    assert all(b.capacity == 8 for b in split_bcast.parts.buckets)
    for secret in members.values():
        assert dense.derive(secret, dense_bcast) == dense_key
        assert split.derive(secret, split_bcast) == split_key

    tight = BucketedBroadcastGkm(bucket_size=4, field=FAST_FIELD, capacity=2)
    for member_id, secret in members.items():
        tight.join(member_id, secret)
    with pytest.raises(CapacityError):
        tight.rekey(rng=random.Random(2))


# -- end to end through the load engine --------------------------------------


def _delivered_plaintexts(scenario, driver="memory"):
    """{user: {document: {segment: plaintext}}} after a full scenario run."""
    with LoadEngine(scenario, driver=driver) as engine:
        engine.run()
        return {
            member.user: {
                name: dict(plaintexts)
                for name, plaintexts in member.client.documents.items()
            }
            for member in engine.members.values()
            if member.client is not None
        }


def test_smoke_scenario_differential_memory():
    """Dense vs bucketed smoke run: byte-identical delivered plaintexts."""
    dense = _delivered_plaintexts(smoke_scenario())
    split = _delivered_plaintexts(bucketed(smoke_scenario()))
    assert dense.keys() == split.keys()
    assert dense == split


@pytest.mark.slow
def test_smoke_scenario_differential_both_drivers():
    """The full 2x2: {dense, bucketed} x {memory, tcp} all agree."""
    runs = {
        (gkm, driver): _delivered_plaintexts(
            bucketed(smoke_scenario()) if gkm == "bucketed" else smoke_scenario(),
            driver=driver,
        )
        for gkm in ("dense", "bucketed")
        for driver in ("memory", "tcp")
    }
    reference = runs[("dense", "memory")]
    assert reference  # the population actually decrypted something
    for key, plaintexts in runs.items():
        assert plaintexts == reference, "run %r diverged" % (key,)


@pytest.mark.slow
def test_large_population_core_differential():
    """The nightly N=256 sweep: every member of a large population derives
    the shared key from its bucket; a revoked batch fails everywhere."""
    rng = random.Random(0x256)
    rows = make_css_rows(256, rng=rng)
    dense = AcvBgkm(FAST_FIELD)
    split = BucketedAcvBgkm(bucket_size=16, field=FAST_FIELD)
    dense_key, dense_header = dense.generate(rows, rng=rng)
    split_key, split_header = split.generate(rows, rng=rng)
    for index, row in enumerate(rows):
        assert dense.derive(dense_header, row) == dense_key
        assert split.derive(split_header, row, bucket=index // 16) == split_key
    # Revoke a batch: regenerate over the survivors only.
    survivors = rows[32:]
    dense_key2, dense_header2 = dense.generate(survivors, rng=rng)
    split_key2, split_header2 = split.generate(survivors, rng=rng)
    for index, row in enumerate(survivors):
        assert dense.derive(dense_header2, row) == dense_key2
        assert split.derive(split_header2, row, bucket=index // 16) == split_key2
    for row in rows[:32]:
        assert dense.derive(dense_header2, row) != dense_key2
        assert split_key2 not in split.derive_candidates(split_header2, row)
