"""Uniform correctness/secrecy sweep over every flat BroadcastGkm scheme."""


import pytest

from repro.errors import GKMError, KeyDerivationError
from repro.gkm import (
    AcPolyGkm,
    AcvBroadcastGkm,
    FAST_FIELD,
    LkhGkm,
    MarkerBroadcastGkm,
    NaiveGkm,
    SecureLockGkm,
)

SCHEMES = [
    lambda: AcvBroadcastGkm(field=FAST_FIELD),
    MarkerBroadcastGkm,
    SecureLockGkm,
    LkhGkm,
    AcPolyGkm,
    NaiveGkm,
]
IDS = ["acv", "marker", "secure-lock", "lkh", "ac-polynomial", "naive"]


def build(factory, n, rng):
    scheme = factory()
    secrets = {}
    for i in range(n):
        secret = bytes(rng.randrange(256) for _ in range(16))
        secrets["m%d" % i] = secret
        scheme.join("m%d" % i, secret)
    return scheme, secrets


@pytest.mark.parametrize("factory", SCHEMES, ids=IDS)
class TestCommonContract:
    def test_all_members_derive(self, factory, rng):
        scheme, secrets = build(factory, 6, rng)
        key, broadcast = scheme.rekey(rng)
        assert broadcast.scheme == scheme.name
        for secret in secrets.values():
            assert scheme.derive(secret, broadcast) == key

    def test_outsider_fails(self, factory, rng):
        scheme, _ = build(factory, 4, rng)
        key, broadcast = scheme.rekey(rng)
        outsider = b"\xde\xad" * 8
        try:
            assert scheme.derive(outsider, broadcast) != key
        except KeyDerivationError:
            pass

    def test_forward_secrecy(self, factory, rng):
        scheme, secrets = build(factory, 5, rng)
        scheme.rekey(rng)
        scheme.leave("m2")
        key2, broadcast2 = scheme.rekey(rng)
        try:
            assert scheme.derive(secrets["m2"], broadcast2) != key2
        except KeyDerivationError:
            pass
        for mid, secret in secrets.items():
            if mid != "m2":
                assert scheme.derive(secret, broadcast2) == key2

    def test_backward_secrecy(self, factory, rng):
        scheme, secrets = build(factory, 4, rng)
        key1, broadcast1 = scheme.rekey(rng)
        late_secret = b"\x42" * 16
        scheme.join("late", late_secret)
        key2, broadcast2 = scheme.rekey(rng)
        assert scheme.derive(late_secret, broadcast2) == key2
        try:
            assert scheme.derive(late_secret, broadcast1) != key1
        except KeyDerivationError:
            pass

    def test_rekey_changes_key(self, factory, rng):
        scheme, _ = build(factory, 3, rng)
        key1, _ = scheme.rekey(rng)
        key2, _ = scheme.rekey(rng)
        assert key1 != key2

    def test_broadcast_sizes_accounted(self, factory, rng):
        scheme, _ = build(factory, 3, rng)
        _, broadcast = scheme.rekey(rng)
        assert broadcast.byte_size() == len(broadcast.payload) > 0

    def test_membership_bookkeeping(self, factory, rng):
        scheme, _ = build(factory, 3, rng)
        assert len(scheme) == 3
        with pytest.raises(GKMError):
            scheme.join("m0", b"dup")
        with pytest.raises(GKMError):
            scheme.leave("ghost")
        scheme.leave("m0")
        assert len(scheme) == 2

    def test_churn_sequence(self, factory, rng):
        """Join/leave storm, then everyone current still derives."""
        scheme, secrets = build(factory, 4, rng)
        scheme.rekey(rng)
        for i in range(4, 10):
            secret = bytes(rng.randrange(256) for _ in range(16))
            secrets["m%d" % i] = secret
            scheme.join("m%d" % i, secret)
        for mid in ("m1", "m5", "m7"):
            scheme.leave(mid)
            del secrets[mid]
        key, broadcast = scheme.rekey(rng)
        for mid, secret in secrets.items():
            assert scheme.derive(secret, broadcast) == key, mid


class TestSizeScaling:
    """The related-work claims: broadcast growth per scheme."""

    def _size(self, factory, n, rng):
        scheme, _ = build(factory, n, rng)
        _, broadcast = scheme.rekey(rng)
        return broadcast.byte_size()

    def test_linear_growth_schemes(self, rng):
        for factory in (MarkerBroadcastGkm, SecureLockGkm, AcPolyGkm, NaiveGkm):
            small = self._size(factory, 4, rng)
            large = self._size(factory, 16, rng)
            assert large > small * 2, factory

    @pytest.mark.slow  # n=32 LKH build: the large-N case of this suite
    def test_lkh_steady_state_is_logarithmic(self, rng):
        """With no membership change, an LKH rekey broadcasts only the root
        refresh: O(1) messages regardless of n."""
        small_scheme, _ = build(LkhGkm, 4, rng)
        large_scheme, _ = build(LkhGkm, 32, rng)
        small_scheme.rekey(rng)  # flush join messages
        large_scheme.rekey(rng)
        _, small_bc = small_scheme.rekey(rng)
        _, large_bc = large_scheme.rekey(rng)
        assert len(large_bc.parts) == len(small_bc.parts) == 2


@pytest.mark.parametrize("factory", SCHEMES, ids=IDS)
class TestMemberStateCheckpoint:
    """Every flat scheme can checkpoint/restore its membership (the hook
    the durability layer snapshots flat GKM groups through)."""

    def test_round_trip_then_rekey(self, factory, rng):
        scheme, secrets = build(factory, 5, rng)
        state = scheme.member_state()
        restored = factory()
        restored.restore_members(state)
        assert restored.members == scheme.members
        assert restored.member_state() == state
        key, broadcast = restored.rekey(rng)
        for secret in secrets.values():
            assert restored.derive(secret, broadcast) == key

    def test_restore_replaces_membership(self, factory, rng):
        scheme, secrets = build(factory, 3, rng)
        state = scheme.member_state()
        late_secret = b"\x99" * 16
        scheme.join("late", late_secret)
        scheme.restore_members(state)
        assert "late" not in scheme.members
        # Forward secrecy across restore: derived per-membership state
        # (LKH tree leaves, Secure Lock moduli) must not retain 'late'.
        key, broadcast = scheme.rekey(rng)
        try:
            assert scheme.derive(late_secret, broadcast) != key
        except KeyDerivationError:
            pass
        for secret in secrets.values():
            assert scheme.derive(secret, broadcast) == key
        scheme.join("late", late_secret)  # derived state rebuilt cleanly

    def test_hostile_checkpoints_raise_typed(self, factory, rng):
        from repro.errors import ReproError

        scheme, _ = build(factory, 3, rng)
        state = scheme.member_state()
        for mangled in (state[:-2], state + b"\x00", b"\x07" + state[1:], b""):
            fresh = factory()
            with pytest.raises(ReproError):
                fresh.restore_members(mangled)
