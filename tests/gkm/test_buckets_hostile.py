"""Hostile-input suite for ``BucketedHeader.from_bytes``.

The bucketed header now rides inside every bucketed broadcast package,
so its parser faces the same adversary as the wire codec: every declared
count/length is attacker-controlled and must be validated against the
actual payload *before* allocation, every malformed input must raise the
typed :class:`~repro.errors.SerializationError` -- never
``struct.error``/``IndexError`` -- and non-canonical encodings
(duplicate buckets, trailing bytes) are refused outright.
"""

import random
import struct

import pytest

from repro.errors import ReproError, SerializationError
from repro.gkm.acv import FAST_FIELD, AcvHeader
from repro.gkm.buckets import MAX_BUCKETS, BucketedAcvBgkm, BucketedHeader


def _make_header(rows=9, bucket_size=4, seed=0x5EED):
    rng = random.Random(seed)
    scheme = BucketedAcvBgkm(bucket_size=bucket_size, field=FAST_FIELD)
    row_data = [
        (bytes(rng.randrange(256) for _ in range(8)),) for _ in range(rows)
    ]
    _, header = scheme.generate(row_data, rng=rng)
    return header


HEADER = _make_header()
RAW = HEADER.to_bytes()


def test_round_trip_is_canonical():
    assert BucketedHeader.from_bytes(RAW) == HEADER
    assert HEADER.byte_size() == len(RAW)


def test_every_truncation_is_typed():
    for cut in range(len(RAW)):
        with pytest.raises(SerializationError):
            BucketedHeader.from_bytes(RAW[:cut])


def test_trailing_bytes_rejected():
    with pytest.raises(SerializationError, match="trailing"):
        BucketedHeader.from_bytes(RAW + b"\x00")


def test_inflated_count_vs_payload():
    # Keep the real bucket bytes but claim one more bucket than present.
    mangled = RAW[:4] + struct.pack(">I", len(HEADER.buckets) + 1) + RAW[8:]
    with pytest.raises(SerializationError):
        BucketedHeader.from_bytes(mangled)


def test_deflated_count_leaves_trailing_bytes():
    mangled = RAW[:4] + struct.pack(">I", len(HEADER.buckets) - 1) + RAW[8:]
    with pytest.raises(SerializationError, match="trailing"):
        BucketedHeader.from_bytes(mangled)


def test_zero_buckets_rejected():
    with pytest.raises(SerializationError, match="empty bucket list"):
        BucketedHeader.from_bytes(b"BKT1" + struct.pack(">I", 0))


def test_absurd_count_rejected_before_allocation():
    # A ~4-billion declaration must fail on the cap/payload check, not
    # by allocating or looping billions of times.
    for count in (MAX_BUCKETS + 1, 0xFFFFFFFF):
        raw = b"BKT1" + struct.pack(">I", count) + b"\x00" * 64
        with pytest.raises(SerializationError):
            BucketedHeader.from_bytes(raw)


def test_inflated_bucket_length_rejected():
    # First bucket claims to extend past the end of the payload.
    out = bytearray(b"BKT1" + struct.pack(">I", 1))
    out += struct.pack(">I", 1 << 30)
    out += b"\x01" * 16
    with pytest.raises(SerializationError, match="truncated bucket"):
        BucketedHeader.from_bytes(bytes(out))


def _wrap(bucket_blobs):
    out = bytearray(b"BKT1" + struct.pack(">I", len(bucket_blobs)))
    for blob in bucket_blobs:
        out += struct.pack(">I", len(blob)) + blob
    return bytes(out)


def test_duplicate_buckets_rejected():
    blob = HEADER.buckets[0].to_bytes()
    with pytest.raises(SerializationError, match="duplicate"):
        BucketedHeader.from_bytes(_wrap([blob, blob]))


def test_empty_bucket_rejected():
    # An ACV header with zero nonces (capacity 0) can only be forged; a
    # real bucket always covers at least one column.  Since the hostile
    # header hardening it is refused one layer down, at ACV parse time.
    empty = AcvHeader(q=FAST_FIELD.p, x=(1,), zs=())
    with pytest.raises(SerializationError, match="nonce"):
        BucketedHeader.from_bytes(_wrap([empty.to_bytes()]))


def test_garbage_bucket_bytes_rejected():
    with pytest.raises(SerializationError):
        BucketedHeader.from_bytes(_wrap([b"not an acv header"]))


def test_bad_magic_rejected():
    with pytest.raises(SerializationError, match="magic"):
        BucketedHeader.from_bytes(b"XKT1" + RAW[4:])


def test_every_single_byte_flip_is_typed():
    """Flips either parse to a different header or raise a library error --
    never an uncaught struct.error/IndexError/MemoryError."""
    for i in range(len(RAW)):
        mangled = RAW[:i] + bytes([RAW[i] ^ 0xFF]) + RAW[i + 1 :]
        try:
            BucketedHeader.from_bytes(mangled)
        except ReproError:
            pass


def test_random_fuzz_is_typed():
    rng = random.Random(0xF022)
    for _ in range(300):
        blob = b"BKT1" + bytes(
            rng.randrange(256) for _ in range(rng.randrange(0, 64))
        )
        try:
            BucketedHeader.from_bytes(blob)
        except ReproError:
            pass
