"""Deeper LKH tests: tree shape, member state, heavy churn."""


import pytest

from repro.errors import GKMError, KeyDerivationError
from repro.gkm.lkh import LkhGkm


def build(n, rng):
    scheme = LkhGkm()
    secrets = {}
    for i in range(n):
        secret = bytes(rng.randrange(256) for _ in range(16))
        secrets["m%d" % i] = secret
        scheme.join("m%d" % i, secret)
    return scheme, secrets


class TestTreeShape:
    def test_depth_logarithmic(self, rng):
        scheme, _ = build(32, rng)
        # A balanced-ish binary tree over 32 leaves: depth well below 32.
        assert scheme.tree_depth() <= 10

    def test_single_member(self, rng):
        scheme, secrets = build(1, rng)
        key, broadcast = scheme.rekey(rng)
        assert scheme.derive(secrets["m0"], broadcast) == key

    def test_empty_group_rekey_fails(self):
        with pytest.raises(GKMError):
            LkhGkm().rekey()

    def test_member_state_logarithmic(self, rng):
        scheme, secrets = build(16, rng)
        key, broadcast = scheme.rekey(rng)
        for mid, secret in list(secrets.items())[:4]:
            scheme.derive(secret, broadcast)
            # Path keys only: 16 bytes * O(log n) nodes.
            assert scheme.member_state_size(mid) <= 16 * 8


class TestChurn:
    def test_interleaved_join_leave_rekey(self, rng):
        scheme, secrets = build(4, rng)
        key, bc = scheme.rekey(rng)
        for mid, secret in secrets.items():
            assert scheme.derive(secret, bc) == key

        # Wave 1: two leave.
        for mid in ("m0", "m2"):
            scheme.leave(mid)
            removed = secrets.pop(mid)
        key, bc = scheme.rekey(rng)
        for mid, secret in secrets.items():
            assert scheme.derive(secret, bc) == key

        # Wave 2: three join.
        for i in (10, 11, 12):
            secret = bytes(rng.randrange(256) for _ in range(16))
            secrets["m%d" % i] = secret
            scheme.join("m%d" % i, secret)
        key, bc = scheme.rekey(rng)
        for mid, secret in secrets.items():
            assert scheme.derive(secret, bc) == key

    def test_drain_to_one(self, rng):
        scheme, secrets = build(5, rng)
        scheme.rekey(rng)
        for mid in ("m0", "m1", "m2", "m3"):
            scheme.leave(mid)
            del secrets[mid]
            key, bc = scheme.rekey(rng)
            for current, secret in secrets.items():
                assert scheme.derive(secret, bc) == key

    def test_removed_member_cannot_derive(self, rng):
        scheme, secrets = build(6, rng)
        scheme.rekey(rng)
        gone = secrets.pop("m3")
        scheme.leave("m3")
        key, bc = scheme.rekey(rng)
        with pytest.raises(KeyDerivationError):
            scheme.derive(gone, bc)

    def test_multiple_rekeys_without_churn(self, rng):
        scheme, secrets = build(4, rng)
        for _ in range(4):
            key, bc = scheme.rekey(rng)
            for secret in secrets.values():
                assert scheme.derive(secret, bc) == key
