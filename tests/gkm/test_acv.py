"""Tests for the ACV-BGKM core."""

import random
import struct

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import (
    CapacityError,
    InvalidParameterError,
    KeyDerivationError,
    SerializationError,
)
from repro.gkm.acv import FAST_FIELD, PAPER_FIELD, AcvBgkm, AcvHeader, _auto_z_bytes


@pytest.fixture
def gkm():
    return AcvBgkm(FAST_FIELD)


def make_rows(rng, count, arity=2):
    return [
        tuple(bytes(rng.randrange(256) for _ in range(8)) for _ in range(arity))
        for _ in range(count)
    ]


class TestSoundness:
    """Every qualified row derives exactly K (Section VI-B.1)."""

    def test_all_rows_derive(self, gkm, rng):
        rows = make_rows(rng, 6)
        key, header = gkm.generate(rows, n_max=10, rng=rng)
        for row in rows:
            assert gkm.derive(header, row) == key

    def test_mixed_arity_rows(self, gkm, rng):
        rows = [make_rows(rng, 1, arity)[0] for arity in (1, 2, 3, 5)]
        key, header = gkm.generate(rows, rng=rng)
        for row in rows:
            assert gkm.derive(header, row) == key

    def test_unqualified_css_does_not_derive(self, gkm, rng):
        rows = make_rows(rng, 4)
        key, header = gkm.generate(rows, rng=rng)
        assert gkm.derive(header, (b"not-a-css",)) != key

    def test_partial_css_tuple_fails(self, gkm, rng):
        """Holding only one of two CSSs in a conjunction must not help --
        this is the collusion-relevant property at the row level."""
        rows = make_rows(rng, 3, arity=2)
        key, header = gkm.generate(rows, rng=rng)
        assert gkm.derive(header, (rows[0][0],)) != key
        assert gkm.derive(header, (rows[0][0], rows[1][1])) != key

    def test_key_in_multiplicative_group(self, gkm, rng):
        key, _ = gkm.generate(make_rows(rng, 2), rng=rng)
        assert 1 <= key < gkm.field.p

    @settings(max_examples=10)
    @given(n_rows=st.integers(0, 8), slack=st.integers(0, 5), seed=st.integers(0, 99))
    def test_property_soundness(self, n_rows, slack, seed):
        rng = random.Random(seed)
        gkm = AcvBgkm(FAST_FIELD)
        rows = make_rows(rng, n_rows)
        key, header = gkm.generate(rows, n_max=max(n_rows, 1) + slack, rng=rng)
        for row in rows:
            assert gkm.derive(header, row) == key


class TestCapacityAndParameters:
    def test_capacity_violation(self, gkm, rng):
        rows = make_rows(rng, 5)
        with pytest.raises(CapacityError):
            gkm.generate(rows, n_max=4, rng=rng)

    def test_default_capacity_is_row_count(self, gkm, rng):
        rows = make_rows(rng, 5)
        _, header = gkm.generate(rows, rng=rng)
        assert header.capacity == 5

    def test_empty_rows_supported(self, gkm, rng):
        """No qualified subscriber: header exists, nobody derives."""
        key, header = gkm.generate([], n_max=3, rng=rng)
        assert gkm.derive(header, (b"anything",)) != key

    def test_auto_z_bytes_follows_paper_rule(self):
        """tau * N > 160 bits (Section V-C)."""
        for n in (1, 2, 10, 100, 1000):
            assert _auto_z_bytes(n) * 8 * n >= 160

    def test_explicit_z_bytes(self, gkm, rng):
        rows = make_rows(rng, 3)
        _, header = gkm.generate(rows, rng=rng, z_bytes=16)
        assert all(len(z) == 16 for z in header.zs)

    def test_compress_terms_validation(self):
        with pytest.raises(InvalidParameterError):
            AcvBgkm(FAST_FIELD, compress_terms=0)

    def test_works_on_80bit_paper_field(self, rng):
        gkm = AcvBgkm(PAPER_FIELD)
        rows = make_rows(rng, 4)
        key, header = gkm.generate(rows, n_max=6, rng=rng)
        assert all(gkm.derive(header, row) == key for row in rows)

    def test_fresh_keys_per_generate(self, gkm, rng):
        rows = make_rows(rng, 3)
        k1, h1 = gkm.generate(rows, rng=rng)
        k2, h2 = gkm.generate(rows, rng=rng)
        assert k1 != k2
        assert h1.zs != h2.zs

    def test_system_rng_path(self, gkm):
        rows = make_rows(random.Random(0), 2)
        key, header = gkm.generate(rows)  # secrets-based path
        assert gkm.derive(header, rows[0]) == key


class TestKevStructure:
    def test_kev_first_entry_one(self, gkm, rng):
        rows = make_rows(rng, 3)
        _, header = gkm.generate(rows, rng=rng)
        kev = gkm.key_extraction_vector(header, rows[0])
        assert kev[0] == 1
        assert len(kev) == header.capacity + 1

    def test_kev_skips_zero_coordinates(self, rng):
        gkm = AcvBgkm(FAST_FIELD, compress_terms=1)
        rows = make_rows(rng, 2)
        _, header = gkm.generate(rows, n_max=30, rng=rng)
        kev = gkm.key_extraction_vector(header, rows[0])
        for j in range(1, len(header.x)):
            if header.x[j] == 0:
                assert kev[j] == 0

    def test_export_key_deterministic(self, gkm):
        assert gkm.export_key(12345) == gkm.export_key(12345)
        assert gkm.export_key(12345) != gkm.export_key(12346)
        assert len(gkm.export_key(1, key_len=24)) == 24


class TestHeaderSerialization:
    def test_roundtrip(self, gkm, rng):
        rows = make_rows(rng, 4)
        _, header = gkm.generate(rows, n_max=8, rng=rng)
        parsed = AcvHeader.from_bytes(header.to_bytes())
        assert parsed == header

    def test_roundtrip_sparse(self, rng):
        gkm = AcvBgkm(FAST_FIELD, compress_terms=1)
        rows = make_rows(rng, 2)
        _, header = gkm.generate(rows, n_max=40, rng=rng)
        assert AcvHeader.from_bytes(header.to_bytes()) == header

    def test_roundtrip_empty_rows(self, gkm, rng):
        _, header = gkm.generate([], n_max=2, rng=rng)
        assert AcvHeader.from_bytes(header.to_bytes()) == header

    def test_bad_magic(self):
        with pytest.raises(SerializationError):
            AcvHeader.from_bytes(b"NOPE" + b"\x00" * 20)

    def test_truncated(self, gkm, rng):
        rows = make_rows(rng, 3)
        _, header = gkm.generate(rows, rng=rng)
        raw = header.to_bytes()
        with pytest.raises(SerializationError):
            AcvHeader.from_bytes(raw[: len(raw) // 2])

    def test_compression_shrinks_sparse_headers(self, rng):
        """The Figure-5 effect: fewer current subscribers => smaller ACV."""
        sparse_gkm = AcvBgkm(PAPER_FIELD, compress_terms=1)
        few_rows = make_rows(rng, 10)
        many_rows = make_rows(rng, 80)
        _, sparse_header = sparse_gkm.generate(few_rows, n_max=100, rng=rng)
        _, dense_header = sparse_gkm.generate(many_rows, n_max=100, rng=rng)
        assert sparse_header.byte_size() < dense_header.byte_size()

    def test_derivation_after_serialization(self, gkm, rng):
        rows = make_rows(rng, 3)
        key, header = gkm.generate(rows, rng=rng)
        parsed = AcvHeader.from_bytes(header.to_bytes())
        assert gkm.derive(parsed, rows[1]) == key


def _rewrite_modulus(raw: bytes, q: int) -> bytes:
    """Byte-surgically replace the modulus field of a wire header."""
    (q_len,) = struct.unpack_from(">H", raw, 4)
    q_raw = q.to_bytes(q_len, "big")
    return raw[:6] + q_raw + raw[6 + q_len :]


def _rewrite_nonce_counts(raw: bytes, n_z: int, z_len: int) -> bytes:
    """Byte-surgically replace the ``(n_z, z_len)`` fields of a wire header."""
    (q_len,) = struct.unpack_from(">H", raw, 4)
    offset = 6 + q_len
    return raw[:offset] + struct.pack(">IH", n_z, z_len) + raw[offset + 6 :]


class TestHostileHeaders:
    """Attacker-crafted broadcasts must fail typed, never with bare
    ZeroDivisionError / IndexError (regressions for the parse- and
    derive-time validation)."""

    @pytest.fixture
    def raw_header(self, gkm, rng):
        rows = make_rows(rng, 3)
        _, header = gkm.generate(rows, n_max=5, rng=rng)
        return header.to_bytes()

    @pytest.mark.parametrize("bad_q", [0, 1])
    def test_degenerate_modulus_rejected_at_parse(self, raw_header, bad_q):
        # Previously q=0 parsed fine and crashed derive() with
        # ZeroDivisionError; q=1 collapsed every key to 0.
        hostile = _rewrite_modulus(raw_header, bad_q)
        with pytest.raises(SerializationError, match="not a valid field"):
            AcvHeader.from_bytes(hostile)

    def test_zero_width_nonces_rejected_at_parse(self, raw_header):
        hostile = _rewrite_nonce_counts(raw_header, 3, 0)
        with pytest.raises(SerializationError, match="nonce"):
            AcvHeader.from_bytes(hostile)

    def test_zero_nonce_count_rejected_at_parse(self, raw_header):
        hostile = _rewrite_nonce_counts(raw_header, 0, 8)
        with pytest.raises(SerializationError, match="nonce"):
            AcvHeader.from_bytes(hostile)

    def test_short_x_fails_typed_in_kev(self, gkm):
        # len(x) must be capacity + 1; a short X used to escape as a bare
        # IndexError from key_extraction_vector's header.x[j + 1] access.
        header = AcvHeader(q=FAST_FIELD.p, x=(1,), zs=(b"aaaa", b"bbbb"))
        with pytest.raises(KeyDerivationError, match="arity"):
            gkm.key_extraction_vector(header, [b"css"])

    def test_short_x_fails_typed_in_derive(self, gkm):
        header = AcvHeader(q=FAST_FIELD.p, x=(1, 2), zs=(b"aa", b"bb", b"cc"))
        with pytest.raises(KeyDerivationError, match="arity"):
            gkm.derive(header, [b"css"])

    @pytest.mark.parametrize("bad_q", [0, 1])
    def test_degenerate_modulus_fails_typed_in_kev(self, gkm, bad_q):
        # Defense in depth for headers built in-process (bypassing
        # from_bytes), e.g. by the bucketed candidate scan.
        header = AcvHeader(q=bad_q, x=(1, 2, 3), zs=(b"aaaa", b"bbbb"))
        with pytest.raises(KeyDerivationError, match="modulus"):
            gkm.key_extraction_vector(header, [b"css"])

    def test_valid_header_still_parses_after_surgery_helpers(self, raw_header):
        # Sanity-check the byte surgery itself: rewriting the fields with
        # their *original* values must leave the header parseable.
        header = AcvHeader.from_bytes(raw_header)
        same_q = _rewrite_modulus(raw_header, header.q)
        same_z = _rewrite_nonce_counts(
            raw_header, len(header.zs), len(header.zs[0])
        )
        assert AcvHeader.from_bytes(same_q) == header
        assert AcvHeader.from_bytes(same_z) == header
