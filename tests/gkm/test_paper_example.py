"""The paper's worked example (Section V-C.2) reproduced verbatim.

With q = 17, the matrix

    A = | 1 15  3  4 |
        | 1  4 13  3 |
        | 1 12  5  6 |

has null vector Y = (4, 4, 3, 3)^T; with K4 = 11 the published vector is
X = (15, 4, 3, 3)^T and the doctor's KEV (1, 15, 3, 4) recovers
K4 = (1,15,3,4) . (15,4,3,3) = 11, while the level-58 nurse cannot build a
KEV at all.
"""

import random


from repro.mathx.field import PrimeField
from repro.mathx.linalg import Matrix, vec_dot

F17 = PrimeField(17)

A_ROWS = [
    [1, 15, 3, 4],
    [1, 4, 13, 3],
    [1, 12, 5, 6],
]
Y = (4, 4, 3, 3)
K4 = 11
X = (15, 4, 3, 3)


class TestWorkedExample:
    def test_y_is_in_null_space(self):
        matrix = Matrix(F17, A_ROWS)
        assert all(v == 0 for v in matrix.mat_vec(Y))

    def test_x_is_y_plus_key(self):
        assert tuple((y + (K4 if i == 0 else 0)) % 17 for i, y in enumerate(Y)) == X

    def test_doctor_kev_recovers_key(self):
        """(1, a_{1,1}, a_{1,2}, a_{1,3}) . X = 11 -- the paper's numbers."""
        kev = (1, 15, 3, 4)
        assert vec_dot(kev, X, 17) == K4

    def test_all_matrix_rows_are_valid_kevs(self):
        for row in A_ROWS:
            assert vec_dot(row, X, 17) == K4

    def test_solver_finds_equivalent_null_space(self):
        """Our solver's basis spans a space containing the paper's Y."""
        matrix = Matrix(F17, A_ROWS)
        basis = matrix.null_space()
        assert len(basis) == 1  # rank 3, 4 columns
        basis_vector = basis[0]
        # Y must be a scalar multiple of the basis vector.
        scale = None
        for a, b in zip(Y, basis_vector):
            if b != 0:
                scale = (a * pow(b, 15, 17)) % 17
                break
        assert scale is not None
        assert tuple((scale * b) % 17 for b in basis_vector) == Y

    def test_nurse_without_css_cannot_build_kev(self):
        """The level-58 nurse holds the CSS for 'role = nur' only; KEVs need
        the full per-policy tuple, so every candidate she can compute is a
        wrong one.  Emulated here by checking that no vector of the form
        (1, w, x, y) with entries derived from wrong-guess hashes hits K4
        except with chance ~1/17 -- structurally, the paper's point is that
        the scheme reduces her to guessing; we check guessing fails for a
        sweep of wrong rows."""
        hits = 0
        rng = random.Random(1)
        for _ in range(100):
            guess = (1, rng.randrange(17), rng.randrange(17), rng.randrange(17))
            if vec_dot(guess, X, 17) == K4:
                hits += 1
        # Pr[hit] = 1/17 per guess; 100 draws -> expect ~6, never anywhere
        # near certainty.  Bound generously to keep the test deterministic.
        assert hits < 30


class TestEndToEndOnF17:
    """Run the real AcvBgkm machinery over F_17 to mirror the example's
    scale (hash outputs differ from the paper's illustrative values, but
    the algebra is identical)."""

    def test_three_subscriber_scenario(self):
        from repro.gkm.acv import AcvBgkm

        rng = random.Random(42)
        gkm = AcvBgkm(F17)
        doctor1 = (b"86571",)
        doctor2 = (b"13011",)
        nurse = (b"11109", b"60987")
        rows = [doctor1, doctor2, nurse]
        key, header = gkm.generate(rows, n_max=3, rng=rng)
        assert gkm.derive(header, doctor1) == key
        assert gkm.derive(header, doctor2) == key
        assert gkm.derive(header, nurse) == key
        # The nurse's partial tuple (only 'role = nur' CSS) does not work.
        assert gkm.derive(header, (b"60987",)) != key
