"""Tests for the elliptic-curve backend."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import GroupError, InvalidParameterError, NotOnCurveError
from repro.groups.elliptic import CurveParams, EllipticCurveGroup
from repro.groups.params import NIST_P192, NIST_P256, SECP256K1
from repro.mathx.primes import is_prime

ALL_CURVES = [NIST_P192, NIST_P256, SECP256K1]


@pytest.fixture(scope="module")
def p192():
    return EllipticCurveGroup(NIST_P192)


@pytest.mark.parametrize("params", ALL_CURVES, ids=lambda p: p.name)
class TestDomainParameters:
    def test_validate(self, params):
        params.validate()  # base point on curve, non-singular

    def test_prime_field_and_order(self, params):
        assert is_prime(params.p)
        assert is_prime(params.n)

    def test_generator_has_group_order(self, params):
        group = EllipticCurveGroup(params)
        g = group.generator()
        assert (g ** params.n).is_identity()
        assert not (g ** 1).is_identity()


class TestGroupLaw:
    def test_add_commutes(self, p192):
        rng = random.Random(0)
        a = p192.random_element(rng)
        b = p192.random_element(rng)
        assert a * b == b * a

    def test_associativity(self, p192):
        rng = random.Random(1)
        a, b, c = (p192.random_element(rng) for _ in range(3))
        assert (a * b) * c == a * (b * c)

    def test_identity_laws(self, p192):
        rng = random.Random(2)
        a = p192.random_element(rng)
        e = p192.identity()
        assert a * e == a
        assert e * a == a
        assert e * e == e

    def test_inverse(self, p192):
        rng = random.Random(3)
        a = p192.random_element(rng)
        assert (a * a.inverse()).is_identity()
        assert a.inverse().inverse() == a

    def test_doubling_matches_addition(self, p192):
        g = p192.generator()
        assert g * g == g ** 2

    def test_point_plus_negation_is_infinity(self, p192):
        g = p192.generator()
        assert (g * g.inverse()).is_identity()

    @settings(max_examples=10)
    @given(k=st.integers(1, 2**64), j=st.integers(1, 2**64))
    def test_scalar_homomorphism(self, p192, k, j):
        g = p192.generator()
        assert g ** k * g ** j == g ** (k + j)
        assert (g ** k) ** j == g ** ((k * j) % p192.order)

    def test_scalar_zero_and_order(self, p192):
        g = p192.generator()
        assert (g ** 0).is_identity()
        assert (g ** p192.order).is_identity()
        assert g ** (p192.order + 1) == g

    def test_negative_scalar(self, p192):
        g = p192.generator()
        assert g ** -1 == g.inverse()

    def test_jacobian_matches_affine_chain(self, p192):
        """Scalar mult (Jacobian coords) against repeated affine addition."""
        g = p192.generator()
        acc = p192.identity()
        for k in range(1, 20):
            acc = acc * g
            assert acc == g ** k

    def test_truediv(self, p192):
        g = p192.generator()
        assert (g ** 5) / (g ** 2) == g ** 3


class TestPointsAndEncoding:
    def test_point_validation(self, p192):
        with pytest.raises(NotOnCurveError):
            p192.point(1, 1)

    def test_lift_x(self, p192):
        g = p192.generator()
        lifted = p192.lift_x(g.x, g.y % 2)
        assert lifted == g

    def test_lift_x_parity(self, p192):
        g = p192.generator()
        even = p192.lift_x(g.x, 0)
        odd = p192.lift_x(g.x, 1)
        assert even.y % 2 == 0
        assert odd.y % 2 == 1
        assert even == odd.inverse()

    def test_bytes_roundtrip(self, p192):
        rng = random.Random(4)
        a = p192.random_element(rng)
        assert p192.element_from_bytes(a.to_bytes()) == a

    def test_infinity_roundtrip(self, p192):
        e = p192.identity()
        assert e.to_bytes() == b"\x00"
        assert p192.element_from_bytes(b"\x00").is_identity()

    def test_malformed_bytes(self, p192):
        with pytest.raises(GroupError):
            p192.element_from_bytes(b"\x04\x01\x02")
        with pytest.raises(NotOnCurveError):
            # right length, not on curve
            bad = b"\x04" + (1).to_bytes(24, "big") + (1).to_bytes(24, "big")
            p192.element_from_bytes(bad)

    def test_hash_to_element(self, p192):
        a = p192.hash_to_element(b"tag-1")
        b = p192.hash_to_element(b"tag-2")
        assert a != b
        assert a == p192.hash_to_element(b"tag-1")
        assert not a.is_identity()

    def test_cross_curve_rejected(self):
        g1 = EllipticCurveGroup(NIST_P192).generator()
        g2 = EllipticCurveGroup(NIST_P256).generator()
        with pytest.raises(GroupError):
            g1 * g2

    def test_singular_curve_rejected(self):
        singular = CurveParams(
            name="bad", p=NIST_P192.p, a=0, b=0, gx=0, gy=0, n=NIST_P192.n
        )
        with pytest.raises(InvalidParameterError):
            EllipticCurveGroup(singular)

    def test_off_curve_base_point_rejected(self):
        bad = CurveParams(
            name="bad",
            p=NIST_P192.p,
            a=NIST_P192.a,
            b=NIST_P192.b,
            gx=NIST_P192.gx,
            gy=NIST_P192.gy + 1,
            n=NIST_P192.n,
        )
        with pytest.raises(InvalidParameterError):
            EllipticCurveGroup(bad)
