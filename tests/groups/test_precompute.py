"""Differential tests for fixed-base precomputation (groups/precompute).

The table is an optimization, never a semantic: every ``table.pow(e)``
must be byte-identical to the naive ``base ** e`` for every base, every
group backend and every exponent -- including the edges where windowed
recoding goes wrong (0, 1, order-1, multiples of the order, window-digit
boundaries).  The native-backend tests assert the same property across
the gmpy2/pure-Python boundary: coordinates are Python ints at the
element boundary, so serialized bytes can never depend on which backend
did the arithmetic.
"""

import os
import pickle
import random
import subprocess
import sys

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.groups import get_group
from repro.groups import _native
from repro.groups.precompute import (
    FixedBaseTable,
    fixed_base_table,
    generator_table,
    shared_table,
    window_size,
)

GROUPS = ["nist-p192", "nist-p256", "secp256k1", "toy-schnorr", "paper-genus2"]


def _edge_exponents(order, window):
    span = 1 << window
    return [
        0, 1, 2, 3,
        span - 1, span, span + 1,
        span * span - 1, span * span,
        order - 1, order, order + 1,
        2 * order - 1,
    ]


@pytest.mark.parametrize("name", GROUPS)
class TestDifferential:
    def test_edges_and_random_scalars(self, name):
        group = get_group(name)
        base = group.generator()
        table = fixed_base_table(base)
        rng = random.Random(0xF1DE)
        exponents = _edge_exponents(group.order, table.window)
        exponents += [rng.randrange(group.order) for _ in range(24)]
        for e in exponents:
            assert table.pow(e) == base ** e, "exponent %d" % e
            assert table.pow(e).to_bytes() == (base ** e).to_bytes()

    def test_non_generator_base(self, name):
        group = get_group(name)
        rng = random.Random(0xBA5E)
        base = group.random_element(rng)
        table = fixed_base_table(base)
        for e in (0, 1, 7, group.order - 1, rng.randrange(group.order)):
            assert table.pow(e) == base ** e

    def test_identity_base(self, name):
        group = get_group(name)
        identity = group.identity()
        table = fixed_base_table(identity)
        for e in (0, 1, 5, group.order - 1):
            assert table.pow(e).is_identity()


class TestProperties:
    @settings(max_examples=40, deadline=None)
    @given(e=st.integers(min_value=0, max_value=1 << 256))
    def test_p192_matches_naive(self, e):
        group = get_group("nist-p192")
        base = group.generator()
        assert fixed_base_table(base).pow(e) == base ** e

    def test_window_size_rule(self):
        assert window_size(256) == 5
        assert window_size(192) == 5
        assert window_size(191) == 4
        assert window_size(96) == 4
        assert window_size(95) == 3
        assert window_size(8) == 3

    def test_explicit_window_overrides(self):
        group = get_group("nist-p192")
        base = group.generator()
        for w in (3, 4, 6):
            table = FixedBaseTable(base, window=w)
            assert table.window == w
            e = 0xDEADBEEF
            assert table.pow(e) == base ** e


class TestLifecycle:
    def test_never_serialized(self):
        table = generator_table(get_group("nist-p192"))
        with pytest.raises(TypeError, match="never serialized"):
            pickle.dumps(table)

    def test_shared_table_is_cached(self):
        group = get_group("nist-p192")
        g = group.generator()
        assert shared_table(g) is shared_table(g)
        assert generator_table(group) is shared_table(g)

    def test_distinct_bases_distinct_tables(self):
        group = get_group("nist-p192")
        g = group.generator()
        h = g * g
        assert shared_table(g) is not shared_table(h)
        assert shared_table(h).pow(3) == h ** 3


class TestPedersenIntegration:
    def test_params_survive_pickle_and_rebuild(self):
        from repro.crypto.pedersen import PedersenParams

        params = PedersenParams(get_group("nist-p192"))
        params.precompute_now()
        clone = pickle.loads(pickle.dumps(params))
        assert clone.g == params.g and clone.h == params.h
        for e in (1, 1234567, params.order - 1):
            assert clone.pow_g(e) == params.pow_g(e)
            assert clone.pow_h(e) == params.pow_h(e)

    def test_pow_matches_naive_below_and_above_threshold(self):
        from repro.crypto.pedersen import PedersenParams, _TABLE_THRESHOLD

        params = PedersenParams(get_group("nist-p192"))
        expected = [
            (e, params.g ** e)
            for e in range(1, _TABLE_THRESHOLD + 3)
        ]
        for e, value in expected:
            assert params.pow_g(e) == value


def _run_flipped(code):
    """Run ``code`` in a subprocess with the native backend disabled."""
    env = dict(os.environ)
    env["REPRO_NATIVE_MATH"] = "0"
    env["PYTHONPATH"] = os.pathsep.join(sys.path)
    result = subprocess.run(
        [sys.executable, "-c", code], env=env,
        capture_output=True, text=True, timeout=120,
    )
    assert result.returncode == 0, result.stderr
    return result.stdout.strip()


class TestNativeBackend:
    def test_escape_hatch_forces_python(self):
        out = _run_flipped(
            "from repro.groups._native import BACKEND; print(BACKEND)"
        )
        assert out == "python"

    def test_elements_byte_identical_across_backends(self):
        """Affine bytes from this process's backend == pure Python's."""
        code = (
            "from repro.groups import get_group\n"
            "g = get_group('nist-p192').generator()\n"
            "print((g ** 0xDEC0DE).to_bytes().hex())\n"
        )
        flipped = _run_flipped(code)
        g = get_group("nist-p192").generator()
        assert (g ** 0xDEC0DE).to_bytes().hex() == flipped

    def test_envelopes_byte_identical_across_backends(self):
        """A full OCBE envelope build is backend-independent end to end."""
        code = (
            "import hashlib, random\n"
            "from repro.crypto.pedersen import PedersenParams\n"
            "from repro.groups import get_group\n"
            "from repro.ocbe.base import OCBESetup\n"
            "from repro.ocbe.ge import GeOCBESender, GePredicate\n"
            "setup = OCBESetup(pedersen=PedersenParams(get_group('nist-p192')))\n"
            "rng = random.Random(7)\n"
            "commitment, x, r = None, 61, rng.randrange(setup.pedersen.order)\n"
            "commitment = setup.pedersen.commit(x, r)[0]\n"
            "from repro.ocbe.ge import GeOCBEReceiver\n"
            "pred = GePredicate(x0=40, ell=16)\n"
            "receiver = GeOCBEReceiver(setup, pred, x, r, commitment,\n"
            "                          rng=random.Random(8))\n"
            "aux = receiver.commitment_message()\n"
            "sender = GeOCBESender(setup, pred, rng=random.Random(9))\n"
            "env = sender.compose(commitment, aux, b'payload')\n"
            "h = hashlib.sha256()\n"
            "h.update(env.eta.to_bytes())\n"
            "for a, b in env.bit_ciphers:\n"
            "    h.update(a); h.update(b)\n"
            "h.update(receiver.open(env))\n"
            "print(h.hexdigest())\n"
        )
        flipped = _run_flipped(code)
        local = subprocess.run(
            [sys.executable, "-c", code],
            env={**os.environ, "PYTHONPATH": os.pathsep.join(sys.path)},
            capture_output=True, text=True, timeout=120,
        )
        assert local.returncode == 0, local.stderr
        assert local.stdout.strip() == flipped

    @pytest.mark.skipif(
        not _native.HAVE_GMPY2, reason="gmpy2 not installed"
    )
    def test_gmpy2_is_active_when_present(self):
        if _native.native_disabled():
            pytest.skip("REPRO_NATIVE_MATH disabled in this run")
        assert _native.BACKEND == "gmpy2"
        assert _native.ACTIVE
