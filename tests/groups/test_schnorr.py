"""Tests for the Schnorr-group backend (exhaustive on the toy group)."""

import random

import pytest

from repro.errors import GroupError, InvalidParameterError
from repro.groups.params import SCHNORR_256_PRIME, TOY_SCHNORR_PRIME
from repro.groups.schnorr import SchnorrGroup


@pytest.fixture(scope="module")
def toy():
    return SchnorrGroup(TOY_SCHNORR_PRIME, name="toy")


class TestConstruction:
    def test_rejects_non_prime(self):
        with pytest.raises(InvalidParameterError):
            SchnorrGroup(21)

    def test_rejects_non_safe_prime(self):
        with pytest.raises(InvalidParameterError):
            SchnorrGroup(13)  # (13-1)/2 = 6 not prime

    def test_rejects_degenerate_generator(self):
        with pytest.raises(InvalidParameterError):
            SchnorrGroup(23, generator=1)
        with pytest.raises(InvalidParameterError):
            SchnorrGroup(23, generator=22)  # order 2, not in subgroup

    def test_rejects_non_subgroup_generator(self):
        # 5 is a non-residue mod 23 -> not in the order-11 subgroup.
        assert pow(5, 11, 23) != 1
        with pytest.raises(InvalidParameterError):
            SchnorrGroup(23, generator=5)

    def test_order(self, toy):
        assert toy.order == 11


class TestGroupLaw:
    def test_exhaustive_subgroup(self, toy):
        g = toy.generator()
        elements = {int_el.value for int_el in (g**k for k in range(11))}
        assert len(elements) == 11
        # The subgroup of squares mod 23.
        assert elements == {pow(a, 2, 23) for a in range(1, 23)}

    def test_identity(self, toy):
        g = toy.generator()
        assert (g * toy.identity()) == g
        assert g ** 0 == toy.identity()
        assert toy.identity().is_identity()

    def test_inverse(self, toy):
        g = toy.generator()
        for k in range(11):
            e = g ** k
            assert (e * e.inverse()).is_identity()

    def test_exponent_reduction(self, toy):
        g = toy.generator()
        assert g ** 12 == g ** 1
        assert g ** -1 == g ** 10

    def test_membership_validation(self, toy):
        with pytest.raises(GroupError):
            toy.element(5)  # non-residue
        with pytest.raises(GroupError):
            toy.element(0)
        assert toy.element(4).value == 4

    def test_cross_group_rejected(self, toy):
        other = SchnorrGroup(SCHNORR_256_PRIME)
        with pytest.raises(GroupError):
            toy.generator() * other.generator()


class TestSerializationAndHashing:
    def test_bytes_roundtrip(self, toy):
        for k in range(11):
            e = toy.generator() ** k
            assert toy.element_from_bytes(e.to_bytes()) == e

    def test_bad_length(self, toy):
        with pytest.raises(GroupError):
            toy.element_from_bytes(b"\x00\x01\x02")

    def test_hash_to_element_in_subgroup(self, toy):
        e = toy.hash_to_element(b"tag")
        assert pow(e.value, toy.order, toy.p) == 1
        assert not e.is_identity()

    def test_hash_to_element_deterministic(self, toy):
        assert toy.hash_to_element(b"x") == toy.hash_to_element(b"x")
        # Different tags give different elements with high probability in
        # the big group.
        big = SchnorrGroup(SCHNORR_256_PRIME)
        assert big.hash_to_element(b"a") != big.hash_to_element(b"b")

    def test_second_generator_differs(self):
        big = SchnorrGroup(SCHNORR_256_PRIME)
        assert big.second_generator() != big.generator()

    def test_random_scalar_range(self, toy):
        rng = random.Random(0)
        for _ in range(50):
            s = toy.random_scalar(rng)
            assert 1 <= s < toy.order

    def test_random_element_nonidentity_bias(self):
        big = SchnorrGroup(SCHNORR_256_PRIME)
        rng = random.Random(1)
        assert not big.random_element(rng).is_identity()
