"""Tests for the genus-2 Jacobian: Cantor arithmetic on the paper's curve."""

import random

import pytest

from repro.errors import GroupError, InvalidParameterError, NotOnCurveError
from repro.groups.jacobian import GenusTwoJacobian, JacobianParams
from repro.groups.params import PAPER_GENUS2
from repro.mathx.polynomial import Poly
from repro.mathx.primes import is_prime


@pytest.fixture(scope="module")
def jac():
    return GenusTwoJacobian(PAPER_GENUS2, check=False)


class TestPaperParameters:
    """Pin down the exact values printed in Section VII."""

    def test_field_prime(self):
        assert PAPER_GENUS2.q == 5 * 10**24 + 8503491
        assert PAPER_GENUS2.q.bit_length() == 83
        assert is_prime(PAPER_GENUS2.q)

    def test_jacobian_order_prime(self):
        assert (
            PAPER_GENUS2.order
            == 24999999999994130438600999402209463966197516075699
        )
        assert is_prime(PAPER_GENUS2.order)

    def test_hasse_weil_interval(self):
        import math

        q = PAPER_GENUS2.q
        lower = (math.isqrt(q) - 1) ** 4
        upper = (math.isqrt(q) + 2) ** 4
        assert lower <= PAPER_GENUS2.order <= upper

    def test_order_annihilates_random_divisors(self, jac):
        """The strongest consistency check: p * D = 0 for random D."""
        rng = random.Random(0)
        for _ in range(2):
            d = jac.random_element(rng)
            assert (d ** jac.order).is_identity()

    def test_f_is_monic_degree_5(self):
        PAPER_GENUS2.validate()
        bad = JacobianParams("x", 7, (1, 2, 3), 11)
        with pytest.raises(InvalidParameterError):
            bad.validate()


class TestGroupLaw:
    def test_identity(self, jac):
        e = jac.identity()
        assert e.is_identity()
        assert e.weight == 0
        d = jac.hash_to_element(b"t")
        assert d * e == d

    def test_commutativity(self, jac):
        rng = random.Random(1)
        a, b = jac.random_element(rng), jac.random_element(rng)
        assert a * b == b * a

    def test_associativity(self, jac):
        rng = random.Random(2)
        a, b, c = (jac.random_element(rng) for _ in range(3))
        assert (a * b) * c == a * (b * c)

    def test_inverse(self, jac):
        rng = random.Random(3)
        a = jac.random_element(rng)
        assert (a * a.inverse()).is_identity()

    def test_weight_one_arithmetic(self, jac):
        """Adding a weight-1 divisor to itself yields weight 2 generically."""
        d = jac.hash_to_element(b"w1")
        assert d.weight == 1
        assert (d * d).weight == 2

    def test_scalar_homomorphism(self, jac):
        rng = random.Random(4)
        d = jac.random_element(rng)
        a = rng.randrange(1, 2**40)
        b = rng.randrange(1, 2**40)
        assert d ** a * d ** b == d ** (a + b)

    def test_scalar_edge_cases(self, jac):
        d = jac.hash_to_element(b"edge")
        assert (d ** 0).is_identity()
        assert d ** 1 == d
        assert d ** -1 == d.inverse()
        assert d ** 2 == d * d
        assert d ** 3 == d * d * d

    def test_truediv(self, jac):
        d = jac.hash_to_element(b"div")
        assert (d ** 5) / (d ** 3) == d ** 2


class TestDivisorConstruction:
    def test_point_divisor_requires_curve_point(self, jac):
        with pytest.raises(NotOnCurveError):
            jac.point_divisor(1, 1)

    def test_point_divisor_valid(self, jac):
        x, y = jac.lift_x(2) if jac.f(2).is_square() else jac.lift_x(3)
        d = jac.point_divisor(x, y)
        assert d.weight == 1
        # Mumford invariant: u | v^2 - f.
        assert ((d.v * d.v - jac.f) % d.u).is_zero()

    def test_two_point_divisor(self, jac):
        rng = random.Random(5)
        d = jac.random_element(rng)
        assert d.weight == 2
        assert ((d.v * d.v - jac.f) % d.u).is_zero()
        assert d.u.is_monic()

    def test_two_point_divisor_same_x_rejected(self, jac):
        # find a valid point
        x = 0
        while True:
            try:
                px, py = jac.lift_x(x)
                break
            except Exception:
                x += 1
        with pytest.raises(InvalidParameterError):
            jac.two_point_divisor(px, py, px, (-py) % jac.params.q)

    def test_divisor_validation(self, jac):
        fe = jac.field
        with pytest.raises(NotOnCurveError):
            jac.divisor(Poly(fe, (1, 2, 3, 1)), Poly.zero(fe))  # deg u = 3
        with pytest.raises(NotOnCurveError):
            jac.divisor(Poly(fe, (5, 1)), Poly.zero(fe))  # u does not divide f

    def test_negation_is_mumford_negation(self, jac):
        d = jac.hash_to_element(b"neg")
        neg = d.inverse()
        assert neg.u == d.u
        assert neg.v == (-d.v) % d.u


class TestSerializationAndHashing:
    def test_roundtrip_weights(self, jac):
        rng = random.Random(6)
        for d in (jac.identity(), jac.hash_to_element(b"a"), jac.random_element(rng)):
            assert jac.element_from_bytes(d.to_bytes()) == d

    def test_bad_length(self, jac):
        with pytest.raises(GroupError):
            jac.element_from_bytes(b"\x00")

    def test_bad_degree_marker(self, jac):
        raw = bytearray(jac.identity().to_bytes())
        raw[0] = 9
        with pytest.raises(GroupError):
            jac.element_from_bytes(bytes(raw))

    def test_tampered_payload_rejected(self, jac):
        # Weight-1 divisor: tampering the zero padding must be rejected as a
        # non-canonical encoding (GroupError subsumes NotOnCurveError).
        raw = bytearray(jac.hash_to_element(b"x").to_bytes())
        raw[-1] ^= 1
        with pytest.raises(GroupError):
            jac.element_from_bytes(bytes(raw))

    def test_tampered_v_rejected(self, jac):
        # Weight-2 divisor: tampering v breaks the Mumford invariant.
        rng = random.Random(7)
        raw = bytearray(jac.random_element(rng).to_bytes())
        raw[-1] ^= 1
        with pytest.raises(GroupError):
            jac.element_from_bytes(bytes(raw))

    def test_hash_to_element_distinct(self, jac):
        assert jac.hash_to_element(b"t1") != jac.hash_to_element(b"t2")
        assert jac.hash_to_element(b"t1") == jac.hash_to_element(b"t1")

    def test_generator_and_second_generator(self, jac):
        g = jac.generator()
        h = jac.second_generator()
        assert not g.is_identity() and not h.is_identity()
        assert g != h
