"""Tests for the parameter registry."""

import pytest

from repro.errors import InvalidParameterError
from repro.groups import default_group, get_group, list_groups
from repro.groups.params import (
    SCHNORR_256_PRIME,
    SCHNORR_512_PRIME,
    TOY_SCHNORR_PRIME,
)
from repro.mathx.primes import is_prime


def test_all_registered_groups_instantiate():
    for name in list_groups():
        group = get_group(name)
        assert group.order > 1
        g = group.generator()
        assert (g ** group.order).is_identity()


def test_registry_caches_instances():
    assert get_group("nist-p192") is get_group("nist-p192")


def test_unknown_name():
    with pytest.raises(InvalidParameterError):
        get_group("curve9000")


def test_default_group_is_registered():
    assert default_group().name in list_groups()


@pytest.mark.parametrize(
    "p", [TOY_SCHNORR_PRIME, SCHNORR_256_PRIME, SCHNORR_512_PRIME]
)
def test_safe_primes_are_safe(p):
    assert is_prime(p)
    assert is_prime((p - 1) // 2)


def test_expected_names_present():
    names = list_groups()
    for expected in (
        "nist-p192",
        "nist-p256",
        "secp256k1",
        "paper-genus2",
        "schnorr-256",
        "schnorr-512",
        "toy-schnorr",
    ):
        assert expected in names
