"""Tests for the accounting transport."""

from repro.system.transport import InMemoryTransport, Message


class TestAccounting:
    def test_bytes_between(self):
        t = InMemoryTransport()
        t.send("a", "b", "k1", 100)
        t.send("a", "b", "k1", 50)
        t.send("b", "a", "k2", 10)
        assert t.bytes_between("a", "b") == 150
        assert t.bytes_between("b", "a") == 10
        assert t.bytes_between("a", "c") == 0

    def test_aggregates(self):
        t = InMemoryTransport()
        t.send("a", "b", "k", 100)
        t.send("a", "c", "k", 20)
        t.send("c", "a", "k", 5)
        assert t.bytes_sent_by("a") == 120
        assert t.bytes_received_by("a") == 5
        assert t.bytes_received_by("b") == 100

    def test_views(self):
        t = InMemoryTransport()
        t.send("a", "b", "k", 1, note="n1")
        t.send("c", "d", "k", 1)
        seen = t.messages_seen_by("a")
        assert seen == [Message("a", "b", "k", 1, "n1")]

    def test_kind_counts(self):
        t = InMemoryTransport()
        t.send("a", "b", "x", 1)
        t.send("a", "b", "x", 1)
        t.send("a", "b", "y", 1)
        assert t.kinds_count() == {"x": 2, "y": 1}

    def test_reset(self):
        t = InMemoryTransport()
        t.send("a", "b", "x", 1)
        t.reset()
        assert t.messages == []
        assert t.bytes_between("a", "b") == 0
