"""Privacy tests: the publisher's view is independent of attribute values.

The paper's central claim is that the Pub learns neither the values of
identity attributes nor which conditions a Sub satisfies.  These tests
make the claim falsifiable inside the implementation: two worlds that
differ only in a subscriber's hidden attribute value must present the Pub
with views that are equal in everything the Pub can observe
(registration behaviour, table shape, message kinds/sizes).
"""

import random


from repro.gkm.acv import FAST_FIELD
from repro.groups import get_group
from repro.policy.acp import parse_policy
from repro.system.idmgr import IdentityManager
from repro.system.idp import IdentityProvider
from repro.system.publisher import Publisher
from repro.system.registration import register_all_attributes
from repro.system.subscriber import Subscriber
from repro.system.transport import InMemoryTransport


def build_world(level_value, seed):
    """A publisher with one level-gated policy and one subscriber whose
    hidden level is ``level_value``."""
    rng = random.Random(seed)
    group = get_group("nist-p192")
    idp = IdentityProvider("hr", group, rng=rng)
    idmgr = IdentityManager(group, rng=rng)
    idmgr.trust_idp(idp)
    pub = Publisher(
        "pub", idmgr.params, idmgr.public_key, gkm_field=FAST_FIELD,
        attribute_bits=16, rng=rng,
    )
    pub.add_policy(parse_policy("level >= 59", ["secret_part"], "doc"))
    pub.add_policy(parse_policy("level < 59", ["open_part"], "doc"))
    idp.enroll("user", "level", level_value)
    nym = idmgr.assign_pseudonym()
    sub = Subscriber(nym, pub.params, rng=rng)
    token, x, r = idmgr.issue_token(nym, idp.assert_attribute("user", "level"), rng=rng)
    sub.hold_token(token, x, r)
    transport = InMemoryTransport()
    register_all_attributes(pub, sub, transport)
    return pub, sub, transport


class TestPublisherObliviousness:
    def test_table_shape_independent_of_value(self):
        """Same registration foot-print whether the level is 61 or 20."""
        pub_high, _, _ = build_world(61, seed=42)
        pub_low, _, _ = build_world(20, seed=42)
        assert pub_high.table.condition_keys() == pub_low.table.condition_keys()
        assert pub_high.table.cell_count() == pub_low.table.cell_count()

    def test_message_kinds_and_counts_identical(self):
        _, _, t_high = build_world(61, seed=43)
        _, _, t_low = build_world(20, seed=43)
        assert t_high.kinds_count() == t_low.kinds_count()

    def test_message_sizes_identical(self):
        """Byte-for-byte equal transcript *sizes*: nothing in the lengths
        leaks the committed value (GE-OCBE always sends l commitments and
        2l bit-ciphers)."""
        _, _, t_high = build_world(61, seed=44)
        _, _, t_low = build_world(20, seed=44)
        sizes_high = [(m.kind, m.size) for m in t_high.messages]
        sizes_low = [(m.kind, m.size) for m in t_low.messages]
        assert sizes_high == sizes_low

    def test_sub_knows_outcome_pub_does_not_record_it(self):
        """Only the Sub knows which CSSs opened; the publisher's table
        records every condition either way."""
        pub, sub, _ = build_world(61, seed=45)
        assert set(sub.css_store) == {"level >= 59"}
        assert pub.table.has(sub.nym, "level >= 59")
        assert pub.table.has(sub.nym, "level < 59")

    def test_commitment_hides_value(self):
        """The token the Pub sees is a Pedersen commitment: both worlds'
        commitments are valid group elements revealing nothing; with the
        same blinding randomness they would even be distributed
        identically -- here we check the Pub cannot brute-force small
        values because the blinding is 192-bit."""
        _, sub_high, _ = build_world(61, seed=46)
        token = sub_high.token_for("level")
        params = sub_high.params.pedersen
        # Exhaustive value guesses without r fail:
        assert all(
            not params.verify_open(token.commitment, guess, 0)
            for guess in range(0, 128)
        )


class TestBroadcastPrivacy:
    def test_header_reveals_only_policy_structure(self):
        """Broadcast headers carry condition strings (public policy) and
        the ACV -- no pseudonym, no CSS, no table row order beyond the
        matrix dimensionality N."""
        pub, sub, _ = build_world(61, seed=47)
        from repro.documents.model import Document

        doc = Document.of("doc", {"secret_part": b"s", "open_part": b"o"})
        package = pub.publish(doc)
        raw = package.to_bytes()
        assert sub.nym.encode() not in raw
        for row_nym in pub.table.pseudonyms():
            assert row_nym.encode() not in raw
        for key in ("level >= 59", "level < 59"):
            for nym in pub.table.pseudonyms():
                if pub.table.has(nym, key):
                    assert pub.table.get(nym, key) not in raw
