"""Bandwidth-overhead tests (Section VI-B.3).

The paper claims O(l'N) broadcast overhead for the keying material and --
the key operational win -- zero unicast traffic on rekey.
"""

import random


from repro.documents.model import Document
from repro.gkm.acv import FAST_FIELD
from repro.groups import get_group
from repro.policy.acp import parse_policy
from repro.system.idmgr import IdentityManager
from repro.system.idp import IdentityProvider
from repro.system.publisher import Publisher
from repro.system.registration import register_all_attributes
from repro.system.subscriber import Subscriber
from repro.system.transport import InMemoryTransport


def build_population(n_subs, seed=0):
    rng = random.Random(seed)
    group = get_group("nist-p192")
    idp = IdentityProvider("hr", group, rng=rng)
    idmgr = IdentityManager(group, rng=rng)
    idmgr.trust_idp(idp)
    pub = Publisher(
        "pub", idmgr.params, idmgr.public_key, gkm_field=FAST_FIELD,
        attribute_bits=8, rng=rng,
    )
    pub.add_policy(parse_policy("clearance >= 3", ["body"], "doc"))
    subs = []
    transport = InMemoryTransport()
    for i in range(n_subs):
        name = "user%d" % i
        idp.enroll(name, "clearance", 5)
        nym = idmgr.assign_pseudonym()
        sub = Subscriber(nym, pub.params, rng=rng)
        token, x, r = idmgr.issue_token(
            nym, idp.assert_attribute(name, "clearance"), rng=rng
        )
        sub.hold_token(token, x, r)
        register_all_attributes(pub, sub, transport)
        subs.append(sub)
    return pub, subs, transport


DOC = Document.of("doc", {"body": b"payload" * 10})


class TestHeaderGrowth:
    def test_header_linear_in_population(self):
        sizes = {}
        for n in (4, 8, 16):
            pub, _, _ = build_population(n, seed=n)
            package = pub.publish(DOC)
            sizes[n] = package.header_overhead()
        # Roughly linear: doubling n roughly doubles overhead, and never
        # blows up quadratically.
        assert sizes[8] > sizes[4]
        assert sizes[16] > sizes[8]
        assert sizes[16] < sizes[4] * 8

    def test_payload_size_independent_of_population(self):
        small_pub, _, _ = build_population(2, seed=1)
        large_pub, _, _ = build_population(12, seed=2)
        small = small_pub.publish(DOC)
        large = large_pub.publish(DOC)
        small_payload = small.byte_size() - small.header_overhead()
        large_payload = large.byte_size() - large.header_overhead()
        assert abs(small_payload - large_payload) < 64  # same ciphertext sizes


class TestNoUnicastOnRekey:
    def test_revocation_rekey_needs_no_registration_traffic(self):
        pub, subs, transport = build_population(6, seed=3)
        registration_bytes = transport.bytes_received_by("pub")
        # Revoke one subscription and rekey (= publish again).
        pub.revoke_subscription(subs[0].nym)
        package = pub.publish(DOC)
        # No new registration traffic was needed:
        assert transport.bytes_received_by("pub") == registration_bytes
        # And the remaining subscribers can still decrypt:
        for sub in subs[1:]:
            assert sub.receive(package)["body"] == DOC.get("body").content

    def test_css_store_is_constant_size(self):
        """Subscriber state: exactly one CSS per registered condition,
        regardless of how many rekeys happen (O(1) vs LKH's O(log n))."""
        pub, subs, _ = build_population(3, seed=4)
        sub = subs[0]
        state_before = dict(sub.css_store)
        for _ in range(3):
            package = pub.publish(DOC)
            sub.receive(package)
        assert sub.css_store == state_before
