"""The Transport conformance suite: one contract, every backend.

Parametrized over ``InMemoryTransport`` (the in-process router) and
``TcpTransport`` (real sockets through a ``BrokerServer``): the session
and endpoint layer relies on exactly these behaviours, so a backend that
passes this suite can carry the full protocol.

Network delivery is asynchronous, so the suite never assumes a frame has
arrived the instant ``deliver`` returns: :func:`drain` polls with a
deadline, which is a no-op extra loop for the in-memory backend.
Accounting is queried through :func:`accounting`, which for the TCP
backend replays the broker's log into an in-memory router -- the query
surface is the contract, wherever the counters physically live.
"""

import time

import pytest

from repro.errors import ReproError
from repro.net.runtime import BrokerThread
from repro.net.transport import TcpTransport
from repro.system.transport import BROADCAST, InMemoryTransport

BACKENDS = ("memory", "tcp")


@pytest.fixture(params=BACKENDS)
def transport(request):
    if request.param == "memory":
        yield InMemoryTransport()
        return
    with BrokerThread() as broker:
        with TcpTransport(broker.host, broker.port) as tcp:
            yield tcp


def accounting(transport):
    """The backend's byte-accounting view (broker-side for TCP)."""
    if isinstance(transport, TcpTransport):
        return transport.snapshot()
    return transport


def drain(transport, entity, count, timeout=5.0):
    """Poll until ``count`` deliveries arrived (async-delivery tolerant)."""
    deliveries = []
    deadline = time.monotonic() + timeout
    while len(deliveries) < count:
        deliveries.extend(transport.poll(entity))
        if time.monotonic() > deadline:
            raise AssertionError(
                "only %d/%d deliveries arrived for %r"
                % (len(deliveries), count, entity)
            )
        time.sleep(0.002)
    assert transport.poll(entity) == []  # nothing unexpected behind them
    return deliveries


class TestRouting:
    def test_deliver_reaches_receiver(self, transport):
        transport.register("a")
        transport.register("b")
        transport.deliver("a", "b", "kind", b"payload", note="n")
        [delivery] = drain(transport, "b", 1)
        assert delivery.sender == "a"
        assert delivery.receiver == "b"
        assert delivery.kind == "kind"
        assert delivery.payload == b"payload"
        assert delivery.note == "n"

    def test_per_receiver_fifo_order(self, transport):
        transport.register("a")
        transport.register("b")
        for i in range(50):
            transport.deliver("a", "b", "seq", bytes([i]))
        deliveries = drain(transport, "b", 50)
        assert [d.payload[0] for d in deliveries] == list(range(50))

    def test_poll_limit(self, transport):
        transport.register("a")
        transport.register("b")
        for i in range(5):
            transport.deliver("a", "b", "seq", bytes([i]))
        drained = drain(transport, "b", 5)
        transport.requeue("b", drained)
        first = transport.poll("b", 2)
        rest = transport.poll("b")
        assert [d.payload[0] for d in first] == [0, 1]
        assert [d.payload[0] for d in rest] == [2, 3, 4]

    def test_unknown_receiver_queued_until_registration(self, transport):
        """Delivering to a not-yet-registered name must not drop the frame:
        the inbox is created on demand and drained on (late) registration."""
        transport.register("a")
        transport.deliver("a", "late", "kind", b"early bird")
        transport.register("late")
        [delivery] = drain(transport, "late", 1)
        assert delivery.payload == b"early bird"

    def test_poll_of_unregistered_entity_is_empty(self, transport):
        assert transport.poll("nobody") == []

    def test_non_bytes_payload_rejected(self, transport):
        transport.register("a")
        with pytest.raises(ReproError):
            transport.deliver("a", "b", "kind", "not bytes")
        with pytest.raises(ReproError):
            transport.broadcast("a", "kind", 1234)


class TestMulticast:
    def test_broadcast_reaches_all_registered_but_not_sender(self, transport):
        for name in ("pub", "s1", "s2", "s3"):
            transport.register(name)
        transport.broadcast("pub", "pkg", b"fanout", note="doc")
        for name in ("s1", "s2", "s3"):
            [delivery] = drain(transport, name, 1)
            assert delivery.sender == "pub"
            assert delivery.payload == b"fanout"
        assert transport.poll("pub") == []

    def test_broadcast_skips_never_registered_names(self, transport):
        transport.register("pub")
        transport.register("member")
        transport.broadcast("pub", "pkg", b"x")
        drain(transport, "member", 1)
        # A name that registers *after* the broadcast gets nothing.
        transport.register("latecomer")
        transport.deliver("pub", "latecomer", "probe", b"probe")
        [delivery] = drain(transport, "latecomer", 1)
        assert delivery.kind == "probe"


class TestRequeue:
    def test_requeue_preserves_order_ahead_of_new_traffic(self, transport):
        transport.register("a")
        transport.register("b")
        for i in range(4):
            transport.deliver("a", "b", "seq", bytes([i]))
        batch = drain(transport, "b", 4)
        transport.requeue("b", batch[2:])  # handler failed after two
        transport.deliver("a", "b", "seq", bytes([9]))
        deliveries = drain(transport, "b", 3)
        assert [d.payload[0] for d in deliveries] == [2, 3, 9]


class TestAccounting:
    def test_sizes_equal_frame_lengths(self, transport):
        transport.register("a")
        transport.register("b")
        payloads = [b"x" * n for n in (1, 57, 1024)]
        for payload in payloads:
            transport.deliver("a", "b", "kind", payload)
        drain(transport, "b", len(payloads))
        view = accounting(transport)
        sizes = [m.size for m in view.messages if m.kind == "kind"]
        assert sizes == [len(p) for p in payloads]
        assert view.bytes_between("a", "b") == sum(len(p) for p in payloads)
        assert view.bytes_sent_by("a") == sum(len(p) for p in payloads)
        assert view.bytes_received_by("b") == sum(len(p) for p in payloads)

    def test_broadcast_accounted_once_to_star(self, transport):
        for name in ("pub", "s1", "s2", "s3", "s4"):
            transport.register(name)
        transport.broadcast("pub", "pkg", b"p" * 333)
        for name in ("s1", "s2", "s3", "s4"):
            drain(transport, name, 1)
        view = accounting(transport)
        records = [m for m in view.messages if m.kind == "pkg"]
        assert len(records) == 1, "multicast must be accounted once, not per Sub"
        assert records[0].receiver == BROADCAST
        assert records[0].size == 333
        assert view.bytes_sent_by("pub") == 333  # independent of audience size

    def test_note_travels_with_accounting(self, transport):
        transport.register("a")
        transport.register("b")
        transport.deliver("a", "b", "kind", b"z", note="the-note")
        drain(transport, "b", 1)
        view = accounting(transport)
        [record] = [m for m in view.messages if m.kind == "kind"]
        assert record.note == "the-note"
