"""Tests for the registration phase (Section V-B)."""


import pytest

from repro.errors import RegistrationError, SignatureError
from repro.gkm.acv import FAST_FIELD
from repro.groups import get_group
from repro.system.identity import IdentityToken
from repro.system.idmgr import IdentityManager
from repro.system.idp import IdentityProvider
from repro.system.publisher import Publisher
from repro.system.registration import register_all_attributes, register_for_attribute
from repro.system.subscriber import Subscriber
from repro.system.transport import InMemoryTransport
from repro.policy.acp import parse_policy


@pytest.fixture
def world(rng):
    group = get_group("nist-p192")
    idp = IdentityProvider("hr", group, rng=rng)
    idmgr = IdentityManager(group, rng=rng)
    idmgr.trust_idp(idp)
    pub = Publisher(
        "pub", idmgr.params, idmgr.public_key, gkm_field=FAST_FIELD,
        attribute_bits=16, rng=rng,
    )
    pub.add_policy(parse_policy("role = doc", ["s1"], "d"))
    pub.add_policy(parse_policy("role = nur AND level >= 59", ["s2"], "d"))
    pub.add_policy(parse_policy("level < 30", ["s3"], "d"))
    return idp, idmgr, pub


def make_sub(idp, idmgr, pub, name, attributes, rng):
    for attr, value in attributes.items():
        idp.enroll(name, attr, value)
    nym = idmgr.assign_pseudonym()
    sub = Subscriber(nym, pub.params, rng=rng)
    for attr in attributes:
        token, x, r = idmgr.issue_token(nym, idp.assert_attribute(name, attr), rng=rng)
        sub.hold_token(token, x, r)
    return sub


class TestConditionDiscovery:
    def test_conditions_deduplicated(self, world):
        _, _, pub = world
        keys = [c.key() for c in pub.conditions()]
        assert keys == sorted(set(keys))
        assert "role = doc" in keys and "level >= 59" in keys

    def test_conditions_for_attribute(self, world):
        _, _, pub = world
        level_conds = pub.conditions_for_attribute("level")
        assert {c.key() for c in level_conds} == {"level >= 59", "level < 30"}


class TestRegistration:
    def test_css_extracted_iff_satisfied(self, world, rng):
        idp, idmgr, pub = world
        nurse = make_sub(idp, idmgr, pub, "nan", {"role": "nur", "level": 61}, rng)
        results = register_all_attributes(pub, nurse)
        assert results["role"] == {"role = doc": False, "role = nur": True}
        assert results["level"] == {"level >= 59": True, "level < 30": False}
        assert set(nurse.css_store) == {"role = nur", "level >= 59"}

    def test_publisher_table_filled_regardless(self, world, rng):
        """Table T records a CSS for every registered condition -- even the
        ones the Sub cannot open (Table I's mutually exclusive columns)."""
        idp, idmgr, pub = world
        nurse = make_sub(idp, idmgr, pub, "nan", {"role": "nur", "level": 61}, rng)
        register_all_attributes(pub, nurse)
        for key in ("role = doc", "role = nur", "level >= 59", "level < 30"):
            assert pub.table.has(nurse.nym, key)

    def test_mutually_exclusive_conditions_registered(self, world, rng):
        """The pn-0829 behaviour from Example 3."""
        idp, idmgr, pub = world
        young = make_sub(idp, idmgr, pub, "kid", {"level": 20}, rng)
        results = register_for_attribute(pub, young, "level")
        assert results == {"level >= 59": False, "level < 30": True}
        assert pub.table.has(young.nym, "level >= 59")
        assert pub.table.has(young.nym, "level < 30")

    def test_tag_mismatch_rejected(self, world, rng):
        idp, idmgr, pub = world
        sub = make_sub(idp, idmgr, pub, "dd", {"role": "doc"}, rng)
        level_cond = pub.conditions_for_attribute("level")[0]
        with pytest.raises(RegistrationError):
            pub.open_registration(sub.token_for("role"), level_cond)

    def test_forged_token_rejected(self, world, rng):
        idp, idmgr, pub = world
        sub = make_sub(idp, idmgr, pub, "dd", {"role": "doc"}, rng)
        genuine = sub.token_for("role")
        forged = IdentityToken(
            nym="pn-9999",
            tag=genuine.tag,
            commitment=genuine.commitment,
            signature=genuine.signature,
        )
        condition = pub.conditions_for_attribute("role")[0]
        with pytest.raises(SignatureError):
            pub.open_registration(forged, condition)

    def test_missing_token(self, world, rng):
        idp, idmgr, pub = world
        sub = make_sub(idp, idmgr, pub, "dd", {"role": "doc"}, rng)
        with pytest.raises(RegistrationError):
            sub.token_for("level")

    def test_wrong_nym_token_rejected_by_subscriber(self, world, rng):
        idp, idmgr, pub = world
        sub = make_sub(idp, idmgr, pub, "dd", {"role": "doc"}, rng)
        idp.enroll("other", "role", "doc")
        token, x, r = idmgr.issue_token(
            "pn-7777", idp.assert_attribute("other", "role"), rng=rng
        )
        with pytest.raises(RegistrationError):
            sub.hold_token(token, x, r)

    def test_reregistration_overwrites_css(self, world, rng):
        """Credential update: a new token for the same attribute replaces
        the CSS (Section V-C 'Credential Update')."""
        idp, idmgr, pub = world
        sub = make_sub(idp, idmgr, pub, "dd", {"role": "doc"}, rng)
        register_for_attribute(pub, sub, "role")
        old_css = pub.table.get(sub.nym, "role = doc")
        register_for_attribute(pub, sub, "role")
        new_css = pub.table.get(sub.nym, "role = doc")
        assert old_css != new_css

    def test_transport_accounting(self, world, rng):
        idp, idmgr, pub = world
        sub = make_sub(idp, idmgr, pub, "dd", {"role": "doc", "level": 40}, rng)
        transport = InMemoryTransport()
        register_all_attributes(pub, sub, transport)
        assert transport.bytes_between(sub.nym, "pub") > 0
        assert transport.bytes_between("pub", sub.nym) > 0
        kinds = transport.kinds_count()
        assert kinds["token+condition-request"] == 4  # 2 role + 2 level conds
        assert kinds["ocbe-envelope"] == 4
