"""Two-process-shaped integration test.

Publisher, identity manager and subscribers run as separate endpoints
that communicate *only* via serialized bytes through the router
transport -- exactly the shape of a multi-process deployment.  The test
covers the full lifecycle: token issuance -> registration -> broadcast ->
decryption -> revocation -> rekey, and verifies that every inter-entity
interaction crossed the transport as a wire frame.
"""

import random

import pytest

from repro.documents.model import Document
from repro.errors import RegistrationError
from repro.gkm.acv import FAST_FIELD
from repro.groups import get_group
from repro.policy.acp import parse_policy
from repro.system.idmgr import IdentityManager
from repro.system.idp import IdentityProvider
from repro.system.publisher import Publisher
from repro.system.service import (
    DisseminationService,
    IdentityManagerEndpoint,
    SubscriberClient,
    run_until_idle,
)
from repro.system.subscriber import Subscriber
from repro.system.transport import BROADCAST, InMemoryTransport
from repro.wire.codec import decode_frame
from repro.wire.messages import MESSAGE_TYPES

DOC = Document.of(
    "report", {"clinical": b"clinical body", "billing": b"billing body"}
)


@pytest.fixture
def world():
    rng = random.Random(0x2B10C)
    group = get_group("nist-p192")
    idp = IdentityProvider("hr", group, rng=rng)
    idmgr = IdentityManager(group, rng=rng)
    idmgr.trust_idp(idp)
    publisher = Publisher(
        "pub", idmgr.params, idmgr.public_key, gkm_field=FAST_FIELD,
        attribute_bits=16, rng=rng,
    )
    publisher.add_policy(parse_policy("role = doc", ["clinical"], "report"))
    publisher.add_policy(parse_policy("level >= 50", ["billing"], "report"))

    transport = InMemoryTransport()
    service = DisseminationService(publisher, transport)
    idmgr_ep = IdentityManagerEndpoint(idmgr, transport)

    clients = {}
    for name, attrs in (
        ("carol", {"role": "doc", "level": 70}),
        ("erin", {"role": "nur", "level": 40}),
    ):
        for attr, value in attrs.items():
            idp.enroll(name, attr, value)
        nym = idmgr.assign_pseudonym()
        sub = Subscriber(nym, publisher.params, rng=rng)
        clients[name] = SubscriberClient(sub, transport, publisher.name)
    return idp, idmgr, transport, service, idmgr_ep, clients


def test_full_lifecycle_over_bytes_only(world):
    idp, idmgr, transport, service, idmgr_ep, clients = world
    endpoints = [service, idmgr_ep, *clients.values()]

    # --- token issuance over the wire -----------------------------------
    for name, client in clients.items():
        for attr in ("role", "level"):
            client.request_token(attr, assertion=idp.assert_attribute(name, attr))
    run_until_idle(endpoints)
    assert clients["carol"].subscriber.attribute_tags() == ["level", "role"]

    # --- registration over the wire -------------------------------------
    for client in clients.values():
        client.register_all_attributes()
    run_until_idle(endpoints)
    assert not any(client.registering() for client in clients.values())
    assert clients["carol"].results["role"] == {"role = doc": True}
    assert clients["carol"].results["level"] == {"level >= 50": True}
    assert clients["erin"].results["role"] == {"role = doc": False}
    assert clients["erin"].results["level"] == {"level >= 50": False}
    # The publisher's table is identical in shape for both (privacy).
    for client in clients.values():
        assert service.publisher.table.has(client.subscriber.nym, "role = doc")
        assert service.publisher.table.has(client.subscriber.nym, "level >= 50")

    # --- broadcast + decryption -----------------------------------------
    service.publish(DOC)
    run_until_idle(endpoints)
    assert clients["carol"].latest_plaintexts() == {
        "clinical": b"clinical body",
        "billing": b"billing body",
    }
    assert clients["erin"].latest_plaintexts() == {}

    # --- revocation + rekey (no unicast) --------------------------------
    carol_nym = clients["carol"].subscriber.nym
    inbound_before = transport.bytes_received_by(service.name)
    assert service.publisher.revoke_subscription(carol_nym)
    service.publish(DOC)  # the rekey IS the next broadcast
    run_until_idle(endpoints)
    # Revocation required zero subscriber->publisher traffic:
    assert transport.bytes_received_by(service.name) == inbound_before
    assert clients["carol"].latest_plaintexts() == {}
    assert clients["erin"].latest_plaintexts() == {}

    # --- every interaction was a serialized frame -----------------------
    assert transport.pending() == 0
    known_kinds = {cls.KIND for cls in MESSAGE_TYPES.values()}
    assert transport.messages, "nothing crossed the transport?"
    for record in transport.messages:
        assert record.kind in known_kinds, record
    # Broadcasts were multicast (accounted once, receiver "*"):
    broadcasts = [m for m in transport.messages if m.kind == "broadcast-package"]
    assert len(broadcasts) == 2 and all(m.receiver == BROADCAST for m in broadcasts)


def test_all_payloads_are_bytes_and_self_contained(world):
    """Every delivery is decodable bytes -- no live objects on the wire."""
    idp, idmgr, transport, service, idmgr_ep, clients = world

    captured = []
    original_deliver = transport.deliver

    def capturing_deliver(sender, receiver, kind, payload, note=""):
        captured.append((kind, payload))
        original_deliver(sender, receiver, kind, payload, note)

    transport.deliver = capturing_deliver
    try:
        carol = clients["carol"]
        carol.request_token("role", assertion=idp.assert_attribute("carol", "role"))
        run_until_idle([idmgr_ep, carol])
        carol.register_attribute("role")
        run_until_idle([service, carol])
    finally:
        transport.deliver = original_deliver

    group = service.publisher.params.pedersen.group
    assert captured
    for kind, payload in captured:
        assert type(payload) is bytes
        type_id, _ = decode_frame(payload)
        cls = MESSAGE_TYPES[type_id]
        assert cls.KIND == kind
        # Decoding from a *copy* of the bytes reproduces the frame exactly:
        from repro.wire.messages import decode_message, encode_message

        assert encode_message(decode_message(bytes(payload), group)) == payload


def test_deprecated_live_object_path_is_rejected(world):
    """The seed's offer/accept handshake now fails loudly, pointing at the
    wire API."""
    idp, idmgr, transport, service, idmgr_ep, clients = world
    carol = clients["carol"]
    carol.request_token("role", assertion=idp.assert_attribute("carol", "role"))
    run_until_idle([idmgr_ep, carol])

    publisher = service.publisher
    condition = publisher.conditions_for_attribute("role")[0]
    offer = publisher.open_registration(
        carol.subscriber.token_for("role"), condition
    )
    with pytest.raises(RegistrationError, match="wire protocol"):
        offer.compose(None)
    with pytest.raises(RegistrationError, match="wire protocol"):
        carol.subscriber.accept_offer(offer)


def test_negative_acks_do_not_wedge_the_client(world):
    """Two in-flight sessions, both rejected in one polled batch: both must
    complete as failures -- neither dropped nor leaked."""
    idp, idmgr, transport, service, idmgr_ep, clients = world
    from repro.wire.messages import RegistrationAck

    carol = clients["carol"]
    for attr in ("role", "level"):
        carol.request_token(attr, assertion=idp.assert_attribute("carol", attr))
    run_until_idle([idmgr_ep, carol])

    carol.register_all_attributes()
    service.pump()  # answer the condition queries only
    carol.pump()    # sessions move to await-ack, requests queued at pub
    transport.poll(service.name)  # the "publisher" loses the requests (restart)
    assert carol.registering()

    for key in ("role = doc", "level >= 50"):
        frame = RegistrationAck(
            nym=carol.subscriber.nym, condition_key=key, ok=False,
            reason="publisher restarted",
        ).encode()
        transport.deliver(service.name, carol.subscriber.nym, "registration-ack", frame)
    carol.pump()  # both negative acks in one batch
    assert not carol.registering()
    assert carol.results["role"] == {"role = doc": False}
    assert carol.results["level"] == {"level >= 50": False}
    assert carol.failures == {
        "role = doc": "publisher restarted",
        "level >= 50": "publisher restarted",
    }


def test_failed_handler_requeues_rest_of_batch(world):
    """A hostile frame must not destroy well-formed traffic behind it."""
    idp, idmgr, transport, service, idmgr_ep, clients = world
    from repro.errors import ReproError
    from repro.wire.messages import ConditionQuery

    transport.register("mallory")
    transport.deliver("mallory", service.name, "garbage", b"\x00garbage")
    transport.deliver(
        "mallory", service.name, ConditionQuery.KIND,
        ConditionQuery(attribute="role").encode(),
    )
    with pytest.raises(ReproError):
        service.pump()
    assert transport.pending(service.name) == 1  # the query survived
    service.pump()
    replies = transport.poll("mallory")
    assert len(replies) == 1 and replies[0].kind == "condition-list"


def test_shim_surfaces_publisher_rejection(world):
    """The compatibility helpers must not silently report a rejection as
    'condition unsatisfied': a token from a foreign IdMgr raises."""
    idp, idmgr, transport, service, idmgr_ep, clients = world
    from repro.groups import get_group
    from repro.system.registration import register_for_attribute

    rogue_idmgr = IdentityManager(get_group("nist-p192"), rng=random.Random(1))
    sub = clients["erin"].subscriber
    idp2 = IdentityProvider("hr2", rogue_idmgr.group, rng=random.Random(2))
    rogue_idmgr.trust_idp(idp2)
    idp2.enroll("erin", "role", "nur")
    token, x, r = rogue_idmgr.issue_token(
        sub.nym, idp2.assert_attribute("erin", "role"), rng=random.Random(3)
    )
    rogue_sub = Subscriber(sub.nym, service.publisher.params, rng=random.Random(4))
    rogue_sub.hold_token(token, x, r)
    with pytest.raises(RegistrationError, match="rejected"):
        register_for_attribute(service.publisher, rogue_sub, "role", transport)


def test_pending_registrations_are_bounded(world):
    """RegistrationRequests never followed by AuxCommitments must not grow
    publisher memory without bound; evicted exchanges draw negative acks."""
    idp, idmgr, transport, service, idmgr_ep, clients = world
    from repro.wire.messages import AuxCommitments, RegistrationAck, decode_message

    service.session.max_pending = 1
    for name, client in clients.items():
        for attr in ("role",):
            client.request_token(attr, assertion=idp.assert_attribute(name, attr))
    run_until_idle([idmgr_ep, *clients.values()])

    # Both clients send a request; only the most recent survives eviction.
    for client in clients.values():
        client.register_attribute("role")
        client.pump()  # nothing yet; queries go out
    service.pump()  # answer queries
    for client in clients.values():
        client.pump()  # requests go out
    service.pump()  # acks; second request evicts the first offer
    assert len(service.session._pending) == 1
    for client in clients.values():
        client.pump()  # aux commitments go out
    service.pump()
    group = service.publisher.params.pedersen.group
    outcomes = {}
    for client in clients.values():
        replies = transport.poll(client.subscriber.nym)
        assert len(replies) == 1
        message = decode_message(replies[0].payload, group)
        outcomes[client.subscriber.nym] = type(message).__name__
    # One envelope (the survivor), one negative ack (the evicted).
    assert sorted(outcomes.values()) == ["OCBEEnvelope", "RegistrationAck"]


def test_variant_mismatched_aux_draws_negative_ack(world):
    """A well-formed AuxCommitments carrying the wrong OCBE variant (None
    aux for a bitwise predicate) must produce a negative ack, not crash."""
    idp, idmgr, transport, service, idmgr_ep, clients = world
    from repro.wire.messages import AuxCommitments, RegistrationAck, decode_message

    erin = clients["erin"]
    erin.request_token("level", assertion=idp.assert_attribute("erin", "level"))
    run_until_idle([idmgr_ep, erin])
    nym = erin.subscriber.nym
    token = erin.subscriber.token_for("level")
    from repro.wire.messages import RegistrationRequest

    transport.deliver(
        nym, service.name, RegistrationRequest.KIND,
        RegistrationRequest(nym=nym, condition_key="level >= 50", token=token).encode(),
    )
    service.pump()
    transport.poll(nym)  # discard the positive ack
    transport.deliver(
        nym, service.name, AuxCommitments.KIND,
        AuxCommitments(nym=nym, condition_key="level >= 50", aux=None).encode(),
    )
    service.pump()  # must not raise
    replies = transport.poll(nym)
    group = service.publisher.params.pedersen.group
    ack = decode_message(replies[0].payload, group)
    assert isinstance(ack, RegistrationAck) and not ack.ok


def test_variant_mismatched_envelope_fails_one_session_only(world):
    """A wrong-variant envelope from a buggy publisher fails that one
    registration (recorded with a reason) without wedging the client."""
    idp, idmgr, transport, service, idmgr_ep, clients = world
    from repro.wire.messages import OCBEEnvelope, decode_message
    from repro.ocbe.eq import EqEnvelope

    erin = clients["erin"]
    erin.request_token("level", assertion=idp.assert_attribute("erin", "level"))
    run_until_idle([idmgr_ep, erin])
    erin.register_attribute("level")
    service.pump()  # condition list
    erin.pump()     # registration request
    service.pump()  # positive ack
    erin.pump()     # aux commitments out; session awaits envelope
    transport.poll(service.name)  # intercept: the real envelope never forms
    bogus = EqEnvelope(
        eta=service.publisher.params.pedersen.group.generator(), ciphertext=b"x" * 32
    )
    transport.deliver(
        service.name, erin.subscriber.nym, OCBEEnvelope.KIND,
        OCBEEnvelope(
            nym=erin.subscriber.nym, condition_key="level >= 50", envelope=bogus
        ).encode(),
    )
    erin.pump()  # must not raise
    assert not erin.registering()
    assert erin.results["level"] == {"level >= 50": False}
    assert "malformed envelope" in erin.failures["level >= 50"]


def test_remote_mistakes_never_abort_pump_loops(world):
    """The three remaining remote-input paths: a refused token request, a
    stray condition in a ConditionList, and a mis-addressed TokenGrant all
    degrade to recorded failures, not endpoint crashes."""
    idp, idmgr, transport, service, idmgr_ep, clients = world
    from repro.wire.messages import ConditionList, TokenGrant, TokenRequest

    erin = clients["erin"]
    # 1. Non-decoy TokenRequest without an assertion: recorded + dropped.
    transport.deliver(
        erin.subscriber.nym, idmgr_ep.name, TokenRequest.KIND,
        TokenRequest(nym=erin.subscriber.nym, attribute="role", assertion=None).encode(),
    )
    idmgr_ep.pump()  # must not raise
    assert idmgr_ep.rejections and idmgr_ep.rejections[0][1] == "role"
    assert transport.pending(erin.subscriber.nym) == 0  # no grant sent

    # 2. ConditionList answering "role" but smuggling a "level" condition:
    # the stray condition is ignored, the matching one proceeds.
    erin.request_token("role", assertion=idp.assert_attribute("erin", "role"))
    run_until_idle([idmgr_ep, erin])
    erin.results.setdefault("role", {})
    conditions = tuple(service.publisher.conditions())  # role AND level atoms
    transport.deliver(
        service.name, erin.subscriber.nym, ConditionList.KIND,
        ConditionList(attribute="role", conditions=conditions).encode(),
    )
    erin.pump()  # must not raise despite no "level" token being held
    assert set(erin.results["role"]) == {"role = doc"}

    # 2b. Unsolicited ConditionList for an attribute with no held token:
    # ignored entirely (erin has no "level" token in this test).
    transport.deliver(
        service.name, erin.subscriber.nym, ConditionList.KIND,
        ConditionList(
            attribute="level",
            conditions=tuple(service.publisher.conditions_for_attribute("level")),
        ).encode(),
    )
    erin.pump()  # must not raise
    assert erin.results.get("level", {}) == {}  # no session was spawned

    # 2c. RegistrationAck for a registration that was never started:
    # absorbed and recorded, not a crash.
    from repro.wire.messages import RegistrationAck

    transport.deliver(
        service.name, erin.subscriber.nym, RegistrationAck.KIND,
        RegistrationAck(
            nym=erin.subscriber.nym, condition_key="never = started", ok=True
        ).encode(),
    )
    erin.pump()  # must not raise
    assert "stray:never = started" in erin.failures

    # 3. TokenGrant addressed to a different pseudonym: recorded failure.
    token, x, r = idmgr.issue_decoy_token("pn-7777", "clearance")
    transport.deliver(
        idmgr_ep.name, erin.subscriber.nym, TokenGrant.KIND,
        TokenGrant(token=token, x=x, r=r).encode(),
    )
    erin.pump()  # must not raise
    assert "token:clearance" in erin.failures


def test_spoofed_nym_cannot_hijack_a_registration(world):
    """A peer sending registration frames under another subscriber's nym is
    rejected; the victim's in-flight exchange completes untouched."""
    idp, idmgr, transport, service, idmgr_ep, clients = world
    from repro.wire.messages import AuxCommitments, RegistrationAck, decode_message

    carol = clients["carol"]
    carol.request_token("role", assertion=idp.assert_attribute("carol", "role"))
    run_until_idle([idmgr_ep, carol])
    carol.register_attribute("role")
    service.pump(); carol.pump(); service.pump()  # victim holds a positive ack

    transport.register("mallory")
    spoof = AuxCommitments(
        nym=carol.subscriber.nym, condition_key="role = doc", aux=None
    ).encode()
    transport.deliver("mallory", service.name, AuxCommitments.KIND, spoof)
    service.pump()
    group = service.publisher.params.pedersen.group
    [reply] = transport.poll("mallory")
    ack = decode_message(reply.payload, group)
    assert isinstance(ack, RegistrationAck) and not ack.ok
    assert "does not match sender" in ack.reason

    # The victim's registration still completes end to end.
    run_until_idle([service, carol])
    assert carol.results["role"] == {"role = doc": True}

    # Mirror direction: a peer impersonating the publisher cannot abort the
    # subscriber's sessions -- frames from unexpected senders are dropped.
    spoofed_ack = RegistrationAck(
        nym=carol.subscriber.nym, condition_key="role = doc", ok=False, reason="x"
    ).encode()
    transport.deliver("mallory", carol.subscriber.nym, RegistrationAck.KIND, spoofed_ack)
    carol.pump()  # must not raise, must not touch results
    assert carol.results["role"] == {"role = doc": True}
    assert "sender:mallory" in carol.failures


def test_hostile_frames_do_not_wedge_the_service(world):
    """Garbage and out-of-state frames yield errors/acks, not crashes."""
    idp, idmgr, transport, service, idmgr_ep, clients = world
    from repro.errors import ReproError
    from repro.wire.messages import AuxCommitments

    # Garbage bytes: the service must raise a library error, not IndexError.
    transport.deliver("mallory", service.name, "garbage", b"\xde\xad\xbe\xef")
    with pytest.raises(ReproError):
        service.pump()

    # An AuxCommitments for a registration that never started -> negative ack.
    transport.register("mallory")
    frame = AuxCommitments(nym="mallory", condition_key="role = doc", aux=None).encode()
    transport.deliver("mallory", service.name, AuxCommitments.KIND, frame)
    service.pump()
    replies = transport.poll("mallory")
    assert len(replies) == 1
    from repro.wire.messages import RegistrationAck, decode_message

    ack = decode_message(replies[0].payload, service.publisher.params.pedersen.group)
    assert isinstance(ack, RegistrationAck) and not ack.ok
