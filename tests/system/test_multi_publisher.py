"""One subscriber, several publishers on a shared transport.

PR 4 extended :class:`SubscriberClient` to fan condition queries out to
a *set* of publishers and accept broadcasts from any of them (sessions
are keyed per sender, so concurrent registrations with different
publishers cannot alias).  These tests pin that surface down, including
the security posture: a publisher outside the configured set stays an
impersonator.
"""

import random

import pytest

from repro.documents.model import Document
from repro.errors import InvalidParameterError
from repro.gkm.acv import FAST_FIELD
from repro.groups import get_group
from repro.policy.acp import parse_policy
from repro.system.idmgr import IdentityManager
from repro.system.idp import IdentityProvider
from repro.system.publisher import Publisher
from repro.system.service import (
    DisseminationService,
    IdentityManagerEndpoint,
    SubscriberClient,
    run_until_idle,
)
from repro.system.subscriber import Subscriber
from repro.system.transport import InMemoryTransport


@pytest.fixture
def world():
    rng = random.Random(0x2B0B)
    group = get_group("nist-p192")
    idp = IdentityProvider("hr", group, rng=rng)
    idmgr = IdentityManager(group, rng=rng)
    idmgr.trust_idp(idp)
    transport = InMemoryTransport()

    def publisher(name, condition, segment, document):
        pub = Publisher(
            name, idmgr.params, idmgr.public_key, gkm_field=FAST_FIELD,
            attribute_bits=8, rng=rng,
        )
        pub.add_policy(parse_policy(condition, [segment], document))
        return DisseminationService(pub, transport)

    news = publisher("news", "news_tier >= 10", "wire", "daily")
    sports = publisher("sports", "sports_tier >= 50", "scores", "scores")
    idmgr_ep = IdentityManagerEndpoint(idmgr, transport)

    idp.enroll("zoe", "news_tier", 30)
    idp.enroll("zoe", "sports_tier", 70)
    sub = Subscriber(idmgr.assign_pseudonym(), news.publisher.params, rng=rng)
    client = SubscriberClient(
        sub, transport, publisher_name=("news", "sports")
    )
    for attr in ("news_tier", "sports_tier"):
        client.request_token(attr, assertion=idp.assert_attribute("zoe", attr))
    run_until_idle([idmgr_ep, client])
    return idp, transport, news, sports, idmgr_ep, client


def test_registers_with_every_publisher(world):
    idp, transport, news, sports, idmgr_ep, client = world
    client.register_all_attributes()
    run_until_idle([news, sports, idmgr_ep, client])
    assert client.results["news_tier"] == {"news_tier >= 10": True}
    assert client.results["sports_tier"] == {"sports_tier >= 50": True}
    nym = client.subscriber.nym
    assert news.publisher.table.has(nym, "news_tier >= 10")
    assert sports.publisher.table.has(nym, "sports_tier >= 50")
    # And neither publisher saw the other's condition registered.
    assert not news.publisher.table.has(nym, "sports_tier >= 50")
    assert not sports.publisher.table.has(nym, "news_tier >= 10")


def test_broadcasts_accepted_from_all_configured_publishers(world):
    idp, transport, news, sports, idmgr_ep, client = world
    client.register_all_attributes()
    run_until_idle([news, sports, idmgr_ep, client])
    news.publish(Document.of("daily", {"wire": b"headlines"}))
    sports.publish(Document.of("scores", {"scores": b"3-2"}))
    run_until_idle([news, sports, idmgr_ep, client])
    assert client.documents["daily"] == {"wire": b"headlines"}
    assert client.documents["scores"] == {"scores": b"3-2"}
    assert len(client.packages) == 2


def test_register_can_target_one_publisher(world):
    idp, transport, news, sports, idmgr_ep, client = world
    client.register_all_attributes(publisher="news")
    run_until_idle([news, sports, idmgr_ep, client])
    nym = client.subscriber.nym
    assert news.publisher.table.has(nym, "news_tier >= 10")
    assert len(sports.publisher.table) == 0
    with pytest.raises(InvalidParameterError):
        client.register_all_attributes(publisher="stranger")


def test_unconfigured_publisher_is_still_an_impersonator(world):
    idp, transport, news, sports, idmgr_ep, client = world
    rng = random.Random(1)
    rogue = Publisher(
        "rogue", news.publisher.params.pedersen,
        news.publisher.params.idmgr_public_key, gkm_field=FAST_FIELD,
        attribute_bits=8, rng=rng,
    )
    rogue.add_policy(parse_policy("news_tier >= 1", ["wire"], "daily"))
    rogue_service = DisseminationService(rogue, transport)
    rogue_service.publish(Document.of("daily", {"wire": b"fake news"}))
    run_until_idle([rogue_service, client])
    # The rogue broadcast was dropped before decode: no package recorded.
    assert len(client.packages) == 0
    assert "daily" not in client.documents


def test_at_least_one_publisher_required(world):
    idp, transport, news, sports, idmgr_ep, client = world
    with pytest.raises(InvalidParameterError):
        SubscriberClient(client.subscriber, transport, publisher_name=())
