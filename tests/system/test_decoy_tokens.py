"""Tests for the Section VI-A extension: decoy identity tokens.

A Sub can register for attributes it does not hold using IdMgr-issued
tokens whose committed value lies outside every honest domain -- so the
publisher cannot even tell which attributes a Sub possesses.
"""

import random

import pytest

from repro.gkm.acv import FAST_FIELD
from repro.groups import get_group
from repro.policy.acp import parse_policy
from repro.system.idmgr import IdentityManager
from repro.system.idp import IdentityProvider
from repro.system.publisher import Publisher
from repro.system.registration import register_all_attributes
from repro.system.subscriber import Subscriber
from repro.system.transport import InMemoryTransport


@pytest.fixture
def world(rng):
    group = get_group("nist-p192")
    idp = IdentityProvider("hr", group, rng=rng)
    idmgr = IdentityManager(group, rng=rng)
    idmgr.trust_idp(idp)
    pub = Publisher(
        "pub", idmgr.params, idmgr.public_key, gkm_field=FAST_FIELD,
        attribute_bits=16, rng=rng,
    )
    pub.add_policy(parse_policy("role = doc", ["s1"], "d"))
    pub.add_policy(parse_policy("level >= 59", ["s2"], "d"))
    pub.add_policy(parse_policy("level < 30", ["s3"], "d"))
    return idp, idmgr, pub


class TestDecoyTokens:
    def test_decoy_token_verifies(self, world, rng):
        _, idmgr, pub = world
        token, x, r = idmgr.issue_decoy_token("pn-0077", "level", rng=rng)
        assert idmgr.verify_token(token)
        assert x >= (1 << 200)
        assert idmgr.params.verify_open(token.commitment, x, r)

    def test_decoy_registers_but_never_satisfies(self, world, rng):
        """A Sub with only a 'role' attribute also registers a decoy
        'level' token: the table fills, but no level CSS ever opens."""
        idp, idmgr, pub = world
        idp.enroll("dee", "role", "doc")
        nym = idmgr.assign_pseudonym()
        sub = Subscriber(nym, pub.params, rng=rng)
        token, x, r = idmgr.issue_token(
            nym, idp.assert_attribute("dee", "role"), rng=rng
        )
        sub.hold_token(token, x, r)
        decoy, dx, dr = idmgr.issue_decoy_token(nym, "level", rng=rng)
        sub.hold_token(decoy, dx, dr)

        results = register_all_attributes(pub, sub)
        assert results["role"]["role = doc"] is True
        assert results["level"] == {"level >= 59": False, "level < 30": False}
        # Publisher's table looks exactly like a real level-holder's.
        assert pub.table.has(nym, "level >= 59")
        assert pub.table.has(nym, "level < 30")

    def test_publisher_view_indistinguishable_from_real_attribute(self, rng):
        """Transcript kinds/sizes match between a decoy registrant and a
        genuine one."""

        def run(use_decoy, seed):
            local = random.Random(seed)
            group = get_group("nist-p192")
            idp = IdentityProvider("hr", group, rng=local)
            idmgr = IdentityManager(group, rng=local)
            idmgr.trust_idp(idp)
            pub = Publisher(
                "pub", idmgr.params, idmgr.public_key, gkm_field=FAST_FIELD,
                attribute_bits=16, rng=local,
            )
            pub.add_policy(parse_policy("level >= 59", ["s"], "d"))
            nym = idmgr.assign_pseudonym()
            sub = Subscriber(nym, pub.params, rng=local)
            if use_decoy:
                token, x, r = idmgr.issue_decoy_token(nym, "level", rng=local)
            else:
                idp.enroll("u", "level", 80)
                token, x, r = idmgr.issue_token(
                    nym, idp.assert_attribute("u", "level"), rng=local
                )
            sub.hold_token(token, x, r)
            transport = InMemoryTransport()
            register_all_attributes(pub, sub, transport)
            return [(m.kind, m.size) for m in transport.messages]

        assert run(True, seed=7) == run(False, seed=7)

    def test_decoy_cannot_decrypt_anything(self, world, rng):
        from repro.documents.model import Document

        idp, idmgr, pub = world
        nym = idmgr.assign_pseudonym()
        sub = Subscriber(nym, pub.params, rng=rng)
        for tag in ("role", "level"):
            token, x, r = idmgr.issue_decoy_token(nym, tag, rng=rng)
            sub.hold_token(token, x, r)
        register_all_attributes(pub, sub)
        doc = Document.of("d", {"s1": b"1", "s2": b"2", "s3": b"3"})
        package = pub.publish(doc)
        assert sub.receive(package) == {}
