"""Lifecycle tests for the OCBE worker pool (``--ocbe-workers``).

Three promises, each load-bearing for the opt-in:

* **Transcript identity** -- a pooled run is frame-identical to the
  serial run for every worker count: randomness is drawn in the parent
  in delivery order, workers only do deterministic arithmetic.
* **Crash degradation** -- a dead pool (killed workers, failed spawn)
  can slow a wave down but never wedge it or change its bytes: the
  session recomputes inline from the already-drawn randomness and warns
  once with :class:`OcbeWorkerPoolWarning`.
* **Durability separation** -- workers never journal; everything
  durable is written by the parent, so killing a pooled publisher is no
  worse than killing a serial one (covered at the OS-process level in
  ``tests/net/test_crash_recovery.py``).
"""

import random
import warnings

import pytest

from repro.gkm.acv import FAST_FIELD
from repro.groups import get_group
from repro.crypto.pedersen import PedersenParams
from repro.ocbe.parallel import (
    CommitPoolSetup,
    OcbeWorkerPool,
    OcbeWorkerPoolWarning,
)
from repro.policy.acp import parse_policy
from repro.system.idmgr import IdentityManager
from repro.system.idp import IdentityProvider
from repro.system.publisher import Publisher
from repro.system.service import (
    DisseminationService,
    IdentityManagerEndpoint,
    SubscriberClient,
    run_until_idle,
)
from repro.system.subscriber import Subscriber
from repro.system.transport import InMemoryTransport

USERS = {
    "ursa": {"role": "nur", "level": 61},
    "vic": {"role": "doc"},
    "wen": {"level": 20},
}


class RecordingTransport(InMemoryTransport):
    """InMemoryTransport that also captures routed frame bytes."""

    def __init__(self):
        super().__init__()
        self.frames = []

    def deliver(self, sender, receiver, kind, payload, note=""):
        self.frames.append((sender, receiver, kind, bytes(payload)))
        super().deliver(sender, receiver, kind, payload, note=note)


def _run_wave(pub_workers, idmgr_workers, breaker=None):
    """One end-to-end wave (tokens over the wire, then registration).

    ``breaker`` runs after the endpoints exist, with the live pools --
    the crash tests use it to kill workers before the wave is pumped.
    Returns (frames, results-per-user, css-per-user).
    """
    rng = random.Random(0x900C)
    group = get_group("nist-p192")
    idp = IdentityProvider("hr", group, rng=rng)
    idmgr = IdentityManager(group, rng=rng)
    idmgr.trust_idp(idp)
    pub = Publisher(
        "pub", idmgr.params, idmgr.public_key, gkm_field=FAST_FIELD,
        attribute_bits=16, rng=rng,
    )
    pub.add_policy(parse_policy("role = doc", ["s1"], "d"))
    pub.add_policy(parse_policy("role = nur AND level >= 59", ["s2"], "d"))
    pub.add_policy(parse_policy("level < 30", ["s3"], "d"))

    transport = RecordingTransport()
    service = DisseminationService(pub, transport, ocbe_workers=pub_workers)
    idmgr_ep = IdentityManagerEndpoint(
        idmgr, transport, ocbe_workers=idmgr_workers
    )
    try:
        clients = []
        for user in sorted(USERS):
            for attr, value in USERS[user].items():
                idp.enroll(user, attr, value)
            sub = Subscriber(idmgr.assign_pseudonym(), pub.params, rng=rng)
            client = SubscriberClient(sub, transport, "pub")
            for attr in sorted(USERS[user]):
                client.request_token(
                    attr, assertion=idp.assert_attribute(user, attr)
                )
            clients.append(client)
        if breaker is not None:
            breaker(service, idmgr_ep)
        run_until_idle([service, idmgr_ep, *clients])
        for client in clients:
            client.register_all_attributes()
        run_until_idle([service, idmgr_ep, *clients])
    finally:
        service.close()
        idmgr_ep.close()
    results = [dict(c.results) for c in clients]
    css = [sorted(c.subscriber.css_store) for c in clients]
    assert any(any(r.values()) for user in results for r in user.values())
    return transport.frames, results, css


def _kill_workers(pool):
    """Start the pool (if needed) and SIGKILL every worker process."""
    executor = pool._ensure()
    assert executor is not None
    # Force the spawn to actually happen before the kill.
    future = pool.submit_commit(1, 1)
    assert pool.result(future) is not None
    for process in list(executor._processes.values()):
        process.kill()
    for process in list(executor._processes.values()):
        process.join()


class TestPoolPrimitive:
    def test_workers_must_be_positive(self):
        setup = CommitPoolSetup(PedersenParams(get_group("nist-p192")))
        with pytest.raises(ValueError):
            OcbeWorkerPool(setup, 0)

    def test_commit_job_matches_local(self):
        params = PedersenParams(get_group("nist-p192"))
        pool = OcbeWorkerPool(CommitPoolSetup(params), 1)
        try:
            x, r = 1234, 56789
            future = pool.submit_commit(x, r)
            assert pool.result(future) == params.commit(x, r)[0]
            assert not pool.broken
        finally:
            pool.close()

    def test_killed_workers_degrade_with_one_warning(self):
        params = PedersenParams(get_group("nist-p192"))
        pool = OcbeWorkerPool(CommitPoolSetup(params), 1)
        try:
            _kill_workers(pool)
            with warnings.catch_warnings(record=True) as caught:
                warnings.simplefilter("always")
                # Every job outcome after the crash is "recompute
                # serially" (None), never an exception or a hang.
                futures = [pool.submit_commit(i, i) for i in range(4)]
                assert all(pool.result(f) is None for f in futures)
                assert pool.broken
                assert pool.submit_commit(9, 9) is None
            pool_warnings = [
                w for w in caught
                if issubclass(w.category, OcbeWorkerPoolWarning)
            ]
            assert len(pool_warnings) == 1
        finally:
            pool.close()

    def test_close_is_idempotent_and_safe_unstarted(self):
        params = PedersenParams(get_group("nist-p192"))
        pool = OcbeWorkerPool(CommitPoolSetup(params), 2)
        pool.close()
        pool.close()


class TestTranscriptIdentity:
    def test_pooled_frames_identical_to_serial(self):
        serial_frames, serial_results, serial_css = _run_wave(0, 0)
        with warnings.catch_warnings():
            # Identity must hold without the pool ever degrading.
            warnings.simplefilter("error", OcbeWorkerPoolWarning)
            pooled_frames, pooled_results, pooled_css = _run_wave(1, 1)
            two_frames, two_results, two_css = _run_wave(2, 0)
        assert pooled_frames == serial_frames
        assert two_frames == serial_frames
        assert pooled_results == serial_results == two_results
        assert pooled_css == serial_css == two_css


class TestCrashDegradation:
    def test_crashed_pools_degrade_to_identical_frames(self):
        serial_frames, serial_results, serial_css = _run_wave(0, 0)

        def breaker(service, idmgr_ep):
            _kill_workers(service.ocbe_pool)
            _kill_workers(idmgr_ep.ocbe_pool)

        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            frames, results, css = _run_wave(1, 1, breaker=breaker)
        assert frames == serial_frames
        assert results == serial_results
        assert css == serial_css
        assert any(
            issubclass(w.category, OcbeWorkerPoolWarning) for w in caught
        )
