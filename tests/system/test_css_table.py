"""Tests for the CSS table (the publisher's Table T / paper Table I)."""

import pytest

from repro.errors import GKMError
from repro.system.css import CssTable


@pytest.fixture
def table():
    t = CssTable()
    # Mirror the visible part of the paper's Table I.
    t.set("pn-0012", "role = doc", b"\x86\x57\x10")
    t.set("pn-0012", "role = nur", b"\x96\x87\x50")
    t.set("pn-0829", "level >= 59", b"\x47\x78\x50")
    t.set("pn-0829", "YoS >= 5", b"\x56\x45\x60")
    t.set("pn-0829", "YoS < 5", b"\x87\x53\x40")
    t.set("pn-1492", "level >= 59", b"\x11\x10\x90")
    t.set("pn-1492", "YoS >= 5", b"\x45\x78\x00")
    t.set("pn-1492", "YoS < 5", b"\x10\x49\x10")
    t.set("pn-1492", "role = doc", b"\x13\x01\x10")
    t.set("pn-1492", "role = nur", b"\x60\x98\x70")
    return t


class TestQueries:
    def test_select_single_condition(self, table):
        """The paper's SELECT * FROM T WHERE 'role = doc' <> NULL."""
        assert table.pseudonyms_with(["role = doc"]) == ["pn-0012", "pn-1492"]

    def test_select_conjunction(self, table):
        """acp4's conjunction: only pn-1492 may satisfy both conditions."""
        assert table.pseudonyms_with(["role = nur", "level >= 59"]) == ["pn-1492"]

    def test_css_row_ordering(self, table):
        row = table.css_row("pn-1492", ["role = nur", "level >= 59"])
        assert row == (b"\x60\x98\x70", b"\x11\x10\x90")

    def test_get_missing_cell(self, table):
        with pytest.raises(GKMError):
            table.get("pn-0012", "level >= 59")
        with pytest.raises(GKMError):
            table.get("pn-9999", "role = doc")

    def test_has(self, table):
        assert table.has("pn-0012", "role = doc")
        assert not table.has("pn-0012", "YoS >= 5")

    def test_counts(self, table):
        assert len(table) == 3
        assert table.cell_count() == 10

    def test_condition_keys(self, table):
        assert "YoS < 5" in table.condition_keys()
        assert len(table.condition_keys()) == 5


class TestMutation:
    def test_overwrite_is_credential_update(self, table):
        table.set("pn-0012", "role = doc", b"new")
        assert table.get("pn-0012", "role = doc") == b"new"

    def test_remove_cell(self, table):
        assert table.remove_cell("pn-0829", "YoS >= 5")
        assert not table.has("pn-0829", "YoS >= 5")
        assert not table.remove_cell("pn-0829", "YoS >= 5")  # idempotent

    def test_remove_last_cell_drops_row(self, table):
        for key in ("level >= 59", "YoS >= 5", "YoS < 5"):
            table.remove_cell("pn-0829", key)
        assert "pn-0829" not in table.pseudonyms()

    def test_remove_row(self, table):
        assert table.remove_row("pn-1492")
        assert not table.remove_row("pn-1492")
        assert len(table) == 2


class TestRendering:
    def test_render_shape(self, table):
        text = table.render()
        lines = text.splitlines()
        assert lines[0].startswith("nym")
        assert len(lines) == 2 + 3  # header + rule + 3 rows
        assert "pn-0829" in text
        assert "--" in text  # absent cells

    def test_render_with_explicit_columns(self, table):
        text = table.render(["role = doc", "role = nur"])
        assert "YoS" not in text
