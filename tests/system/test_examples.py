"""Every example script must run end-to-end (they double as integration
tests and as living documentation)."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parents[2] / "examples"

FAST_EXAMPLES = [
    "quickstart.py",
    "ehr_hospital.py",
    "subscription_lifecycle.py",
    "privacy_audit.py",
    pytest.param("scalability_buckets.py", marks=pytest.mark.slow),  # large-N GKM sweep
    "hierarchical_access.py",
    "wire_protocol.py",
    "networked_service.py",  # broker + entities as real OS processes
    "crash_recovery.py",  # SIGKILL the publisher, recover from --data-dir
]


@pytest.mark.parametrize("script", FAST_EXAMPLES)
def test_example_runs(script):
    path = EXAMPLES_DIR / script
    assert path.exists(), path
    result = subprocess.run(
        [sys.executable, str(path)],
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    assert result.stdout  # every example narrates what it does


def test_evaluation_harness_importable():
    """The big harness is exercised at tiny scale by tests/bench; here we
    only check it parses its CLI."""
    path = EXAMPLES_DIR / "reproduce_evaluation.py"
    result = subprocess.run(
        [sys.executable, str(path), "--help"],
        capture_output=True,
        text=True,
        timeout=60,
    )
    assert result.returncode == 0
    assert "--paper" in result.stdout
