"""Tests for identity tokens, IdPs and the IdMgr."""


import pytest

from repro.errors import SignatureError, SystemError_
from repro.groups import get_group
from repro.policy.encoding import encode_value
from repro.system.identity import IdentityToken, token_signing_bytes
from repro.system.idmgr import IdentityManager
from repro.system.idp import IdentityProvider


@pytest.fixture
def world(rng):
    group = get_group("nist-p192")
    idp = IdentityProvider("hr", group, rng=rng)
    idmgr = IdentityManager(group, rng=rng)
    idmgr.trust_idp(idp)
    idp.enroll("bob", "age", 28)
    idp.enroll("bob", "role", "nurse")
    return idp, idmgr


class TestIdp:
    def test_assertion_roundtrip(self, world):
        idp, _ = world
        assertion = idp.assert_attribute("bob", "age")
        assert assertion.value == 28
        assert idp.verify(assertion)

    def test_unknown_subject(self, world):
        idp, _ = world
        with pytest.raises(SystemError_):
            idp.assert_attribute("mallory", "age")

    def test_unknown_attribute(self, world):
        idp, _ = world
        with pytest.raises(SystemError_):
            idp.assert_attribute("bob", "height")

    def test_tampered_assertion_rejected(self, world):
        idp, _ = world
        assertion = idp.assert_attribute("bob", "age")
        forged = type(assertion)(
            subject=assertion.subject,
            name=assertion.name,
            value=99,
            issuer=assertion.issuer,
            signature=assertion.signature,
        )
        assert not idp.verify(forged)


class TestIdMgr:
    def test_token_issuance_example_1(self, world, rng):
        """Example 1: Bob gets a token for his age; the committed value is
        hidden but opens correctly with (x, r)."""
        idp, idmgr = world
        assertion = idp.assert_attribute("bob", "age")
        token, x, r = idmgr.issue_token("pn-1492", assertion, rng=rng)
        assert token.nym == "pn-1492"
        assert token.tag == "age"
        assert x == encode_value(28)
        assert idmgr.params.verify_open(token.commitment, x, r)
        assert idmgr.verify_token(token)

    def test_untrusted_idp_rejected(self, rng):
        group = get_group("nist-p192")
        rogue = IdentityProvider("rogue", group, rng=rng)
        rogue.enroll("eve", "age", 99)
        idmgr = IdentityManager(group, rng=rng)
        with pytest.raises(SystemError_):
            idmgr.issue_token("pn-1", rogue.assert_attribute("eve", "age"), rng=rng)

    def test_bad_idp_signature_rejected(self, world, rng):
        idp, idmgr = world
        assertion = idp.assert_attribute("bob", "age")
        forged = type(assertion)(
            subject="bob",
            name="age",
            value=99,  # changed after signing
            issuer="hr",
            signature=assertion.signature,
        )
        with pytest.raises(SignatureError):
            idmgr.issue_token("pn-1", forged, rng=rng)

    def test_token_tamper_detected(self, world, rng):
        idp, idmgr = world
        assertion = idp.assert_attribute("bob", "role")
        token, _, _ = idmgr.issue_token("pn-2", assertion, rng=rng)
        forged = IdentityToken(
            nym="pn-9",  # different pseudonym
            tag=token.tag,
            commitment=token.commitment,
            signature=token.signature,
        )
        assert not idmgr.verify_token(forged)

    def test_pseudonyms_unique(self, world):
        _, idmgr = world
        nyms = {idmgr.assign_pseudonym() for _ in range(10)}
        assert len(nyms) == 10

    def test_signing_bytes_canonical(self, world, rng):
        idp, idmgr = world
        assertion = idp.assert_attribute("bob", "age")
        token, _, _ = idmgr.issue_token("pn-3", assertion, rng=rng)
        assert token.signing_bytes() == token_signing_bytes(
            token.nym, token.tag, token.commitment
        )
        assert token.byte_size() > 0

    def test_string_attribute_committed(self, world, rng):
        idp, idmgr = world
        assertion = idp.assert_attribute("bob", "role")
        token, x, r = idmgr.issue_token("pn-4", assertion, rng=rng)
        assert x == encode_value("nurse")
        assert idmgr.params.verify_open(token.commitment, x, r)
