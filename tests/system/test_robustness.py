"""Failure injection: corrupted state and hostile inputs must degrade to
"no access", never to crashes or wrong plaintexts."""

import random

import pytest

from repro.documents.package import BroadcastPackage, EncryptedSubdocument
from repro.workloads.ehr import build_hospital


@pytest.fixture(scope="module")
def hospital():
    return build_hospital(rng=random.Random(55))


class TestCorruptedSubscriberState:
    def test_corrupted_css_yields_no_access(self, hospital):
        package = hospital.publisher.publish(hospital.document)
        carol = hospital.subscribers["carol"]
        saved = dict(carol.css_store)
        try:
            carol.css_store["role = doc"] = b"\x00" * 16  # corrupted
            got = carol.receive(package)
            assert got == {}  # authenticated decryption catches it
        finally:
            carol.css_store.clear()
            carol.css_store.update(saved)

    def test_missing_css_for_one_condition(self, hospital):
        package = hospital.publisher.publish(hospital.document)
        dave = hospital.subscribers["dave"]
        saved = dict(dave.css_store)
        try:
            # Dave loses his level CSS locally: acp4 becomes underivable,
            # nothing else breaks.
            del dave.css_store["level >= 59"]
            got = dave.receive(package)
            assert got == {}  # dave only qualified through acp4
        finally:
            dave.css_store.clear()
            dave.css_store.update(saved)

    def test_swapped_css_between_conditions(self, hospital):
        package = hospital.publisher.publish(hospital.document)
        dave = hospital.subscribers["dave"]
        saved = dict(dave.css_store)
        try:
            a = dave.css_store["role = nur"]
            b = dave.css_store["level >= 59"]
            dave.css_store["role = nur"], dave.css_store["level >= 59"] = b, a
            assert dave.receive(package) == {}
        finally:
            dave.css_store.clear()
            dave.css_store.update(saved)


class TestTamperedBroadcast:
    def test_tampered_ciphertext_rejected(self, hospital):
        package = hospital.publisher.publish(hospital.document)
        tampered_subs = []
        for sub in package.subdocuments:
            flipped = bytearray(sub.ciphertext)
            flipped[len(flipped) // 2] ^= 0xFF
            tampered_subs.append(
                EncryptedSubdocument(
                    name=sub.name,
                    config_id=sub.config_id,
                    ciphertext=bytes(flipped),
                )
            )
        tampered = BroadcastPackage(
            document=package.document,
            headers=package.headers,
            subdocuments=tuple(tampered_subs),
        )
        for sub in hospital.subscribers.values():
            assert sub.receive(tampered) == {}

    def test_headers_swapped_between_configs(self, hospital):
        """Pointing subdocuments at the wrong configuration key fails
        authentication rather than decrypting junk."""
        package = hospital.publisher.publish(hospital.document)
        non_empty = [h for h in package.headers if h.acv is not None]
        if len(non_empty) < 2:
            pytest.skip("need two configurations")
        remap = {
            non_empty[0].config_id: non_empty[1].config_id,
            non_empty[1].config_id: non_empty[0].config_id,
        }
        swapped = BroadcastPackage(
            document=package.document,
            headers=package.headers,
            subdocuments=tuple(
                EncryptedSubdocument(
                    name=sub.name,
                    config_id=remap.get(sub.config_id, sub.config_id),
                    ciphertext=sub.ciphertext,
                )
                for sub in package.subdocuments
            ),
        )
        carol = hospital.subscribers["carol"]
        correct = carol.receive(package)
        confused = carol.receive(swapped)
        for name, plaintext in confused.items():
            assert plaintext == hospital.document.get(name).content
        assert set(confused) <= set(correct)

    def test_empty_package(self, hospital):
        empty = BroadcastPackage(document="x", headers=(), subdocuments=())
        for sub in hospital.subscribers.values():
            assert sub.receive(empty) == {}


class TestPublishOptions:
    def test_explicit_capacity(self, hospital):
        package = hospital.publisher.publish(hospital.document, capacity=40)
        for header in package.headers:
            if header.acv is not None:
                assert header.acv.capacity == 40
        carol = hospital.subscribers["carol"]
        assert "Medication" in carol.receive(package)

    def test_capacity_too_small_raises(self, hospital):
        from repro.errors import CapacityError

        with pytest.raises(CapacityError):
            hospital.publisher.publish(hospital.document, capacity=1)
