"""Integration tests: the full Example-4 lifecycle including rekeying."""

import random

import pytest

from repro.workloads.ehr import build_hospital

EXPECTED_ACCESS = {
    "alice": {"ContactInfo"},
    "bob": {"BillingInfo"},
    "carol": {"Medication", "PhysicalExams", "LabRecords", "Plan"},
    "dave": {"ContactInfo", "Medication", "PhysicalExams", "LabRecords", "Plan"},
    "erin": set(),  # the level-58 nurse of the paper's walk-through
    "frank": {"ContactInfo", "LabRecords"},
    "grace": {"BillingInfo", "Medication"},
}


@pytest.fixture(scope="module")
def hospital():
    return build_hospital(rng=random.Random(1))


class TestBroadcast:
    def test_authorized_views_match_example_4(self, hospital):
        package = hospital.publisher.publish(hospital.document)
        for name, sub in hospital.subscribers.items():
            got = set(sub.receive(package))
            assert got == EXPECTED_ACCESS[name], name

    def test_decrypted_content_correct(self, hospital):
        package = hospital.publisher.publish(hospital.document)
        carol = hospital.subscribers["carol"].receive(package)
        assert carol["Medication"] == hospital.document.get("Medication").content

    def test_package_survives_serialization(self, hospital):
        from repro.documents.package import BroadcastPackage

        package = hospital.publisher.publish(hospital.document)
        rewired = BroadcastPackage.from_bytes(package.to_bytes())
        got = set(hospital.subscribers["frank"].receive(rewired))
        assert got == EXPECTED_ACCESS["frank"]

    def test_nobody_decrypts_rest(self, hospital):
        package = hospital.publisher.publish(hospital.document)
        for sub in hospital.subscribers.values():
            assert "_rest" not in sub.receive(package)

    def test_rekey_changes_keys_but_not_access(self, hospital):
        pub = hospital.publisher
        p1 = pub.publish(hospital.document)
        keys1 = dict(pub.last_keys)
        p2 = pub.publish(hospital.document)
        keys2 = dict(pub.last_keys)
        assert keys1 != keys2  # fresh keys per publish
        for name, sub in hospital.subscribers.items():
            assert set(sub.receive(p2)) == EXPECTED_ACCESS[name], name


class TestRevocation:
    def test_subscription_revocation(self):
        hospital = build_hospital(rng=random.Random(2))
        pub = hospital.publisher
        carol_nym = hospital.nyms["carol"]
        assert pub.revoke_subscription(carol_nym)
        package = pub.publish(hospital.document)
        # Carol (revoked) decrypts nothing; everyone else is unaffected.
        assert hospital.subscribers["carol"].receive(package) == {}
        for name in ("alice", "dave", "grace"):
            assert set(hospital.subscribers[name].receive(package)) == (
                EXPECTED_ACCESS[name]
            ), name

    def test_credential_revocation(self):
        hospital = build_hospital(rng=random.Random(3))
        pub = hospital.publisher
        dave_nym = hospital.nyms["dave"]
        # Remove Dave's level credential: he no longer satisfies acp4.
        assert pub.revoke_credential(dave_nym, "level >= 59")
        package = pub.publish(hospital.document)
        assert hospital.subscribers["dave"].receive(package) == {}

    def test_revocation_is_transparent_to_others(self):
        """No subscriber state changed: others derive new keys from the new
        broadcast with their original CSSs (the paper's 'transparent rekey')."""
        hospital = build_hospital(rng=random.Random(4))
        pub = hospital.publisher
        before = {
            name: dict(sub.css_store)
            for name, sub in hospital.subscribers.items()
        }
        pub.revoke_subscription(hospital.nyms["bob"])
        package = pub.publish(hospital.document)
        for name, sub in hospital.subscribers.items():
            assert sub.css_store == before[name]  # untouched
            if name != "bob":
                assert set(sub.receive(package)) == EXPECTED_ACCESS[name]

    def test_revoke_unknown_nym(self, hospital):
        assert not hospital.publisher.revoke_subscription("pn-9999")
        assert not hospital.publisher.revoke_credential("pn-9999", "role = doc")


class TestLateJoin:
    def test_new_subscriber_after_first_broadcast(self):
        from repro.system.registration import register_all_attributes
        from repro.system.subscriber import Subscriber

        rng = random.Random(5)
        hospital = build_hospital(rng=rng)
        pub = hospital.publisher
        p1 = pub.publish(hospital.document)

        # A new doctor joins.
        idp, idmgr = hospital.idp, hospital.idmgr
        idp.enroll("heidi", "role", "doc")
        idp.enroll("heidi", "level", 66)
        nym = idmgr.assign_pseudonym()
        heidi = Subscriber(nym, pub.params, rng=rng)
        for attr in ("role", "level"):
            token, x, r = idmgr.issue_token(
                nym, idp.assert_attribute("heidi", attr), rng=rng
            )
            heidi.hold_token(token, x, r)
        register_all_attributes(pub, heidi)

        # Backward secrecy at the system level: the old broadcast's keys
        # were generated before heidi existed in T.
        assert heidi.receive(p1) == {}
        # After the next publish she reads the doctor view.
        p2 = pub.publish(hospital.document)
        assert set(heidi.receive(p2)) == EXPECTED_ACCESS["carol"]
        for name, sub in hospital.subscribers.items():
            assert set(sub.receive(p2)) == EXPECTED_ACCESS[name]


class TestCapacitySlack:
    def test_capacity_slack_hides_population(self):
        h1 = build_hospital(rng=random.Random(6))
        h1.publisher.capacity_slack = 10
        package = h1.publisher.publish(h1.document)
        for name, sub in h1.subscribers.items():
            assert set(sub.receive(package)) == EXPECTED_ACCESS[name]
        header = package.header_for("pc1")
        assert header.acv.capacity > 10
