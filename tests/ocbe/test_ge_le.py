"""Tests for the bitwise GE- and LE-OCBE protocols."""

import random

import pytest

from repro.errors import DecryptionError, PredicateError, ProtocolStateError
from repro.crypto.pedersen import PedersenParams
from repro.ocbe.base import OCBESetup, run_ocbe
from repro.ocbe.ge import GeOCBEReceiver, GeOCBESender
from repro.ocbe.le import LeOCBEReceiver, LeOCBESender
from repro.ocbe.predicates import GePredicate, LePredicate

MESSAGE = b"css-0123456789abcdef"


def run_ge(setup, x0, x, rng, ell=10):
    predicate = GePredicate(x0, ell)
    commitment, r = setup.pedersen.commit(x, rng=rng)
    sender = GeOCBESender(setup, predicate, rng)
    receiver = GeOCBEReceiver(setup, predicate, x, r, commitment, rng)
    aux = receiver.commitment_message()
    envelope = sender.compose(commitment, aux, MESSAGE)
    return receiver.open(envelope)


def run_le(setup, x0, x, rng, ell=10):
    predicate = LePredicate(x0, ell)
    commitment, r = setup.pedersen.commit(x, rng=rng)
    sender = LeOCBESender(setup, predicate, rng)
    receiver = LeOCBEReceiver(setup, predicate, x, r, commitment, rng)
    aux = receiver.commitment_message()
    envelope = sender.compose(commitment, aux, MESSAGE)
    return receiver.open(envelope)


class TestGeCorrectness:
    @pytest.mark.parametrize("x0,x", [(59, 59), (59, 60), (0, 0), (0, 1023), (1023, 1023)])
    def test_satisfied(self, ec_setup, rng, x0, x):
        assert run_ge(ec_setup, x0, x, rng) == MESSAGE

    @pytest.mark.parametrize("x0,x", [(59, 58), (59, 0), (1023, 1022), (1, 0)])
    def test_unsatisfied(self, ec_setup, rng, x0, x):
        with pytest.raises(DecryptionError):
            run_ge(ec_setup, x0, x, rng)

    def test_single_bit_domain(self, ec_setup, rng):
        assert run_ge(ec_setup, 1, 1, rng, ell=1) == MESSAGE
        with pytest.raises(DecryptionError):
            run_ge(ec_setup, 1, 0, rng, ell=1)

    def test_boundary_difference_max(self, ec_setup, rng):
        """x - x0 = 2^l - 1, the largest honest difference."""
        assert run_ge(ec_setup, 0, 1023, rng, ell=10) == MESSAGE


class TestLeCorrectness:
    @pytest.mark.parametrize("x0,x", [(59, 59), (59, 58), (1023, 0), (0, 0)])
    def test_satisfied(self, ec_setup, rng, x0, x):
        assert run_le(ec_setup, x0, x, rng) == MESSAGE

    @pytest.mark.parametrize("x0,x", [(59, 60), (0, 1), (5, 1023)])
    def test_unsatisfied(self, ec_setup, rng, x0, x):
        with pytest.raises(DecryptionError):
            run_le(ec_setup, x0, x, rng)


class TestProtocolMechanics:
    def test_sender_verifies_recombination(self, ec_setup, rng):
        """Tampered bit commitments fail the prod c_i^{2^i} check."""
        predicate = GePredicate(3, 6)
        commitment, r = ec_setup.pedersen.commit(9, rng=rng)
        receiver = GeOCBEReceiver(ec_setup, predicate, 9, r, commitment, rng)
        aux = receiver.commitment_message()
        other_commitment, _ = ec_setup.pedersen.commit(7, rng=rng)
        sender = GeOCBESender(ec_setup, predicate, rng)
        with pytest.raises(ProtocolStateError):
            sender.compose(other_commitment, aux, MESSAGE)

    def test_sender_rejects_wrong_arity(self, ec_setup, rng):
        predicate = GePredicate(3, 6)
        commitment, r = ec_setup.pedersen.commit(9, rng=rng)
        receiver = GeOCBEReceiver(
            ec_setup, GePredicate(3, 5), 9, r, commitment, rng
        )
        aux = receiver.commitment_message()
        sender = GeOCBESender(ec_setup, predicate, rng)
        with pytest.raises(ProtocolStateError):
            sender.compose(commitment, aux, MESSAGE)

    def test_open_before_commit_raises(self, ec_setup, rng):
        predicate = GePredicate(3, 6)
        commitment, r = ec_setup.pedersen.commit(9, rng=rng)
        receiver = GeOCBEReceiver(ec_setup, predicate, 9, r, commitment, rng)
        with pytest.raises(ProtocolStateError):
            receiver.open(None)

    def test_envelope_arity_checked(self, ec_setup, rng):
        predicate = GePredicate(3, 6)
        commitment, r = ec_setup.pedersen.commit(9, rng=rng)
        sender = GeOCBESender(ec_setup, predicate, rng)
        receiver = GeOCBEReceiver(ec_setup, predicate, 9, r, commitment, rng)
        aux = receiver.commitment_message()
        envelope = sender.compose(commitment, aux, MESSAGE)
        truncated = type(envelope)(
            eta=envelope.eta,
            bit_ciphers=envelope.bit_ciphers[:-1],
            ciphertext=envelope.ciphertext,
        )
        with pytest.raises(ProtocolStateError):
            receiver.open(truncated)

    def test_ell_too_large_for_group(self, rng, toy_group):
        """2^(l+1) >= p must be rejected (toy group has order 11)."""
        setup = OCBESetup(pedersen=PedersenParams(toy_group))
        with pytest.raises(PredicateError):
            GeOCBESender(setup, GePredicate(1, ell=4), rng)

    def test_wrong_predicate_type(self, ec_setup, rng):
        with pytest.raises(PredicateError):
            GeOCBESender(ec_setup, LePredicate(1, 4), rng)
        with pytest.raises(PredicateError):
            LeOCBESender(ec_setup, GePredicate(1, 4), rng)

    def test_commit_message_sizes(self, ec_setup, rng):
        predicate = GePredicate(3, 8)
        commitment, r = ec_setup.pedersen.commit(9, rng=rng)
        receiver = GeOCBEReceiver(ec_setup, predicate, 9, r, commitment, rng)
        aux = receiver.commitment_message()
        assert len(aux.commitments) == 8
        assert aux.byte_size() > 0

    def test_envelope_size_scales_with_ell(self, ec_setup, rng):
        sizes = {}
        for ell in (4, 8):
            predicate = GePredicate(1, ell)
            commitment, r = ec_setup.pedersen.commit(3, rng=rng)
            sender = GeOCBESender(ec_setup, predicate, rng)
            receiver = GeOCBEReceiver(ec_setup, predicate, 3, r, commitment, rng)
            envelope = sender.compose(
                commitment, receiver.commitment_message(), MESSAGE
            )
            sizes[ell] = envelope.byte_size()
        assert sizes[8] > sizes[4]

    def test_run_ocbe_dispatch(self, ec_setup, rng):
        predicate = GePredicate(5, 8)
        commitment, r = ec_setup.pedersen.commit(9, rng=rng)
        assert run_ocbe(ec_setup, predicate, 9, r, commitment, MESSAGE, rng) == MESSAGE


class TestObliviousness:
    def test_sender_cannot_distinguish_receivers(self, ec_setup):
        """The sender-side check passes for qualified AND unqualified
        receivers -- by design, so the Pub learns nothing from running the
        protocol."""
        predicate = GePredicate(10, 8)
        for x in (15, 5):  # satisfied / unsatisfied
            rng = random.Random(x)
            commitment, r = ec_setup.pedersen.commit(x, rng=rng)
            receiver = GeOCBEReceiver(ec_setup, predicate, x, r, commitment, rng)
            aux = receiver.commitment_message()
            sender = GeOCBESender(ec_setup, predicate, rng)
            envelope = sender.compose(commitment, aux, MESSAGE)  # no exception
            assert len(envelope.bit_ciphers) == 8
