"""Tests for the predicate objects."""

import pytest

from repro.errors import InvalidParameterError, PredicateError
from repro.ocbe.predicates import (
    DEFAULT_BIT_LENGTH,
    EqPredicate,
    GePredicate,
    GtPredicate,
    LePredicate,
    LtPredicate,
    NePredicate,
    predicate_from_op,
)


class TestEvaluation:
    def test_eq(self):
        p = EqPredicate(5)
        assert p.evaluate(5)
        assert not p.evaluate(4)

    @pytest.mark.parametrize(
        "cls,x0,truths",
        [
            (GePredicate, 5, {4: False, 5: True, 6: True}),
            (LePredicate, 5, {4: True, 5: True, 6: False}),
            (GtPredicate, 5, {5: False, 6: True}),
            (LtPredicate, 5, {4: True, 5: False}),
            (NePredicate, 5, {4: True, 5: False, 6: True}),
        ],
    )
    def test_bounded(self, cls, x0, truths):
        p = cls(x0, ell=8)
        for x, expected in truths.items():
            assert p.evaluate(x) == expected

    def test_describe_readable(self):
        assert "=" in EqPredicate(3).describe()
        assert ">= 5" in GePredicate(5, 8).describe()
        assert repr(LtPredicate(9, 8))


class TestValidation:
    def test_threshold_outside_domain(self):
        with pytest.raises(InvalidParameterError):
            GePredicate(256, ell=8)
        with pytest.raises(InvalidParameterError):
            GePredicate(-1, ell=8)

    def test_bad_ell(self):
        with pytest.raises(InvalidParameterError):
            GePredicate(0, ell=0)

    def test_check_domain(self):
        p = GePredicate(5, ell=8)
        p.check_domain(255)
        with pytest.raises(PredicateError):
            p.check_domain(256)

    def test_gt_unsatisfiable(self):
        with pytest.raises(PredicateError):
            GtPredicate((1 << 8) - 1, ell=8).as_ge()

    def test_lt_unsatisfiable(self):
        with pytest.raises(PredicateError):
            LtPredicate(0, ell=8).as_le()

    def test_gt_lt_conversions(self):
        assert GtPredicate(5, 8).as_ge() == GePredicate(6, 8)
        assert LtPredicate(5, 8).as_le() == LePredicate(4, 8)

    def test_equality_semantics(self):
        assert GePredicate(5, 8) == GePredicate(5, 8)
        assert GePredicate(5, 8) != GePredicate(5, 9)
        assert GePredicate(5, 8) != LePredicate(5, 8)


class TestFactory:
    @pytest.mark.parametrize(
        "op,cls",
        [
            ("=", EqPredicate),
            ("==", EqPredicate),
            ("!=", NePredicate),
            (">=", GePredicate),
            ("<=", LePredicate),
            (">", GtPredicate),
            ("<", LtPredicate),
        ],
    )
    def test_dispatch(self, op, cls):
        assert isinstance(predicate_from_op(op, 5), cls)

    def test_unknown_op(self):
        with pytest.raises(PredicateError):
            predicate_from_op("~", 5)

    def test_default_ell(self):
        assert predicate_from_op(">=", 5).ell == DEFAULT_BIT_LENGTH
