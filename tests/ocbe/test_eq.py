"""Tests for EQ-OCBE."""

import random

import pytest

from repro.errors import DecryptionError, ProtocolStateError
from repro.ocbe.eq import EqOCBEReceiver, EqOCBESender
from repro.ocbe.predicates import EqPredicate

MESSAGE = b"the secret payload"


def run(setup, x0, x, rng):
    predicate = EqPredicate(x0)
    commitment, r = setup.pedersen.commit(x, rng=rng)
    sender = EqOCBESender(setup, predicate, rng)
    receiver = EqOCBEReceiver(setup, predicate, x, r, commitment, rng)
    envelope = sender.compose(commitment, receiver.commitment_message(), MESSAGE)
    return receiver.open(envelope)


class TestCorrectness:
    def test_satisfied(self, ec_setup, rng):
        assert run(ec_setup, 28, 28, rng) == MESSAGE

    def test_unsatisfied(self, ec_setup, rng):
        with pytest.raises(DecryptionError):
            run(ec_setup, 28, 29, rng)

    def test_zero_value(self, ec_setup, rng):
        assert run(ec_setup, 0, 0, rng) == MESSAGE

    def test_large_value(self, ec_setup, rng):
        big = 2**127  # string-encoded attributes are up to 128 bits
        assert run(ec_setup, big, big, rng) == MESSAGE

    def test_off_by_large_amount(self, ec_setup, rng):
        with pytest.raises(DecryptionError):
            run(ec_setup, 5, 2**100, rng)

    def test_empty_message(self, ec_setup, rng):
        predicate = EqPredicate(1)
        commitment, r = ec_setup.pedersen.commit(1, rng=rng)
        sender = EqOCBESender(ec_setup, predicate, rng)
        receiver = EqOCBEReceiver(ec_setup, predicate, 1, r, commitment, rng)
        envelope = sender.compose(commitment, None, b"")
        assert receiver.open(envelope) == b""


class TestProtocolDetails:
    def test_rejects_unexpected_aux(self, ec_setup, rng):
        predicate = EqPredicate(1)
        commitment, _ = ec_setup.pedersen.commit(1, rng=rng)
        sender = EqOCBESender(ec_setup, predicate, rng)
        with pytest.raises(ProtocolStateError):
            sender.compose(commitment, object(), MESSAGE)

    def test_envelope_freshness(self, ec_setup, rng):
        """Two envelopes for the same commitment use fresh y."""
        predicate = EqPredicate(1)
        commitment, _ = ec_setup.pedersen.commit(1, rng=rng)
        sender = EqOCBESender(ec_setup, predicate, rng)
        e1 = sender.compose(commitment, None, MESSAGE)
        e2 = sender.compose(commitment, None, MESSAGE)
        assert e1.eta != e2.eta

    def test_byte_size_accounting(self, ec_setup, rng):
        predicate = EqPredicate(1)
        commitment, _ = ec_setup.pedersen.commit(1, rng=rng)
        sender = EqOCBESender(ec_setup, predicate, rng)
        envelope = sender.compose(commitment, None, MESSAGE)
        # byte_size is the exact wire size: components + framing overhead.
        assert envelope.byte_size() == len(envelope.to_bytes())
        assert envelope.byte_size() > len(envelope.eta.to_bytes()) + len(
            envelope.ciphertext
        )

    def test_sender_transcript_independent_of_value(self, ec_setup):
        """The envelope distribution depends only on the commitment the Sub
        presents, never on x -- same rng seed, satisfied vs not, produces
        structurally identical transcripts (eta differs only through the
        commitment input)."""
        predicate = EqPredicate(5)
        c_sat, _ = ec_setup.pedersen.commit(5, rng=random.Random(1))
        c_unsat, _ = ec_setup.pedersen.commit(6, rng=random.Random(1))
        env_sat = EqOCBESender(ec_setup, predicate, random.Random(2)).compose(
            c_sat, None, MESSAGE
        )
        env_unsat = EqOCBESender(ec_setup, predicate, random.Random(2)).compose(
            c_unsat, None, MESSAGE
        )
        # Same eta (same y, same h), same ciphertext length: nothing in the
        # transcript's shape depends on whether the receiver qualifies.
        assert env_sat.eta == env_unsat.eta
        assert len(env_sat.ciphertext) == len(env_unsat.ciphertext)

    def test_works_on_genus2(self, genus2_group, rng):
        from repro.crypto.pedersen import PedersenParams
        from repro.ocbe.base import OCBESetup

        setup = OCBESetup(pedersen=PedersenParams(genus2_group))
        assert run(setup, 28, 28, rng) == MESSAGE
        with pytest.raises(DecryptionError):
            run(setup, 28, 27, rng)
