"""Tests for the derived GT/LT/NE protocols and the dispatch helpers."""

import pytest

from repro.errors import DecryptionError, PredicateError
from repro.ocbe.base import receiver_for, run_ocbe, sender_for
from repro.ocbe.derived import (
    GtOCBESender,
    LtOCBESender,
    NeOCBEReceiver,
    NeOCBESender,
)
from repro.ocbe.predicates import (
    EqPredicate,
    GePredicate,
    GtPredicate,
    LePredicate,
    LtPredicate,
    NePredicate,
    Predicate,
)

MESSAGE = b"derived-protocol-payload"


def attempt(setup, predicate, x, rng):
    commitment, r = setup.pedersen.commit(x, rng=rng)
    try:
        return run_ocbe(setup, predicate, x, r, commitment, MESSAGE, rng) == MESSAGE
    except DecryptionError:
        return False


class TestGt:
    @pytest.mark.parametrize("x,expected", [(11, True), (10, False), (9, False)])
    def test_gt(self, ec_setup, rng, x, expected):
        assert attempt(ec_setup, GtPredicate(10, 8), x, rng) == expected


class TestLt:
    @pytest.mark.parametrize("x,expected", [(9, True), (10, False), (11, False)])
    def test_lt(self, ec_setup, rng, x, expected):
        assert attempt(ec_setup, LtPredicate(10, 8), x, rng) == expected


class TestNe:
    @pytest.mark.parametrize("x,expected", [(9, True), (11, True), (10, False)])
    def test_ne(self, ec_setup, rng, x, expected):
        assert attempt(ec_setup, NePredicate(10, 8), x, rng) == expected

    def test_ne_boundaries(self, ec_setup, rng):
        assert attempt(ec_setup, NePredicate(0, 8), 255, rng)
        assert attempt(ec_setup, NePredicate(255, 8), 0, rng)
        assert not attempt(ec_setup, NePredicate(0, 8), 0, rng)

    def test_ne_envelope_contains_both_halves(self, ec_setup, rng):
        predicate = NePredicate(10, 8)
        commitment, r = ec_setup.pedersen.commit(11, rng=rng)
        sender = NeOCBESender(ec_setup, predicate, rng)
        receiver = NeOCBEReceiver(ec_setup, predicate, 11, r, commitment, rng)
        aux = receiver.commitment_message()
        envelope = sender.compose(commitment, aux, MESSAGE)
        assert envelope.gt_envelope is not None
        assert envelope.lt_envelope is not None
        # Exact wire size: both halves plus the one-byte presence flags.
        assert envelope.byte_size() == len(envelope.to_bytes())
        assert envelope.byte_size() == 1 + (
            envelope.gt_envelope.byte_size() + envelope.lt_envelope.byte_size()
        )

    def test_type_checks(self, ec_setup, rng):
        with pytest.raises(PredicateError):
            NeOCBESender(ec_setup, GtPredicate(1, 4), rng)
        with pytest.raises(PredicateError):
            GtOCBESender(ec_setup, NePredicate(1, 4), rng)
        with pytest.raises(PredicateError):
            LtOCBESender(ec_setup, GtPredicate(1, 4), rng)


class TestDispatch:
    @pytest.mark.parametrize(
        "predicate,x,expected",
        [
            (EqPredicate(5), 5, True),
            (EqPredicate(5), 6, False),
            (GePredicate(5, 8), 5, True),
            (LePredicate(5, 8), 6, False),
            (GtPredicate(5, 8), 6, True),
            (LtPredicate(5, 8), 4, True),
            (NePredicate(5, 8), 4, True),
        ],
    )
    def test_round_trips_all_ops(self, ec_setup, rng, predicate, x, expected):
        assert attempt(ec_setup, predicate, x, rng) == expected

    def test_unknown_predicate_rejected(self, ec_setup, rng):
        class Weird(Predicate):
            def evaluate(self, x):
                return True

            def describe(self):
                return "weird"

        with pytest.raises(PredicateError):
            sender_for(ec_setup, Weird(), rng)
        with pytest.raises(PredicateError):
            receiver_for(ec_setup, Weird(), 0, 0, None, rng)
