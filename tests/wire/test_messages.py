"""Round-trip tests for every typed wire message.

For each message: encode -> decode -> re-encode must be byte-identical,
and truncating or corrupting the frame must raise a :mod:`repro.errors`
type (never ``struct.error`` / ``IndexError`` / ``UnicodeDecodeError``).
"""

import pytest

from repro.documents.model import Document
from repro.errors import ReproError, SerializationError
from repro.ocbe.base import receiver_for, sender_for
from repro.policy.condition import parse_condition
from repro.wire.messages import (
    MESSAGE_TYPES,
    AuxCommitments,
    BroadcastMessage,
    ConditionList,
    ConditionQuery,
    OCBEEnvelope,
    RegistrationAck,
    RegistrationRequest,
    TokenGrant,
    TokenRequest,
    decode_message,
    encode_message,
)


def _ocbe_exchange(pub, sub, condition_text):
    """Run one OCBE exchange in-process; returns (aux, envelope)."""
    condition = parse_condition(condition_text)
    wallet = sub.wallet_for(condition.name)
    predicate = condition.predicate(pub.params.attribute_bits)
    sender = sender_for(pub._ocbe, predicate, pub._rng)
    receiver = receiver_for(
        sub.ocbe_setup, predicate, wallet.x, wallet.r,
        wallet.token.commitment, sub.rng,
    )
    aux = receiver.commitment_message()
    envelope = sender.compose(wallet.token.commitment, aux, b"css-0123456789ab")
    return aux, envelope


def _sample_messages(wire_world):
    idp, idmgr, pub, sub = wire_world
    token = sub.token_for("role")
    level_aux, level_env = _ocbe_exchange(pub, sub, "level >= 59")
    ne_aux, ne_env = _ocbe_exchange(pub, sub, "role != doc")
    eq_aux, eq_env = _ocbe_exchange(pub, sub, "role = doc")
    assertion = idp.assert_attribute("wendy", "level")
    decoy_token, dx, dr = idmgr.issue_decoy_token(sub.nym, "clearance")
    document = Document.of("doc", {"s1": b"alpha", "s2": b"beta", "s3": b"gamma"})
    package = pub.publish(document)
    return [
        ConditionQuery(attribute="level"),
        ConditionList(
            attribute="level",
            conditions=tuple(pub.conditions_for_attribute("level")),
        ),
        RegistrationRequest(nym=sub.nym, condition_key="role = doc", token=token),
        RegistrationAck(nym=sub.nym, condition_key="role = doc", ok=True),
        RegistrationAck(
            nym=sub.nym, condition_key="role = doc", ok=False, reason="bad token"
        ),
        AuxCommitments(nym=sub.nym, condition_key="level >= 59", aux=level_aux),
        AuxCommitments(nym=sub.nym, condition_key="role != doc", aux=ne_aux),
        AuxCommitments(nym=sub.nym, condition_key="role = doc", aux=eq_aux),
        OCBEEnvelope(nym=sub.nym, condition_key="level >= 59", envelope=level_env),
        OCBEEnvelope(nym=sub.nym, condition_key="role != doc", envelope=ne_env),
        OCBEEnvelope(nym=sub.nym, condition_key="role = doc", envelope=eq_env),
        TokenRequest(nym=sub.nym, attribute="level", assertion=assertion),
        TokenRequest(nym=sub.nym, attribute="clearance", assertion=None, decoy=True),
        TokenGrant(token=decoy_token, x=dx, r=dr),
        BroadcastMessage(package=package),
    ]


@pytest.fixture(scope="module")
def samples(wire_world):
    return _sample_messages(wire_world)


@pytest.fixture(scope="module")
def group(wire_world):
    return wire_world[2].params.pedersen.group


class TestRoundTrips:
    def test_every_message_type_is_sampled(self, samples):
        assert {type(m).TYPE_ID for m in samples} == set(MESSAGE_TYPES)

    def test_encode_decode_reencode_identical(self, samples, group):
        for message in samples:
            frame = encode_message(message)
            decoded = decode_message(frame, group)
            assert type(decoded) is type(message)
            assert encode_message(decoded) == frame, type(message).__name__

    def test_decoded_equals_original(self, samples, group):
        for message in samples:
            decoded = decode_message(encode_message(message), group)
            assert decoded == message, type(message).__name__

    def test_kind_strings_unique(self):
        kinds = [cls.KIND for cls in MESSAGE_TYPES.values()]
        assert len(kinds) == len(set(kinds))


class TestRobustness:
    def test_unknown_type_id(self, group):
        from repro.wire.codec import encode_frame

        with pytest.raises(SerializationError):
            decode_message(encode_frame(200, b""), group)

    def test_every_truncation_raises_library_error(self, samples, group):
        # Cutting a frame anywhere must be detected, for every message type.
        for message in samples:
            frame = encode_message(message)
            step = max(1, len(frame) // 23)  # sample cut points, keep it fast
            for cut in list(range(0, len(frame), step)) + [len(frame) - 1]:
                with pytest.raises(ReproError):
                    decode_message(frame[:cut], group)

    def test_trailing_garbage_raises(self, samples, group):
        for message in samples:
            with pytest.raises(ReproError):
                decode_message(encode_message(message) + b"\x00", group)

    def test_corrupted_interior_never_raises_raw_errors(self, samples, group):
        # Flip bytes across each frame; decoding may succeed (e.g. flips in
        # ciphertext bodies) but must never raise a non-library error.
        for message in samples:
            frame = bytearray(encode_message(message))
            step = max(1, len(frame) // 17)
            for position in range(8, len(frame), step):
                corrupted = bytearray(frame)
                corrupted[position] ^= 0xFF
                try:
                    decode_message(bytes(corrupted), group)
                except ReproError:
                    pass  # detected -- the required behaviour
