"""Fixtures for wire-protocol tests: a small fully-wired world."""

from __future__ import annotations

import random

import pytest

from repro.gkm.acv import FAST_FIELD
from repro.groups import get_group
from repro.policy.acp import parse_policy
from repro.system.idmgr import IdentityManager
from repro.system.idp import IdentityProvider
from repro.system.publisher import Publisher
from repro.system.subscriber import Subscriber


@pytest.fixture(scope="module")
def wire_world():
    """(idp, idmgr, publisher, subscriber) with tokens held, nothing registered."""
    rng = random.Random(0xA11CE)
    group = get_group("nist-p192")
    idp = IdentityProvider("hr", group, rng=rng)
    idmgr = IdentityManager(group, rng=rng)
    idmgr.trust_idp(idp)
    pub = Publisher(
        "pub", idmgr.params, idmgr.public_key, gkm_field=FAST_FIELD,
        attribute_bits=16, rng=rng,
    )
    pub.add_policy(parse_policy("role = doc", ["s1"], "d"))
    pub.add_policy(parse_policy("role != doc AND level >= 59", ["s2"], "d"))
    pub.add_policy(parse_policy("level < 30", ["s3"], "d"))
    idp.enroll("wendy", "role", "doc")
    idp.enroll("wendy", "level", 61)
    nym = idmgr.assign_pseudonym()
    sub = Subscriber(nym, pub.params, rng=rng)
    for attr in ("role", "level"):
        token, x, r = idmgr.issue_token(
            nym, idp.assert_attribute("wendy", attr), rng=rng
        )
        sub.hold_token(token, x, r)
    return idp, idmgr, pub, sub
