"""Serialization tests for the OCBE aux/envelope classes themselves."""

import pytest

from repro.errors import ReproError
from repro.ocbe.base import receiver_for, sender_for
from repro.ocbe.predicates import (
    EqPredicate,
    GePredicate,
    LePredicate,
    NePredicate,
)
from repro.ocbe.serial import decode_aux, decode_envelope, encode_aux, encode_envelope

MESSAGE = b"sixteen-byte-css"


def _run(setup, predicate, x, rng):
    commitment, r = setup.pedersen.commit(x, rng=rng)
    sender = sender_for(setup, predicate, rng)
    receiver = receiver_for(setup, predicate, x, r, commitment, rng)
    aux = receiver.commitment_message()
    envelope = sender.compose(commitment, aux, MESSAGE)
    return aux, envelope, receiver


@pytest.fixture(scope="module")
def exchanges(ec_setup):
    import random

    rng = random.Random(0xC0DEC)
    return {
        "eq": _run(ec_setup, EqPredicate(5), 5, rng),
        "ge": _run(ec_setup, GePredicate(10, 8), 12, rng),
        "le": _run(ec_setup, LePredicate(10, 8), 3, rng),
        "ne": _run(ec_setup, NePredicate(10, 8), 12, rng),
    }


class TestByteSizeIsExact:
    def test_aux_byte_size_equals_len_to_bytes(self, exchanges):
        for name, (aux, _, _) in exchanges.items():
            if aux is None:  # EQ has no first message
                continue
            assert aux.byte_size() == len(aux.to_bytes()), name

    def test_envelope_byte_size_equals_len_to_bytes(self, exchanges):
        for name, (_, envelope, _) in exchanges.items():
            assert envelope.byte_size() == len(envelope.to_bytes()), name


class TestClassRoundTrips:
    def test_aux_round_trip(self, exchanges, ec_setup):
        group = ec_setup.pedersen.group
        for name, (aux, _, _) in exchanges.items():
            if aux is None:
                continue
            decoded = type(aux).from_bytes(aux.to_bytes(), group)
            assert decoded == aux, name
            assert decoded.to_bytes() == aux.to_bytes(), name

    def test_envelope_round_trip(self, exchanges, ec_setup):
        group = ec_setup.pedersen.group
        for name, (_, envelope, _) in exchanges.items():
            decoded = type(envelope).from_bytes(envelope.to_bytes(), group)
            assert decoded == envelope, name
            assert decoded.to_bytes() == envelope.to_bytes(), name

    def test_decoded_envelope_still_opens(self, exchanges, ec_setup):
        """Deserialized envelopes are protocol-equivalent to the originals."""
        group = ec_setup.pedersen.group
        for name, (_, envelope, receiver) in exchanges.items():
            rewired = type(envelope).from_bytes(envelope.to_bytes(), group)
            assert receiver.open(rewired) == MESSAGE, name


class TestTaggedDispatch:
    def test_aux_dispatch_round_trip(self, exchanges, ec_setup):
        group = ec_setup.pedersen.group
        for name, (aux, _, _) in exchanges.items():
            blob = encode_aux(aux)
            decoded = decode_aux(blob, group)
            assert decoded == aux, name
            assert encode_aux(decoded) == blob, name

    def test_envelope_dispatch_round_trip(self, exchanges, ec_setup):
        group = ec_setup.pedersen.group
        for name, (_, envelope, _) in exchanges.items():
            blob = encode_envelope(envelope)
            decoded = decode_envelope(blob, group)
            assert decoded == envelope, name
            assert encode_envelope(decoded) == blob, name

    def test_none_aux_round_trips(self, ec_setup):
        assert decode_aux(encode_aux(None), ec_setup.pedersen.group) is None

    def test_unknown_tags_rejected(self, ec_setup):
        from repro.errors import SerializationError

        group = ec_setup.pedersen.group
        with pytest.raises(SerializationError):
            decode_aux(b"\x09", group)
        with pytest.raises(SerializationError):
            decode_envelope(b"\x09", group)


class TestRobustness:
    def test_truncations_raise_library_errors(self, exchanges, ec_setup):
        group = ec_setup.pedersen.group
        for name, (aux, envelope, _) in exchanges.items():
            blobs = [encode_envelope(envelope)]
            if aux is not None:
                blobs.append(encode_aux(aux))
            for blob in blobs:
                step = max(1, len(blob) // 19)
                for cut in range(0, len(blob), step):
                    with pytest.raises(ReproError):
                        decode_envelope(blob[:cut], group) if blob is blobs[
                            0
                        ] else decode_aux(blob[:cut], group)

    def test_corrupted_elements_raise_library_errors(self, exchanges, ec_setup):
        """Bit-flips inside group-element encodings must surface as library
        errors (membership validation), never raw ValueErrors."""
        group = ec_setup.pedersen.group
        _, envelope, _ = exchanges["ge"]
        blob = bytearray(encode_envelope(envelope))
        for position in range(1, 40):
            corrupted = bytearray(blob)
            corrupted[position] ^= 0xFF
            try:
                decode_envelope(bytes(corrupted), group)
            except ReproError:
                pass
