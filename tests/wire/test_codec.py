"""Tests for the low-level wire codec: framing, field packers, robustness."""

import pytest

from repro.errors import ReproError, SerializationError
from repro.wire.codec import (
    DEFAULT_MAX_FRAME_PAYLOAD,
    FRAME_HEADER_SIZE,
    WIRE_MAGIC,
    WIRE_VERSION,
    Cursor,
    decode_frame,
    encode_frame,
    iter_frames,
    pack_bool,
    pack_bytes,
    pack_scalar,
    pack_str,
    pack_u8,
    pack_u16,
    pack_u32,
)


class TestFieldPackers:
    def test_int_round_trips(self):
        data = pack_u8(7) + pack_u16(300) + pack_u32(1 << 20) + pack_bool(True)
        cursor = Cursor(data)
        assert cursor.read_u8() == 7
        assert cursor.read_u16() == 300
        assert cursor.read_u32() == 1 << 20
        assert cursor.read_bool() is True
        cursor.expect_end()

    def test_str_and_bytes_round_trip(self):
        data = pack_str("héllo wörld") + pack_bytes(b"\x00\xff" * 10)
        cursor = Cursor(data)
        assert cursor.read_str() == "héllo wörld"
        assert cursor.read_bytes() == b"\x00\xff" * 10
        cursor.expect_end()

    @pytest.mark.parametrize("value", [0, 1, 255, 256, (1 << 200) + 17])
    def test_scalar_round_trip(self, value):
        cursor = Cursor(pack_scalar(value))
        assert cursor.read_scalar() == value
        cursor.expect_end()

    def test_range_checks(self):
        with pytest.raises(SerializationError):
            pack_u8(256)
        with pytest.raises(SerializationError):
            pack_u16(-1)
        with pytest.raises(SerializationError):
            pack_scalar(-5)

    def test_truncated_reads_raise_library_errors(self):
        with pytest.raises(SerializationError):
            Cursor(b"").read_u8()
        with pytest.raises(SerializationError):
            Cursor(b"\x00").read_u16()
        with pytest.raises(SerializationError):
            Cursor(pack_str("abc")[:-1]).read_str()
        with pytest.raises(SerializationError):
            Cursor(pack_bytes(b"xy")[:-1]).read_bytes()
        with pytest.raises(SerializationError):
            Cursor(pack_scalar(1 << 64)[:-2]).read_scalar()

    def test_bad_utf8_raises(self):
        cursor = Cursor(pack_u16(2) + b"\xff\xfe")
        with pytest.raises(SerializationError):
            cursor.read_str()

    def test_bad_bool_raises(self):
        with pytest.raises(SerializationError):
            Cursor(b"\x07").read_bool()

    def test_trailing_garbage_rejected(self):
        cursor = Cursor(pack_u8(1) + b"junk")
        cursor.read_u8()
        with pytest.raises(SerializationError):
            cursor.expect_end()

    def test_non_bytes_input_rejected(self):
        with pytest.raises(SerializationError):
            Cursor("not bytes")  # type: ignore[arg-type]


class TestFrames:
    def test_round_trip(self):
        frame = encode_frame(42, b"payload")
        assert frame.startswith(WIRE_MAGIC)
        assert decode_frame(frame) == (42, b"payload")

    def test_reencode_identical(self):
        frame = encode_frame(9, b"\x01" * 100)
        type_id, payload = decode_frame(frame)
        assert encode_frame(type_id, payload) == frame

    def test_stream_splitting(self):
        frames = [encode_frame(i, bytes([i]) * i) for i in range(5)]
        stream = b"".join(frames)
        parsed = list(iter_frames(stream))
        assert parsed == [(i, bytes([i]) * i) for i in range(5)]

    def test_bad_magic(self):
        frame = bytearray(encode_frame(1, b"x"))
        frame[0] ^= 0xFF
        with pytest.raises(SerializationError):
            decode_frame(bytes(frame))

    def test_bad_version(self):
        frame = bytearray(encode_frame(1, b"x"))
        frame[2] = WIRE_VERSION + 1
        with pytest.raises(SerializationError):
            decode_frame(bytes(frame))

    def test_truncation_anywhere_raises_library_error(self):
        frame = encode_frame(3, b"some payload bytes")
        for cut in range(len(frame)):
            with pytest.raises(ReproError):
                decode_frame(frame[:cut])

    def test_trailing_bytes_rejected(self):
        with pytest.raises(SerializationError):
            decode_frame(encode_frame(1, b"x") + b"!")

    def test_length_lying_header(self):
        # Header claims more payload than present.
        frame = encode_frame(1, b"abcdef")[:-3]
        with pytest.raises(SerializationError):
            decode_frame(frame)


class TestFrameSizeCap:
    @staticmethod
    def _frame_declaring(length):
        """A header declaring ``length`` payload bytes (none attached)."""
        import struct

        return struct.pack(">2sBBI", WIRE_MAGIC, WIRE_VERSION, 1, length)

    def test_hostile_u32_length_rejected_before_allocation(self):
        # A peer declaring ~4 GiB must draw a SerializationError mentioning
        # the cap, not a truncation error after an attempted allocation.
        frame = self._frame_declaring(0xFFFFFFFF)
        with pytest.raises(SerializationError, match="cap"):
            decode_frame(frame)
        with pytest.raises(SerializationError, match="cap"):
            list(iter_frames(frame))

    def test_cap_is_configurable(self):
        frame = encode_frame(1, b"x" * 100)
        assert decode_frame(frame) == (1, b"x" * 100)
        with pytest.raises(SerializationError, match="cap"):
            decode_frame(frame, max_payload=99)
        with pytest.raises(SerializationError, match="cap"):
            list(iter_frames(frame, max_payload=99))
        # iter_frames applies the cap per frame, not to the concatenation.
        stream = encode_frame(1, b"a" * 60) + encode_frame(2, b"b" * 60)
        assert len(list(iter_frames(stream, max_payload=64))) == 2

    def test_frame_at_cap_round_trips(self):
        payload = b"z" * 128
        frame = encode_frame(7, payload, max_payload=128)
        assert decode_frame(frame, max_payload=128) == (7, payload)

    def test_encode_side_enforces_cap(self):
        with pytest.raises(SerializationError, match="cap"):
            encode_frame(1, b"x" * 11, max_payload=10)

    def test_default_cap_sane(self):
        assert DEFAULT_MAX_FRAME_PAYLOAD >= 1 << 20  # room for big packages
        assert DEFAULT_MAX_FRAME_PAYLOAD < 1 << 32  # below the u32 ceiling
        assert FRAME_HEADER_SIZE == 8
