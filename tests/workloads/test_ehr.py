"""Tests for the EHR scenario builder."""

import random


from repro.policy.evaluate import satisfies_policy
from repro.workloads.ehr import (
    DEFAULT_EMPLOYEES,
    EHR_SUBDOCUMENT_TAGS,
    build_ehr_document,
    build_ehr_policies,
    build_hospital,
)


class TestStaticArtifacts:
    def test_document_contains_all_tags(self):
        doc = build_ehr_document()
        for tag in EHR_SUBDOCUMENT_TAGS:
            assert doc.get(tag).size > 0
        assert "_rest" in doc.subdocument_names()

    def test_six_policies(self):
        policies = build_ehr_policies()
        assert len(policies) == 6
        assert all(p.document == "EHR.xml" for p in policies)

    def test_acp4_is_the_conjunction(self):
        acp4 = build_ehr_policies()[3]
        assert len(acp4.conditions) == 2
        assert satisfies_policy({"role": "nur", "level": 59}, acp4)
        assert not satisfies_policy({"role": "nur", "level": 58}, acp4)

    def test_default_staff_covers_all_roles(self):
        roles = {role for _, role, _ in DEFAULT_EMPLOYEES}
        assert roles == {"rec", "cas", "doc", "nur", "dat", "pha"}


class TestBuilder:
    def test_registration_fills_table(self):
        hospital = build_hospital(rng=random.Random(0))
        table = hospital.publisher.table
        assert len(table) == len(DEFAULT_EMPLOYEES)
        # Everyone registered for every role condition (privacy practice).
        for nym in table.pseudonyms():
            for role in ("rec", "cas", "doc", "nur", "dat", "pha"):
                assert table.has(nym, "role = %s" % role)

    def test_no_registration_mode(self):
        hospital = build_hospital(rng=random.Random(0), register=False)
        assert len(hospital.publisher.table) == 0
        assert len(hospital.subscribers) == len(DEFAULT_EMPLOYEES)

    def test_custom_staff(self):
        hospital = build_hospital(
            employees=[("zoe", "doc", 80)], rng=random.Random(1)
        )
        assert list(hospital.subscribers) == ["zoe"]
        package = hospital.publisher.publish(hospital.document)
        got = set(hospital.subscribers["zoe"].receive(package))
        assert got == {"Medication", "PhysicalExams", "LabRecords", "Plan"}
