"""Tests for the synthetic workload generators."""

import random

import pytest

from repro.errors import InvalidParameterError
from repro.workloads.generator import (
    make_css_rows,
    make_policy_set,
    user_configuration_rows,
)


class TestCssRows:
    def test_shape(self):
        rows = make_css_rows(5, conditions_per_row=3, css_bytes=8)
        assert len(rows) == 5
        assert all(len(row) == 3 for row in rows)
        assert all(len(css) == 8 for row in rows for css in row)

    def test_distinct(self):
        rows = make_css_rows(20)
        assert len({row[0] for row in rows}) == 20

    def test_deterministic_with_rng(self):
        assert make_css_rows(3, rng=random.Random(1)) == make_css_rows(
            3, rng=random.Random(1)
        )

    def test_validation(self):
        with pytest.raises(InvalidParameterError):
            make_css_rows(-1)
        with pytest.raises(InvalidParameterError):
            make_css_rows(1, conditions_per_row=0)


class TestUserConfiguration:
    def test_counts(self):
        rows, n = user_configuration_rows(100, 0.25)
        assert n == 100
        assert len(rows) == 25

    def test_full_configuration(self):
        rows, n = user_configuration_rows(40, 1.0)
        assert len(rows) == 40

    def test_average_conditions(self):
        rows, _ = user_configuration_rows(200, 1.0, avg_conditions=2)
        avg = sum(len(r) for r in rows) / len(rows)
        assert 1.5 <= avg <= 2.5

    def test_single_condition_mode(self):
        rows, _ = user_configuration_rows(50, 1.0, avg_conditions=1)
        assert all(len(r) == 1 for r in rows)

    def test_fraction_validation(self):
        with pytest.raises(InvalidParameterError):
            user_configuration_rows(10, 1.5)


class TestPolicySet:
    def test_shape(self):
        ps = make_policy_set(10, 2, ["s1", "s2", "s3"])
        assert len(ps.policies) == 10
        assert all(len(p.conditions) == 2 for p in ps.policies)
        assert all(p.objects <= {"s1", "s2", "s3"} for p in ps.policies)
        assert all(p.objects for p in ps.policies)

    def test_attributes_drawn_from_universe(self):
        ps = make_policy_set(5, 3, ["s"])
        for policy in ps.policies:
            for cond in policy.conditions:
                assert cond.name in ps.attributes

    def test_validation(self):
        with pytest.raises(InvalidParameterError):
            make_policy_set(0, 1, ["s"])
