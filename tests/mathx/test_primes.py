"""Tests for Miller-Rabin and prime generation."""

import random

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import InvalidParameterError
from repro.mathx.primes import (
    is_prime,
    next_prime,
    prev_prime,
    random_prime,
    random_safe_prime,
)

_PRIMES_UNDER_100 = {
    2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47,
    53, 59, 61, 67, 71, 73, 79, 83, 89, 97,
}


class TestIsPrime:
    def test_small_exhaustive(self):
        for n in range(-5, 100):
            assert is_prime(n) == (n in _PRIMES_UNDER_100), n

    @pytest.mark.parametrize(
        "carmichael", [561, 1105, 1729, 2465, 2821, 6601, 8911, 41041, 825265]
    )
    def test_carmichael_numbers_rejected(self, carmichael):
        assert not is_prime(carmichael)

    def test_large_known_prime(self):
        assert is_prime(2**127 - 1)          # Mersenne prime
        assert is_prime(2**255 - 19)         # the curve25519 prime

    def test_large_known_composite(self):
        assert not is_prime(2**128 + 1)
        assert not is_prime((2**61 - 1) * (2**31 - 1))

    def test_paper_parameters(self):
        assert is_prime(5 * 10**24 + 8503491)
        assert is_prime(24999999999994130438600999402209463966197516075699)

    @given(st.integers(2, 10**6))
    def test_agrees_with_trial_division(self, n):
        by_trial = n > 1 and all(n % d for d in range(2, int(n**0.5) + 1))
        assert is_prime(n) == by_trial


class TestGeneration:
    def test_next_prime(self):
        assert next_prime(0) == 2
        assert next_prime(2) == 3
        assert next_prime(14) == 17
        assert next_prime(97) == 101

    def test_prev_prime(self):
        assert prev_prime(3) == 2
        assert prev_prime(100) == 97
        with pytest.raises(InvalidParameterError):
            prev_prime(2)

    def test_random_prime_bits(self):
        rng = random.Random(1)
        for bits in (8, 16, 32, 80):
            p = random_prime(bits, rng)
            assert p.bit_length() == bits
            assert is_prime(p)

    def test_random_prime_rejects_tiny(self):
        with pytest.raises(InvalidParameterError):
            random_prime(1)

    def test_random_safe_prime(self):
        rng = random.Random(2)
        p = random_safe_prime(16, rng)
        assert is_prime(p) and is_prime((p - 1) // 2)
        assert p.bit_length() == 16
