"""Unit + property tests for repro.mathx.modular."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import InvalidParameterError, NoSquareRootError, NotInvertibleError
from repro.mathx.modular import crt, egcd, legendre_symbol, modinv, modsqrt


class TestEgcd:
    def test_basic(self):
        g, x, y = egcd(240, 46)
        assert g == 2
        assert 240 * x + 46 * y == 2

    def test_coprime(self):
        g, x, y = egcd(17, 31)
        assert g == 1
        assert 17 * x + 31 * y == 1

    def test_zero_cases(self):
        assert egcd(0, 5)[0] == 5
        assert egcd(5, 0)[0] == 5
        assert egcd(0, 0)[0] == 0

    @given(st.integers(-10**9, 10**9), st.integers(-10**9, 10**9))
    def test_bezout_identity(self, a, b):
        g, x, y = egcd(a, b)
        assert a * x + b * y == g
        assert g >= 0
        if a or b:
            assert a % g == 0 and b % g == 0


class TestModinv:
    def test_known(self):
        assert modinv(3, 7) == 5  # 3*5 = 15 = 1 mod 7

    def test_negative_input(self):
        assert (modinv(-3, 7) * (-3)) % 7 == 1

    def test_not_invertible(self):
        with pytest.raises(NotInvertibleError):
            modinv(6, 9)

    def test_zero_not_invertible(self):
        with pytest.raises(NotInvertibleError):
            modinv(0, 11)

    def test_bad_modulus(self):
        with pytest.raises(InvalidParameterError):
            modinv(1, 0)

    @given(st.integers(1, 10**6))
    def test_inverse_mod_prime(self, a):
        p = 1_000_003
        if a % p == 0:
            a += 1
        inv = modinv(a, p)
        assert (a * inv) % p == 1
        assert 0 <= inv < p


class TestCrt:
    def test_classic(self):
        x, m = crt([2, 3, 2], [3, 5, 7])
        assert x == 23
        assert m == 105

    def test_single(self):
        assert crt([4], [9]) == (4, 9)

    def test_not_coprime(self):
        with pytest.raises(NotInvertibleError):
            crt([1, 2], [4, 6])

    def test_length_mismatch(self):
        with pytest.raises(InvalidParameterError):
            crt([1], [3, 5])

    def test_empty(self):
        with pytest.raises(InvalidParameterError):
            crt([], [])

    @given(st.integers(0, 10**8), st.integers(0, 10**8))
    def test_reconstruction(self, r1, r2):
        m1, m2 = 10007, 10009  # twin-ish primes, coprime
        x, m = crt([r1 % m1, r2 % m2], [m1, m2])
        assert m == m1 * m2
        assert x % m1 == r1 % m1
        assert x % m2 == r2 % m2


class TestLegendreAndSqrt:
    def test_legendre_known(self):
        # QRs mod 11: 1, 3, 4, 5, 9
        assert [legendre_symbol(a, 11) for a in range(1, 11)] == [
            1, -1, 1, 1, 1, -1, -1, -1, 1, -1,
        ]

    def test_legendre_zero(self):
        assert legendre_symbol(22, 11) == 0

    def test_legendre_rejects_even(self):
        with pytest.raises(InvalidParameterError):
            legendre_symbol(3, 8)

    @pytest.mark.parametrize("p", [11, 13, 10007, 1_000_003])
    def test_sqrt_all_residues(self, p):
        residues = {pow(a, 2, p) for a in range(1, min(p, 500))}
        for a in sorted(residues)[:50]:
            root = modsqrt(a, p)
            assert pow(root, 2, p) == a

    def test_sqrt_zero(self):
        assert modsqrt(0, 13) == 0

    def test_sqrt_non_residue(self):
        with pytest.raises(NoSquareRootError):
            modsqrt(2, 11)

    def test_sqrt_p_3_mod_4_branch(self):
        p = 10007  # 10007 % 4 == 3
        assert p % 4 == 3
        root = modsqrt(9, p)
        assert pow(root, 2, p) == 9

    def test_sqrt_p_1_mod_4_branch(self):
        p = 1_000_033  # 1 mod 4 -> full Tonelli-Shanks
        assert p % 4 == 1
        a = pow(12345, 2, p)
        root = modsqrt(a, p)
        assert pow(root, 2, p) == a

    @given(st.integers(1, 10**6))
    def test_sqrt_roundtrip(self, x):
        p = 999_983
        a = pow(x, 2, p)
        root = modsqrt(a, p)
        assert pow(root, 2, p) == a
