"""Tests for dense polynomials over prime fields."""

import random

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import FieldMismatchError, InvalidParameterError
from repro.mathx.field import PrimeField
from repro.mathx.polynomial import Poly

F = PrimeField(10007)

coeff_lists = st.lists(st.integers(0, F.p - 1), min_size=0, max_size=8)


def poly(coeffs):
    return Poly(F, coeffs)


class TestConstruction:
    def test_normalization(self):
        assert poly([1, 2, 0, 0]).coeffs == (1, 2)
        assert poly([0, 0]).is_zero()
        assert Poly.zero(F).degree == -1

    def test_constructors(self):
        assert Poly.one(F).coeffs == (1,)
        assert Poly.x(F).coeffs == (0, 1)
        assert Poly.constant(F, 7).coeffs == (7,)
        assert Poly.monomial(F, 3, 2).coeffs == (0, 0, 0, 2)
        with pytest.raises(InvalidParameterError):
            Poly.monomial(F, -1)

    def test_from_roots(self):
        p = Poly.from_roots(F, [2, 5])
        assert p.degree == 2 and p.is_monic()
        assert p(2).is_zero() and p(5).is_zero()
        assert not p(3).is_zero()

    def test_random_degree_and_monic(self):
        rng = random.Random(0)
        p = Poly.random(F, 4, rng)
        assert p.degree == 4
        assert Poly.random(F, 4, rng, monic=True).is_monic()
        assert Poly.random(F, -1, rng).is_zero()

    def test_interpolation(self):
        points = [(1, 3), (2, 7), (5, 1)]
        p = Poly.interpolate(F, points)
        assert p.degree <= 2
        for x, y in points:
            assert p(x) == F(y)

    def test_interpolation_duplicate_x(self):
        with pytest.raises(InvalidParameterError):
            Poly.interpolate(F, [(1, 2), (1, 3)])


class TestRingAxioms:
    @given(coeff_lists, coeff_lists)
    def test_add_commutes(self, a, b):
        assert poly(a) + poly(b) == poly(b) + poly(a)

    @given(coeff_lists, coeff_lists)
    def test_mul_commutes(self, a, b):
        assert poly(a) * poly(b) == poly(b) * poly(a)

    @given(coeff_lists, coeff_lists, coeff_lists)
    def test_distributivity(self, a, b, c):
        pa, pb, pc = poly(a), poly(b), poly(c)
        assert pa * (pb + pc) == pa * pb + pa * pc

    @given(coeff_lists)
    def test_additive_inverse(self, a):
        assert (poly(a) + (-poly(a))).is_zero()

    @given(coeff_lists)
    def test_mul_by_scalar(self, a):
        assert poly(a) * 1 == poly(a)
        assert (poly(a) * 0).is_zero()
        assert poly(a) * 3 == poly(a) + poly(a) + poly(a)

    def test_degree_of_product(self):
        a, b = poly([1, 2, 3]), poly([4, 5])
        assert (a * b).degree == a.degree + b.degree


class TestDivision:
    @given(coeff_lists, coeff_lists)
    def test_divmod_invariant(self, a, b):
        pa, pb = poly(a), poly(b)
        if pb.is_zero():
            with pytest.raises(ZeroDivisionError):
                divmod(pa, pb)
            return
        q, r = divmod(pa, pb)
        assert q * pb + r == pa
        assert r.degree < pb.degree

    def test_exact_division(self):
        a = Poly.from_roots(F, [1, 2, 3])
        b = Poly.from_roots(F, [2])
        q, r = divmod(a, b)
        assert r.is_zero()
        assert q == Poly.from_roots(F, [1, 3])

    def test_mod_and_floordiv_operators(self):
        a, b = poly([1, 0, 0, 1]), poly([1, 1])
        assert a // b * b + a % b == a

    @given(coeff_lists, coeff_lists)
    def test_gcd_divides_both(self, a, b):
        pa, pb = poly(a), poly(b)
        g = pa.gcd(pb)
        if g.is_zero():
            assert pa.is_zero() and pb.is_zero()
        else:
            assert (pa % g).is_zero()
            assert (pb % g).is_zero()
            assert g.is_monic()

    @given(coeff_lists, coeff_lists)
    def test_xgcd_bezout(self, a, b):
        pa, pb = poly(a), poly(b)
        g, s, t = pa.xgcd(pb)
        assert s * pa + t * pb == g

    def test_gcd_of_common_factor(self):
        common = Poly.from_roots(F, [7])
        a = common * poly([1, 1])
        b = common * poly([2, 0, 1])
        assert (a.gcd(b) % common).is_zero()


class TestMisc:
    def test_monic(self):
        p = poly([2, 4])
        m = p.monic()
        assert m.is_monic()
        assert m == poly([F(2) / F(4), 1])

    def test_derivative(self):
        p = poly([5, 3, 2])  # 2x^2 + 3x + 5
        assert p.derivative() == poly([3, 4])
        assert Poly.constant(F, 9).derivative().is_zero()

    @given(coeff_lists, st.integers(0, F.p - 1))
    def test_evaluation_matches_horner(self, coeffs, x):
        p = poly(coeffs)
        expected = sum(c * pow(x, i, F.p) for i, c in enumerate(p.coeffs)) % F.p
        assert p(x) == F(expected)

    def test_pow(self):
        p = poly([1, 1])
        assert p ** 3 == p * p * p
        assert p ** 0 == Poly.one(F)
        with pytest.raises(InvalidParameterError):
            p ** -1

    def test_field_mismatch(self):
        other = Poly(PrimeField(10009), [1])
        with pytest.raises(FieldMismatchError):
            poly([1]) + other

    def test_repr_readable(self):
        assert "x^2" in repr(poly([1, 0, 3]))
        assert repr(Poly.zero(F)) == "Poly(0)"

    def test_equality_with_int(self):
        assert poly([5]) == 5
        assert Poly.zero(F) == 0
