"""Tests for prime fields, including hypothesis-checked field axioms."""

import random

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import (
    FieldMismatchError,
    InvalidParameterError,
    NoSquareRootError,
    NotInvertibleError,
)
from repro.mathx.field import PrimeField

F = PrimeField(10007)
elements = st.integers(0, F.p - 1)


class TestConstruction:
    def test_rejects_composite(self):
        with pytest.raises(InvalidParameterError):
            PrimeField(10)

    def test_rejects_small(self):
        with pytest.raises(InvalidParameterError):
            PrimeField(1)

    def test_check_prime_skip(self):
        # check_prime=False is the documented fast path for known primes.
        assert PrimeField(7, check_prime=False).p == 7

    def test_equality_and_hash(self):
        assert PrimeField(10007) == PrimeField(10007)
        assert hash(PrimeField(10007)) == hash(PrimeField(10007))
        assert PrimeField(10007) != PrimeField(10009)

    def test_metadata(self):
        assert F.order == 10007
        assert F.bit_length == 14
        assert F.byte_length == 2

    def test_coercion_and_mismatch(self):
        e = F(12345)
        assert int(e) == 12345 % 10007
        with pytest.raises(FieldMismatchError):
            PrimeField(10009)(e)

    def test_elements_iterator(self):
        tiny = PrimeField(5)
        assert [int(x) for x in tiny.elements()] == [0, 1, 2, 3, 4]


class TestArithmetic:
    @given(elements, elements)
    def test_commutativity(self, a, b):
        assert F(a) + F(b) == F(b) + F(a)
        assert F(a) * F(b) == F(b) * F(a)

    @given(elements, elements, elements)
    def test_associativity_and_distributivity(self, a, b, c):
        fa, fb, fc = F(a), F(b), F(c)
        assert (fa + fb) + fc == fa + (fb + fc)
        assert (fa * fb) * fc == fa * (fb * fc)
        assert fa * (fb + fc) == fa * fb + fa * fc

    @given(elements)
    def test_identities_and_inverses(self, a):
        fa = F(a)
        assert fa + F.zero() == fa
        assert fa * F.one() == fa
        assert fa + (-fa) == F.zero()
        if a != 0:
            assert fa * fa.inverse() == F.one()
            assert fa / fa == F.one()

    @given(elements, elements)
    def test_sub_and_div_consistency(self, a, b):
        fa, fb = F(a), F(b)
        assert fa - fb == fa + (-fb)
        if b != 0:
            assert (fa / fb) * fb == fa

    def test_int_interop_both_sides(self):
        assert 3 + F(4) == F(7)
        assert F(4) + 3 == F(7)
        assert 3 * F(4) == F(12)
        assert 10 - F(4) == F(6)
        assert F(1) / 2 == F(2).inverse()
        assert 2 / F(2) == F.one()

    def test_pow_negative(self):
        assert F(3) ** -1 == F(3).inverse()
        assert F(3) ** -2 == (F(3) ** 2).inverse()

    def test_pow_zero(self):
        assert F(5) ** 0 == F.one()

    def test_zero_inverse_raises(self):
        with pytest.raises(NotInvertibleError):
            F.zero().inverse()
        with pytest.raises(NotInvertibleError):
            F(1) / F(0)

    def test_mismatched_fields(self):
        with pytest.raises(FieldMismatchError):
            F(1) + PrimeField(10009)(1)

    @given(elements)
    def test_sqrt_of_squares(self, a):
        sq = F(a) * F(a)
        root = sq.sqrt()
        assert root * root == sq
        assert sq.is_square()

    def test_non_residue(self):
        non_residue = next(
            a for a in range(2, 100) if pow(a, (F.p - 1) // 2, F.p) == F.p - 1
        )
        assert not F(non_residue).is_square()
        with pytest.raises(NoSquareRootError):
            F(non_residue).sqrt()


class TestSamplingAndEncoding:
    def test_random_deterministic(self):
        assert F.random(random.Random(1)) == F.random(random.Random(1))

    def test_random_nonzero(self):
        rng = random.Random(2)
        assert all(F.random_nonzero(rng) != F.zero() for _ in range(200))

    @given(elements)
    def test_bytes_roundtrip(self, a):
        fa = F(a)
        assert F.from_bytes(fa.to_bytes()) == fa
        assert len(fa.to_bytes()) == F.byte_length

    def test_bool_and_is_zero(self):
        assert not F.zero()
        assert F.zero().is_zero()
        assert F(3)
        assert not F(3).is_zero()

    def test_eq_with_int_wraps(self):
        assert F(10007 + 5) == 5
        assert F(5) == 10007 + 5
