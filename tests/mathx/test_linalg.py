"""Tests for F_q linear algebra: both kernels, null spaces, solving."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import InvalidParameterError, SingularMatrixError
from repro.mathx.field import PrimeField
from repro.mathx.linalg import (
    NUMPY_MODULUS_LIMIT,
    Matrix,
    RrefFactorization,
    random_null_vector,
    solve,
    vec_dot,
)

SMALL = PrimeField(10007)                       # numpy kernel
BIG = PrimeField(604462909807314587353111)      # pure-Python kernel (80-bit)

FIELDS = [SMALL, BIG]


def random_matrix(field, nrows, ncols, seed=0):
    return Matrix.random(field, nrows, ncols, random.Random(seed))


class TestKernelSelection:
    def test_threshold(self):
        assert SMALL.p < NUMPY_MODULUS_LIMIT
        assert BIG.p >= NUMPY_MODULUS_LIMIT

    def test_kernels_agree(self):
        """Same matrix mod a small prime: both kernels, same rref."""
        rng = random.Random(42)
        rows = [[rng.randrange(SMALL.p) for _ in range(7)] for _ in range(5)]
        m_small = Matrix(SMALL, rows)
        reduced_np, pivots_np = m_small.rref()

        from repro.mathx.linalg import _rref_python

        reduced_py, pivots_py = _rref_python(rows, 7, SMALL.p)
        assert reduced_np.rows == reduced_py
        assert list(reduced_np.rref()[1]) == list(pivots_py)


@pytest.mark.parametrize("field", FIELDS, ids=["numpy-kernel", "python-kernel"])
class TestElimination:
    def test_identity_rref(self, field):
        eye = Matrix.identity(field, 4)
        reduced, pivots = eye.rref()
        assert reduced == eye
        assert pivots == (0, 1, 2, 3)

    def test_rank_of_random_square(self, field):
        m = random_matrix(field, 5, 5, seed=1)
        assert m.rank() == 5  # random square matrices are a.s. full rank

    def test_rank_deficient(self, field):
        base = random_matrix(field, 2, 5, seed=2)
        # Third row = sum of the first two.
        dup = Matrix(
            field,
            base.rows + [[(a + b) % field.p for a, b in zip(*base.rows)]],
        )
        assert dup.rank() == 2

    def test_null_space_annihilates(self, field):
        m = random_matrix(field, 3, 6, seed=3)
        basis = m.null_space()
        assert len(basis) == 6 - m.rank()
        for v in basis:
            assert all(x == 0 for x in m.mat_vec(v))

    def test_null_space_full_rank_empty(self, field):
        m = Matrix.identity(field, 3)
        assert m.null_space() == []

    def test_random_null_vector(self, field):
        m = random_matrix(field, 3, 6, seed=4)
        rng = random.Random(5)
        v = random_null_vector(m, rng)
        assert any(v)
        assert all(x == 0 for x in m.mat_vec(v))

    def test_random_null_vector_full_rank_raises(self, field):
        with pytest.raises(SingularMatrixError):
            random_null_vector(Matrix.identity(field, 3))

    def test_solve(self, field):
        m = random_matrix(field, 4, 4, seed=6)
        rng = random.Random(7)
        x_true = [rng.randrange(field.p) for _ in range(4)]
        b = m.mat_vec(x_true)
        assert list(solve(m, b)) == x_true

    def test_solve_singular(self, field):
        singular = Matrix(field, [[1, 2], [2, 4]])
        with pytest.raises(SingularMatrixError):
            singular.solve([1, 1])

    def test_solve_non_square(self, field):
        with pytest.raises(SingularMatrixError):
            Matrix(field, [[1, 2, 3]]).solve([1])


class TestMatrixOps:
    def test_shape_and_accessors(self):
        m = Matrix(SMALL, [[1, 2, 3], [4, 5, 6]])
        assert m.shape == (2, 3)
        assert m[1, 2] == 6
        assert m.row(0) == (1, 2, 3)
        assert m.column(1) == (2, 5)

    def test_ragged_rejected(self):
        with pytest.raises(InvalidParameterError):
            Matrix(SMALL, [[1, 2], [3]])

    def test_add_sub(self):
        a = Matrix(SMALL, [[1, 2], [3, 4]])
        b = Matrix(SMALL, [[5, 6], [7, 8]])
        assert (a + b).rows == [[6, 8], [10, 12]]
        assert (b - a).rows == [[4, 4], [4, 4]]
        with pytest.raises(InvalidParameterError):
            a + Matrix(SMALL, [[1, 2, 3]])

    def test_matmul(self):
        a = Matrix(SMALL, [[1, 2], [3, 4]])
        b = Matrix(SMALL, [[5, 6], [7, 8]])
        assert (a @ b).rows == [[19, 22], [43, 50]]

    def test_matmul_identity(self):
        a = random_matrix(SMALL, 3, 3, seed=8)
        assert a @ Matrix.identity(SMALL, 3) == a

    def test_matmul_shape_mismatch(self):
        with pytest.raises(InvalidParameterError):
            Matrix(SMALL, [[1, 2]]) @ Matrix(SMALL, [[1, 2]])

    def test_transpose(self):
        m = Matrix(SMALL, [[1, 2, 3], [4, 5, 6]])
        assert m.transpose().rows == [[1, 4], [2, 5], [3, 6]]
        assert m.transpose().transpose() == m

    def test_scale(self):
        m = Matrix(SMALL, [[1, 2]])
        assert m.scale(3).rows == [[3, 6]]

    def test_mat_vec_length_check(self):
        with pytest.raises(InvalidParameterError):
            Matrix(SMALL, [[1, 2]]).mat_vec([1])

    def test_vec_dot(self):
        assert vec_dot([1, 2, 3], [4, 5, 6], 7) == (4 + 10 + 18) % 7
        with pytest.raises(InvalidParameterError):
            vec_dot([1], [1, 2], 7)

    def test_copy_independent(self):
        m = Matrix(SMALL, [[1, 2]])
        c = m.copy()
        c.rows[0][0] = 99
        assert m.rows[0][0] == 1

    def test_zeros(self):
        z = Matrix.zeros(SMALL, 2, 3)
        assert z.shape == (2, 3)
        assert all(all(x == 0 for x in row) for row in z.rows)


@pytest.mark.parametrize("field", FIELDS, ids=["numpy-kernel", "python-kernel"])
class TestRrefFactorization:
    """The incremental elimination state must be indistinguishable from a
    from-scratch :meth:`Matrix.rref` of the same (grown) matrix -- pivots,
    rank, and the null-space basis byte for byte."""

    def _assert_matches_scratch(self, fact, field, rows, ncols):
        scratch = Matrix(field, rows)
        scratch.ncols = ncols  # preserve width when rows is empty
        _, pivots = scratch.rref()
        assert tuple(fact.pivots) == pivots
        assert fact.rank == len(pivots)
        assert fact.null_space() == scratch.null_space()

    def test_from_matrix_matches_scratch(self, field):
        m = random_matrix(field, 4, 6, seed=11)
        fact = m.rref_factorization()
        self._assert_matches_scratch(fact, field, m.rows, 6)

    def test_extend_row_matches_scratch(self, field):
        rng = random.Random(12)
        rows = [[rng.randrange(field.p) for _ in range(8)] for _ in range(3)]
        fact = Matrix(field, rows).rref_factorization()
        for _ in range(4):
            new_row = [rng.randrange(field.p) for _ in range(8)]
            fact.extend_row(new_row)
            rows.append(new_row)
            self._assert_matches_scratch(fact, field, rows, 8)

    def test_extend_duplicate_row_keeps_rank(self, field):
        rng = random.Random(13)
        rows = [[rng.randrange(field.p) for _ in range(5)] for _ in range(3)]
        fact = Matrix(field, rows).rref_factorization()
        assert fact.extend_row(rows[1]) is False
        rows.append(rows[1])
        assert fact.n_source == 4
        self._assert_matches_scratch(fact, field, rows, 5)

    def test_extend_column_matches_scratch(self, field):
        rng = random.Random(14)
        rows = [[rng.randrange(field.p) for _ in range(4)] for _ in range(3)]
        fact = Matrix(field, rows).rref_factorization()
        for _ in range(3):
            col = [rng.randrange(field.p) for _ in range(len(rows))]
            fact.extend_column(col)
            for row, x in zip(rows, col):
                row.append(x)
            self._assert_matches_scratch(fact, field, rows, len(rows[0]))

    def test_extend_column_promotes_dependent_row(self, field):
        # Two identical rows; the widened column separates them, so the
        # dependent row must be promoted to a fresh pivot.
        rng = random.Random(15)
        base = [rng.randrange(field.p) for _ in range(4)]
        rows = [base[:], base[:]]
        fact = Matrix(field, rows).rref_factorization()
        assert fact.rank == 1
        fact.extend_column([0, 1])
        rows[0].append(0)
        rows[1].append(1)
        assert fact.rank == 2
        self._assert_matches_scratch(fact, field, rows, 5)

    def test_empty_factorization_identity_basis(self, field):
        # No rows constrain anything: the null space is all of F^3, and the
        # basis enumeration (free columns ascending) yields the identity.
        fact = RrefFactorization(field, 3)
        expected = [tuple(1 if i == j else 0 for i in range(3)) for j in range(3)]
        assert fact.null_space() == expected

    def test_length_validation(self, field):
        fact = random_matrix(field, 2, 3, seed=16).rref_factorization()
        with pytest.raises(InvalidParameterError):
            fact.extend_row([1, 2])
        with pytest.raises(InvalidParameterError):
            fact.extend_column([1, 2, 3])
        with pytest.raises(InvalidParameterError):
            RrefFactorization(field, -1)


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_property_factorization_tracks_growth(seed):
    """Random interleavings of row/column growth (with deliberate duplicate
    rows forcing the dependent-row bookkeeping) stay equal to a rebuild."""
    rng = random.Random(seed)
    for field in FIELDS:
        ncols = rng.randrange(1, 5)
        rows = [[rng.randrange(field.p) for _ in range(ncols)] for _ in range(rng.randrange(0, 4))]
        fact = Matrix(field, rows).rref_factorization() if rows else RrefFactorization(field, ncols)
        for _ in range(6):
            op = rng.random()
            if op < 0.4 or not rows:
                new_row = (
                    rows[rng.randrange(len(rows))][:]
                    if rows and rng.random() < 0.3
                    else [rng.randrange(field.p) for _ in range(ncols)]
                )
                fact.extend_row(new_row)
                rows.append(new_row[:])
            else:
                col = [rng.randrange(field.p) for _ in range(len(rows))]
                fact.extend_column(col)
                for row, x in zip(rows, col):
                    row.append(x)
                ncols += 1
        scratch = Matrix(field, rows)
        scratch.ncols = ncols
        assert tuple(fact.pivots) == scratch.rref()[1]
        assert fact.null_space() == scratch.null_space()
        for v in fact.null_space():
            assert all(x == 0 for x in scratch.mat_vec(v))


@settings(max_examples=15)
@given(
    nrows=st.integers(1, 6),
    ncols=st.integers(1, 6),
    seed=st.integers(0, 1000),
)
def test_property_null_space_dimension_theorem(nrows, ncols, seed):
    """rank + nullity == ncols, over both kernels."""
    for field in FIELDS:
        m = random_matrix(field, nrows, ncols, seed=seed)
        assert m.rank() + len(m.null_space()) == ncols


@settings(max_examples=15)
@given(seed=st.integers(0, 1000))
def test_property_acv_shape(seed):
    """The exact shape ACV-BGKM relies on: a matrix with an all-ones first
    column and fewer rows than columns always has a nontrivial null space,
    and any null vector is orthogonal to every row."""
    rng = random.Random(seed)
    field = SMALL
    n = rng.randrange(2, 7)
    rows = [[1] + [rng.randrange(field.p) for _ in range(n)] for _ in range(n)]
    m = Matrix(field, rows)
    v = random_null_vector(m, rng)
    for row in rows:
        assert vec_dot(row, v, field.p) == 0
