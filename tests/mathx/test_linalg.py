"""Tests for F_q linear algebra: both kernels, null spaces, solving."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import InvalidParameterError, SingularMatrixError
from repro.mathx.field import PrimeField
from repro.mathx.linalg import (
    NUMPY_MODULUS_LIMIT,
    Matrix,
    random_null_vector,
    solve,
    vec_dot,
)

SMALL = PrimeField(10007)                       # numpy kernel
BIG = PrimeField(604462909807314587353111)      # pure-Python kernel (80-bit)

FIELDS = [SMALL, BIG]


def random_matrix(field, nrows, ncols, seed=0):
    return Matrix.random(field, nrows, ncols, random.Random(seed))


class TestKernelSelection:
    def test_threshold(self):
        assert SMALL.p < NUMPY_MODULUS_LIMIT
        assert BIG.p >= NUMPY_MODULUS_LIMIT

    def test_kernels_agree(self):
        """Same matrix mod a small prime: both kernels, same rref."""
        rng = random.Random(42)
        rows = [[rng.randrange(SMALL.p) for _ in range(7)] for _ in range(5)]
        m_small = Matrix(SMALL, rows)
        reduced_np, pivots_np = m_small.rref()

        from repro.mathx.linalg import _rref_python

        reduced_py, pivots_py = _rref_python(rows, 7, SMALL.p)
        assert reduced_np.rows == reduced_py
        assert list(reduced_np.rref()[1]) == list(pivots_py)


@pytest.mark.parametrize("field", FIELDS, ids=["numpy-kernel", "python-kernel"])
class TestElimination:
    def test_identity_rref(self, field):
        eye = Matrix.identity(field, 4)
        reduced, pivots = eye.rref()
        assert reduced == eye
        assert pivots == (0, 1, 2, 3)

    def test_rank_of_random_square(self, field):
        m = random_matrix(field, 5, 5, seed=1)
        assert m.rank() == 5  # random square matrices are a.s. full rank

    def test_rank_deficient(self, field):
        base = random_matrix(field, 2, 5, seed=2)
        # Third row = sum of the first two.
        dup = Matrix(
            field,
            base.rows + [[(a + b) % field.p for a, b in zip(*base.rows)]],
        )
        assert dup.rank() == 2

    def test_null_space_annihilates(self, field):
        m = random_matrix(field, 3, 6, seed=3)
        basis = m.null_space()
        assert len(basis) == 6 - m.rank()
        for v in basis:
            assert all(x == 0 for x in m.mat_vec(v))

    def test_null_space_full_rank_empty(self, field):
        m = Matrix.identity(field, 3)
        assert m.null_space() == []

    def test_random_null_vector(self, field):
        m = random_matrix(field, 3, 6, seed=4)
        rng = random.Random(5)
        v = random_null_vector(m, rng)
        assert any(v)
        assert all(x == 0 for x in m.mat_vec(v))

    def test_random_null_vector_full_rank_raises(self, field):
        with pytest.raises(SingularMatrixError):
            random_null_vector(Matrix.identity(field, 3))

    def test_solve(self, field):
        m = random_matrix(field, 4, 4, seed=6)
        rng = random.Random(7)
        x_true = [rng.randrange(field.p) for _ in range(4)]
        b = m.mat_vec(x_true)
        assert list(solve(m, b)) == x_true

    def test_solve_singular(self, field):
        singular = Matrix(field, [[1, 2], [2, 4]])
        with pytest.raises(SingularMatrixError):
            singular.solve([1, 1])

    def test_solve_non_square(self, field):
        with pytest.raises(SingularMatrixError):
            Matrix(field, [[1, 2, 3]]).solve([1])


class TestMatrixOps:
    def test_shape_and_accessors(self):
        m = Matrix(SMALL, [[1, 2, 3], [4, 5, 6]])
        assert m.shape == (2, 3)
        assert m[1, 2] == 6
        assert m.row(0) == (1, 2, 3)
        assert m.column(1) == (2, 5)

    def test_ragged_rejected(self):
        with pytest.raises(InvalidParameterError):
            Matrix(SMALL, [[1, 2], [3]])

    def test_add_sub(self):
        a = Matrix(SMALL, [[1, 2], [3, 4]])
        b = Matrix(SMALL, [[5, 6], [7, 8]])
        assert (a + b).rows == [[6, 8], [10, 12]]
        assert (b - a).rows == [[4, 4], [4, 4]]
        with pytest.raises(InvalidParameterError):
            a + Matrix(SMALL, [[1, 2, 3]])

    def test_matmul(self):
        a = Matrix(SMALL, [[1, 2], [3, 4]])
        b = Matrix(SMALL, [[5, 6], [7, 8]])
        assert (a @ b).rows == [[19, 22], [43, 50]]

    def test_matmul_identity(self):
        a = random_matrix(SMALL, 3, 3, seed=8)
        assert a @ Matrix.identity(SMALL, 3) == a

    def test_matmul_shape_mismatch(self):
        with pytest.raises(InvalidParameterError):
            Matrix(SMALL, [[1, 2]]) @ Matrix(SMALL, [[1, 2]])

    def test_transpose(self):
        m = Matrix(SMALL, [[1, 2, 3], [4, 5, 6]])
        assert m.transpose().rows == [[1, 4], [2, 5], [3, 6]]
        assert m.transpose().transpose() == m

    def test_scale(self):
        m = Matrix(SMALL, [[1, 2]])
        assert m.scale(3).rows == [[3, 6]]

    def test_mat_vec_length_check(self):
        with pytest.raises(InvalidParameterError):
            Matrix(SMALL, [[1, 2]]).mat_vec([1])

    def test_vec_dot(self):
        assert vec_dot([1, 2, 3], [4, 5, 6], 7) == (4 + 10 + 18) % 7
        with pytest.raises(InvalidParameterError):
            vec_dot([1], [1, 2], 7)

    def test_copy_independent(self):
        m = Matrix(SMALL, [[1, 2]])
        c = m.copy()
        c.rows[0][0] = 99
        assert m.rows[0][0] == 1

    def test_zeros(self):
        z = Matrix.zeros(SMALL, 2, 3)
        assert z.shape == (2, 3)
        assert all(all(x == 0 for x in row) for row in z.rows)


@settings(max_examples=15)
@given(
    nrows=st.integers(1, 6),
    ncols=st.integers(1, 6),
    seed=st.integers(0, 1000),
)
def test_property_null_space_dimension_theorem(nrows, ncols, seed):
    """rank + nullity == ncols, over both kernels."""
    for field in FIELDS:
        m = random_matrix(field, nrows, ncols, seed=seed)
        assert m.rank() + len(m.null_space()) == ncols


@settings(max_examples=15)
@given(seed=st.integers(0, 1000))
def test_property_acv_shape(seed):
    """The exact shape ACV-BGKM relies on: a matrix with an all-ones first
    column and fewer rows than columns always has a nontrivial null space,
    and any null vector is orthogonal to every row."""
    rng = random.Random(seed)
    field = SMALL
    n = rng.randrange(2, 7)
    rows = [[1] + [rng.randrange(field.p) for _ in range(n)] for _ in range(n)]
    m = Matrix(field, rows)
    v = random_null_vector(m, rng)
    for row in rows:
        assert vec_dot(row, v, field.p) == 0
