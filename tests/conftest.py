"""Shared fixtures and hypothesis configuration for the test suite."""

from __future__ import annotations

import random

import pytest
from hypothesis import HealthCheck, settings

from repro.crypto.pedersen import PedersenParams
from repro.groups import get_group
from repro.mathx.field import PrimeField
from repro.ocbe.base import OCBESetup

# Property tests run crypto-heavy code; keep examples modest and disable
# the deadline (group operations have high variance under load).
settings.register_profile(
    "repro",
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.load_profile("repro")


def pytest_collection_modifyitems(items):
    """Auto-mark genus-2/Jacobian cases slow (the pure-Python hyperelliptic
    backend is orders of magnitude slower than the EC one); explicit
    ``@pytest.mark.slow`` marks cover large-N GKM cases and slow examples."""
    for item in items:
        nodeid = item.nodeid.lower()
        fixturenames = getattr(item, "fixturenames", ())
        if "genus2" in nodeid or "genus2_group" in fixturenames:
            item.add_marker(pytest.mark.slow)


@pytest.fixture
def rng() -> random.Random:
    """Deterministic RNG; reseeded per test."""
    return random.Random(0x5EED)


@pytest.fixture(scope="session")
def toy_group():
    """The exhaustively-testable Schnorr group (p=23, order 11)."""
    return get_group("toy-schnorr")


@pytest.fixture(scope="session")
def ec_group():
    """The default fast EC backend."""
    return get_group("nist-p192")


@pytest.fixture(scope="session")
def genus2_group():
    """The paper's genus-2 Jacobian."""
    return get_group("paper-genus2")


@pytest.fixture(scope="session")
def small_field() -> PrimeField:
    """A small prime field for exhaustive linear-algebra checks."""
    return PrimeField(10007)


@pytest.fixture(scope="session")
def ec_setup(ec_group) -> OCBESetup:
    """OCBE setup over the fast EC backend (shared across tests)."""
    return OCBESetup(pedersen=PedersenParams(ec_group))
