"""The package's public API surface: imports, exports, error hierarchy."""

import pytest

import repro
from repro import errors


class TestExports:
    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert getattr(repro, name, None) is not None, name

    def test_version(self):
        assert repro.__version__.count(".") == 2

    def test_docstring_quickstart_works(self):
        from repro.workloads import build_hospital

        hospital = build_hospital()
        package = hospital.publisher.publish(hospital.document)
        plaintexts = hospital.subscribers["carol"].receive(package)
        assert "Medication" in plaintexts


class TestErrorHierarchy:
    def test_all_errors_derive_from_base(self):
        for name in dir(errors):
            obj = getattr(errors, name)
            if isinstance(obj, type) and issubclass(obj, Exception):
                if obj is not errors.ReproError:
                    assert issubclass(obj, errors.ReproError), name

    @pytest.mark.parametrize(
        "child,parent",
        [
            (errors.NotInvertibleError, errors.MathError),
            (errors.NoSquareRootError, errors.MathError),
            (errors.SingularMatrixError, errors.MathError),
            (errors.NotOnCurveError, errors.GroupError),
            (errors.AuthenticationError, errors.CryptoError),
            (errors.DecryptionError, errors.CryptoError),
            (errors.ProtocolStateError, errors.OCBEError),
            (errors.PolicyParseError, errors.PolicyError),
            (errors.KeyDerivationError, errors.GKMError),
            (errors.CapacityError, errors.GKMError),
            (errors.RegistrationError, errors.SystemError_),
            (errors.NetworkError, errors.SystemError_),
        ],
    )
    def test_specific_parentage(self, child, parent):
        assert issubclass(child, parent)

    def test_catching_base_class_works(self):
        from repro.mathx.modular import modinv

        with pytest.raises(errors.ReproError):
            modinv(0, 7)


class TestSubpackageDocs:
    def test_every_public_module_has_docstring(self):
        import importlib
        import pkgutil

        package = importlib.import_module("repro")
        for info in pkgutil.walk_packages(package.__path__, prefix="repro."):
            module = importlib.import_module(info.name)
            assert module.__doc__, "missing docstring: %s" % info.name
