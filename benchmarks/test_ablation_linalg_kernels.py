"""Ablation A4: pure-Python vs numpy elimination kernels.

The numpy kernel is what makes the paper's N = 1000 sweeps tractable in
Python; this ablation quantifies the gap at identical matrix sizes (the
pure kernel must use the word-sized prime too for apples-to-apples).
"""

import random


from repro.mathx.field import PrimeField
from repro.mathx.linalg import _rref_numpy, _rref_python

FIELD = PrimeField(1073741827)
SIZE = 120


def _rows(seed):
    rng = random.Random(seed)
    return [
        [1] + [rng.randrange(FIELD.p) for _ in range(SIZE)]
        for _ in range(SIZE - 20)
    ]


def test_numpy_kernel(benchmark):
    rows = _rows(1)
    benchmark.pedantic(
        lambda: _rref_numpy(rows, SIZE + 1, FIELD.p), rounds=3, iterations=1
    )


def test_python_kernel(benchmark):
    rows = _rows(1)
    benchmark.pedantic(
        lambda: _rref_python(rows, SIZE + 1, FIELD.p), rounds=2, iterations=1
    )


def test_kernels_equivalent():
    rows = _rows(2)
    reduced_np, pivots_np = _rref_numpy(rows, SIZE + 1, FIELD.p)
    reduced_py, pivots_py = _rref_python(rows, SIZE + 1, FIELD.p)
    assert pivots_np == pivots_py
    assert reduced_np == reduced_py
