"""Shared fixtures for the benchmark suite.

Benchmarks use deterministic RNGs so parameter sweeps are comparable
across runs.  Group/scale notes:

* OCBE benchmarks run on both the paper's genus-2 Jacobian (faithful) and
  the faster EC backend (same protocol, pure-Python-friendly).
* GKM sweeps default to the word-sized field (numpy elimination kernel) at
  the paper's parameterisation (25 policies, ~2 conditions each); the
  80-bit paper field is included at smaller N.  EXPERIMENTS.md reports the
  full-scale harness runs.
"""

import random

import pytest

from repro.crypto.pedersen import PedersenParams
from repro.groups import get_group
from repro.ocbe.base import OCBESetup


import pathlib

_BENCH_DIR = pathlib.Path(__file__).resolve().parent


def pytest_collection_modifyitems(items):
    """The whole benchmark suite is excluded from the fast tier.

    The hook fires session-wide, so restrict it to items collected from
    this directory.
    """
    for item in items:
        if _BENCH_DIR in pathlib.Path(str(item.fspath)).resolve().parents:
            item.add_marker(pytest.mark.slow)


@pytest.fixture
def rng():
    return random.Random(0xBE7C)


@pytest.fixture(scope="session")
def ec_setup():
    return OCBESetup(pedersen=PedersenParams(get_group("nist-p192")))


@pytest.fixture(scope="session")
def genus2_setup():
    return OCBESetup(pedersen=PedersenParams(get_group("paper-genus2")))
