"""Figure 5: ACV broadcast size vs N per user configuration.

Paper trend: a few KB, linear in N, increasing with the subscriber
fraction (their ACVs are compressed, so sparse vectors from small
populations transmit fewer field elements).  Size is not a timing, so the
benchmark target measures header *serialization*; the sizes themselves
are asserted and printed by the harness (examples/reproduce_evaluation.py
and EXPERIMENTS.md).
"""

import random

import pytest

from repro.gkm.acv import PAPER_FIELD, AcvBgkm
from repro.workloads.generator import user_configuration_rows


@pytest.mark.parametrize("fraction", [0.25, 1.0], ids=["25pct", "100pct"])
@pytest.mark.parametrize("max_users", [100, 500])
def test_header_serialization(benchmark, max_users, fraction):
    rng = random.Random(max_users)
    gkm = AcvBgkm(PAPER_FIELD)
    rows, capacity = user_configuration_rows(max_users, fraction, rng=rng)
    _, header = gkm.generate(rows, n_max=capacity, rng=rng)
    raw = benchmark(header.to_bytes)
    assert len(raw) > 0


def test_size_trend_matches_paper():
    """Assert the Figure-5 shape: size grows with N and with the fraction."""
    rng = random.Random(9)
    gkm = AcvBgkm(PAPER_FIELD)
    sizes = {}
    for n in (100, 400):
        for fraction in (0.25, 1.0):
            rows, capacity = user_configuration_rows(n, fraction, rng=rng)
            _, header = gkm.generate(rows, n_max=capacity, rng=rng)
            sizes[(n, fraction)] = header.byte_size()
    assert sizes[(400, 1.0)] > sizes[(100, 1.0)]          # linear in N
    assert sizes[(400, 1.0)] > sizes[(400, 0.25)]          # grows with subs
    assert sizes[(400, 1.0)] < 40 * 1024                   # "a few KB"
