"""Socket-runtime overhead vs the in-memory router.

Companion to ``test_wire_overhead.py``: that file pins the paper's
bandwidth claims (bytes on the router); this one measures what the
``repro.net`` layer adds on top -- registrations/sec and broadcast
fan-out latency over loopback TCP through the broker, against the same
protocol run on ``InMemoryTransport``.  Both backends carry *identical*
frames, which the kind-count/byte comparisons verify; the network can
only add transport cost, never traffic.

Numbers are printed for the record (EXPERIMENTS-style); assertions are
functional (everything completes, traffic identical) plus generous
sanity ceilings, so the suite stays robust on loaded CI hosts.
"""

import random
import time

from repro.documents.model import Document
from repro.gkm.acv import FAST_FIELD
from repro.groups import get_group
from repro.net.runtime import BrokerThread, pump_until, wait_until_quiet
from repro.net.transport import TcpTransport
from repro.policy.acp import parse_policy
from repro.system.idmgr import IdentityManager
from repro.system.idp import IdentityProvider
from repro.system.publisher import Publisher
from repro.system.service import (
    DisseminationService,
    SubscriberClient,
    run_until_idle,
)
from repro.system.subscriber import Subscriber
from repro.system.transport import InMemoryTransport

N_SUBS = 8
ATTRIBUTE_BITS = 8

REGISTRATION_KINDS = (
    "condition-query",
    "condition-list",
    "token+condition-request",
    "registration-ack",
    "ocbe-bit-commitments",
    "ocbe-envelope",
)


def _build_entities(seed):
    rng = random.Random(seed)
    group = get_group("nist-p192")
    idp = IdentityProvider("hr", group, rng=rng)
    idmgr = IdentityManager(group, rng=rng)
    idmgr.trust_idp(idp)
    publisher = Publisher(
        "pub", idmgr.params, idmgr.public_key, gkm_field=FAST_FIELD,
        attribute_bits=ATTRIBUTE_BITS, rng=rng,
    )
    publisher.add_policy(parse_policy("clearance >= 3", ["body"], "doc"))
    subs = []
    for i in range(N_SUBS):
        name = "user%d" % i
        idp.enroll(name, "clearance", 5)
        sub = Subscriber(idmgr.assign_pseudonym(), publisher.params, rng=rng)
        token, x, r = idmgr.issue_token(
            sub.nym, idp.assert_attribute(name, "clearance"), rng=rng
        )
        sub.hold_token(token, x, r)
        subs.append(sub)
    return publisher, subs


def _run_lifecycle(transport, publisher, subs, networked):
    """Register everyone, broadcast once; returns phase timings."""
    service = DisseminationService(publisher, transport)
    clients = [SubscriberClient(sub, transport, "pub") for sub in subs]
    endpoints = [service, *clients]

    t0 = time.perf_counter()
    for client in clients:
        client.register_all_attributes()
    if networked:
        pump_until(
            endpoints,
            lambda: all(
                not c.registering() and c.results.get("clearance") for c in clients
            ),
            timeout=120.0,
        )
        wait_until_quiet(transport, endpoints, timeout=120.0)
    else:
        run_until_idle(endpoints)
    t_register = time.perf_counter() - t0

    document = Document.of("doc", {"body": b"payload" * 64})
    t0 = time.perf_counter()
    service.publish(document)
    if networked:
        pump_until(endpoints, lambda: all(c.packages for c in clients), timeout=120.0)
    else:
        run_until_idle(endpoints)
    t_broadcast = time.perf_counter() - t0

    for client in clients:
        assert client.latest_plaintexts()["body"] == b"payload" * 64
    return t_register, t_broadcast


class TestNetThroughput:
    def test_loopback_tcp_vs_inmemory(self):
        memory = InMemoryTransport()
        publisher, subs = _build_entities(seed=0xBEEF)
        mem_register, mem_broadcast = _run_lifecycle(
            memory, publisher, subs, networked=False
        )

        publisher, subs = _build_entities(seed=0xBEEF)
        with BrokerThread() as broker:
            with TcpTransport(broker.host, broker.port) as tcp:
                tcp_register, tcp_broadcast = _run_lifecycle(
                    tcp, publisher, subs, networked=True
                )
                network = tcp.snapshot()

        print("\n-- %d subscribers, l=%d ----------------------------------"
              % (N_SUBS, ATTRIBUTE_BITS))
        print("registrations/sec   in-memory %8.1f   loopback TCP %8.1f"
              % (N_SUBS / mem_register, N_SUBS / tcp_register))
        print("registration wall   in-memory %7.3fs   loopback TCP %7.3fs"
              % (mem_register, tcp_register))
        print("broadcast fan-out   in-memory %7.1fms  loopback TCP %7.1fms"
              % (mem_broadcast * 1e3, tcp_broadcast * 1e3))

        # Identical protocol traffic on both backends: same message mix...
        assert network.kinds_count() == memory.kinds_count()
        # ...and the same O(l) registration byte trajectory (transcript
        # sizes are value-independent by design; tiny per-run variation
        # comes only from length-prefixed signature scalars).
        mem_bytes = sum(
            m.size for m in memory.messages if m.kind in REGISTRATION_KINDS
        )
        net_bytes = sum(
            m.size for m in network.messages if m.kind in REGISTRATION_KINDS
        )
        print("registration bytes  in-memory %8d   loopback TCP %8d"
              % (mem_bytes, net_bytes))
        from repro.bench.runner import Measurement, emit_bench_json

        emit_bench_json(
            "net_throughput",
            op="registration+broadcast",
            params={"n_subscribers": N_SUBS, "attribute_bits": ATTRIBUTE_BITS},
            measurements={
                "register_inmemory": Measurement(
                    mem_register, mem_register, mem_register, 1),
                "register_tcp": Measurement(
                    tcp_register, tcp_register, tcp_register, 1),
                "broadcast_inmemory": Measurement(
                    mem_broadcast, mem_broadcast, mem_broadcast, 1),
                "broadcast_tcp": Measurement(
                    tcp_broadcast, tcp_broadcast, tcp_broadcast, 1),
            },
            bytes_counts={"registration_inmemory": mem_bytes,
                          "registration_tcp": net_bytes},
        )
        assert abs(net_bytes - mem_bytes) <= 0.02 * mem_bytes
        # Broadcast stays one multicast transmission on the network too.
        assert len([m for m in network.messages
                    if m.kind == "broadcast-package"]) == 1
        # Generous sanity ceiling, not a perf gate: the socket hop must not
        # change the complexity class of an 8-subscriber registration run.
        assert tcp_register < max(60.0, 50 * mem_register)

    def test_fanout_latency_grows_gently_with_population(self):
        """Broadcast latency over TCP: one frame in, N pushes out.  The
        per-subscriber cost must look linear-ish, never quadratic."""
        timings = {}
        for n in (4, 16):
            rng = random.Random(1000 + n)
            with BrokerThread() as broker:
                with TcpTransport(broker.host, broker.port) as tcp:
                    tcp.register("pub")
                    receivers = ["sub%02d" % i for i in range(n)]
                    for name in receivers:
                        tcp.register(name)
                    payload = rng.randbytes(4096)
                    t0 = time.perf_counter()
                    deadline = t0 + 60.0
                    tcp.broadcast("pub", "pkg", payload)
                    got = {name: 0 for name in receivers}
                    while not all(got.values()):
                        assert time.perf_counter() < deadline, (
                            "fan-out stalled: %s" % {
                                k: v for k, v in got.items() if not v
                            },
                        )
                        for name in receivers:
                            got[name] += len(tcp.poll(name))
                    timings[n] = time.perf_counter() - t0
        print("\nbroadcast fan-out latency: %s"
              % {n: "%.1fms" % (t * 1e3) for n, t in timings.items()})
        per_sub = {n: t / n for n, t in timings.items()}
        assert per_sub[16] < 50 * per_sub[4], "fan-out cost exploded"
