"""Figure 3: ACV generation time vs maximum users N per user configuration.

Paper trend: cubic-ish growth in N (null-space solve), increasing with the
fraction of current subscribers; < 45 s at N = 1000 on their NTL stack.
We sweep the word-sized field (vectorised numpy elimination) and include
the 80-bit paper field at N = 100 for the faithful arithmetic.
"""

import random

import pytest

from repro.gkm.acv import FAST_FIELD, PAPER_FIELD, AcvBgkm
from repro.workloads.generator import user_configuration_rows


@pytest.mark.parametrize("fraction", [0.25, 1.0], ids=["25pct", "100pct"])
@pytest.mark.parametrize("max_users", [100, 250, 500])
def test_acv_generation_fast_field(benchmark, max_users, fraction):
    rng = random.Random(max_users)
    gkm = AcvBgkm(FAST_FIELD)
    rows, capacity = user_configuration_rows(max_users, fraction, rng=rng)
    benchmark.pedantic(
        lambda: gkm.generate(rows, n_max=capacity, rng=rng),
        rounds=2,
        iterations=1,
    )


@pytest.mark.parametrize("fraction", [1.0], ids=["100pct"])
def test_acv_generation_paper_field_n100(benchmark, fraction):
    """Faithful 80-bit field (pure-Python kernel) at N = 100."""
    rng = random.Random(7)
    gkm = AcvBgkm(PAPER_FIELD)
    rows, capacity = user_configuration_rows(100, fraction, rng=rng)
    benchmark.pedantic(
        lambda: gkm.generate(rows, n_max=capacity, rng=rng),
        rounds=2,
        iterations=1,
    )
