"""Figure 4: subscriber key-derivation time vs N.

Paper trend: a few milliseconds, linear in N (N+1 hashes + one inner
product), essentially independent of the subscriber fraction.
"""

import random

import pytest

from repro.gkm.acv import FAST_FIELD, PAPER_FIELD, AcvBgkm
from repro.workloads.generator import user_configuration_rows


@pytest.mark.parametrize("max_users", [100, 500, 1000])
def test_key_derivation_fast_field(benchmark, max_users):
    rng = random.Random(max_users)
    gkm = AcvBgkm(FAST_FIELD)
    rows, capacity = user_configuration_rows(max_users, 0.25, rng=rng)
    key, header = gkm.generate(rows, n_max=capacity, rng=rng)
    result = benchmark(lambda: gkm.derive(header, rows[0]))
    assert result == key


def test_key_derivation_paper_field_n500(benchmark):
    rng = random.Random(1)
    gkm = AcvBgkm(PAPER_FIELD)
    rows, capacity = user_configuration_rows(500, 0.25, rng=rng)
    key, header = gkm.generate(rows, n_max=capacity, rng=rng)
    result = benchmark(lambda: gkm.derive(header, rows[0]))
    assert result == key
