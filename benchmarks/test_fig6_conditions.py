"""Figure 6: ACV generation / key derivation vs conditions per policy.

Paper trend (N = 500, 25 policies): key derivation flat; ACV generation
increases slightly (< 100 ms over the sweep) because each matrix entry
hashes a longer CSS concatenation.
"""

import random

import pytest

from repro.gkm.acv import FAST_FIELD, AcvBgkm
from repro.workloads.generator import user_configuration_rows

N = 200  # scaled from the paper's 500 to keep pytest-benchmark rounds fast


@pytest.mark.parametrize("conditions", [1, 5, 10])
def test_generation_vs_conditions(benchmark, conditions):
    rng = random.Random(conditions)
    gkm = AcvBgkm(FAST_FIELD)
    rows, capacity = user_configuration_rows(
        N, 1.0, avg_conditions=conditions, rng=rng
    )
    benchmark.pedantic(
        lambda: gkm.generate(rows, n_max=capacity, rng=rng), rounds=2, iterations=1
    )


@pytest.mark.parametrize("conditions", [1, 5, 10])
def test_derivation_vs_conditions(benchmark, conditions):
    rng = random.Random(conditions)
    gkm = AcvBgkm(FAST_FIELD)
    rows, capacity = user_configuration_rows(
        N, 1.0, avg_conditions=conditions, rng=rng
    )
    key, header = gkm.generate(rows, n_max=capacity, rng=rng)
    result = benchmark(lambda: gkm.derive(header, rows[0]))
    assert result == key
