"""Table II: EQ-OCBE per-step cost.

Paper (genus-2, C++/NTL, 2008 laptop): create commitments 0.00 ms,
open envelope 35.25 ms, compose envelope 11.80 ms.  We reproduce the
*structure* -- zero receiver pre-work, open and compose within a small
factor of each other, both dominated by one scalar multiplication -- on
the same curve in pure Python, plus the faster EC backend.
"""

import pytest

from repro.ocbe.eq import EqOCBEReceiver, EqOCBESender
from repro.ocbe.predicates import EqPredicate

MESSAGE = b"conditional-subscription-secret!"


def _prepared(setup, rng):
    predicate = EqPredicate(28)
    commitment, r = setup.pedersen.commit(28, rng=rng)
    sender = EqOCBESender(setup, predicate, rng)
    receiver = EqOCBEReceiver(setup, predicate, 28, r, commitment, rng)
    envelope = sender.compose(commitment, None, MESSAGE)
    return commitment, sender, receiver, envelope


@pytest.mark.parametrize("group", ["paper-genus2", "nist-p192"])
def test_compose_envelope_pub(benchmark, group, ec_setup, genus2_setup, rng):
    setup = genus2_setup if group == "paper-genus2" else ec_setup
    commitment, sender, _, _ = _prepared(setup, rng)
    benchmark.pedantic(
        lambda: sender.compose(commitment, None, MESSAGE), rounds=3, iterations=1
    )


@pytest.mark.parametrize("group", ["paper-genus2", "nist-p192"])
def test_open_envelope_sub(benchmark, group, ec_setup, genus2_setup, rng):
    setup = genus2_setup if group == "paper-genus2" else ec_setup
    _, _, receiver, envelope = _prepared(setup, rng)
    result = benchmark.pedantic(
        lambda: receiver.open(envelope), rounds=3, iterations=1
    )
    assert result == MESSAGE
