"""The churn scenario benchmark (nightly slow tier).

Runs the builtin ``churn`` scenario -- >= 64 subscribers across >= 2
publishers with >= 3 churn phases (revoke storm, replacement arrivals,
a kill-and-recover flap wave, a second storm) -- over BOTH drivers.
The engine itself asserts the paper's invariants after every phase
(revoked members locked out, current members derive the epoch key,
rekeys generate zero unicast), so a passing run *is* the correctness
claim; this file adds the driver-equivalence assertion (byte-identical
protocol traffic over TCP) and emits the BENCH_load_*.json trajectory.

Also measures the churn hot path optimisation: revoking k members as a
batch followed by ONE publish (one ACV matrix build) versus the naive
revoke-publish loop (k matrix builds).
"""

import random

from repro.bench.runner import avg_time, emit_bench_json, format_table
from repro.documents.model import Document
from repro.gkm.acv import FAST_FIELD
from repro.groups import get_group
from repro.load import bucketed, churn_scenario, run_scenario
from repro.policy.acp import parse_policy
from repro.system.idmgr import IdentityManager
from repro.system.idp import IdentityProvider
from repro.system.publisher import Publisher


def _emit_report(report, bench_name):
    print()
    print(report.format())
    path = report.emit_bench(bench_name)
    print("wrote %s" % path)


def test_churn_scenario_over_both_drivers():
    scenario = churn_scenario()
    # The acceptance shape: >= 64 subscribers, >= 2 publishers, >= 3
    # churn phases.
    assert scenario.phases[0].count >= 64
    assert len(scenario.publishers) >= 2
    churn = [p for p in scenario.phases[1:] if p.kind in ("join", "revoke", "flap")]
    assert len(churn) >= 3

    memory = run_scenario(scenario, driver="memory")
    _emit_report(memory, "load_churn_memory")

    # The TCP run supervises the broker as its own OS process: every
    # frame of the churn crosses a real process boundary.
    tcp = run_scenario(scenario, driver="tcp", broker="process")
    _emit_report(tcp, "load_churn_tcp")

    # Driver equivalence: identical protocol traffic, byte for byte.
    assert tcp.bytes_by_kind() == memory.bytes_by_kind()
    assert [p.frames for p in tcp.phases] == [p.frames for p in memory.phases]
    for report in (memory, tcp):
        assert report.params["members_total"] >= 64
        assert report.params["members_revoked"] >= 2
        # Rekeys happened in every phase and stayed broadcast-only
        # (enforced per phase by the engine's invariant checks).
        assert all(p.rekeys >= 1 for p in report.phases)


def test_bucketed_churn_rekey_beats_dense():
    """The ISSUE-5 acceptance number: the bucketed churn scenario at
    N=64 spends strictly less wall time in the publish-path rekey than
    the dense baseline, with every invariant (incl. the bucket-layout
    audit) asserted after each phase by the engine itself.

    Emits ``BENCH_load_churn_bucketed_memory.json`` alongside the dense
    ``BENCH_load_churn_memory.json`` the sibling test writes, so the
    artifact history carries both sides of the curve.
    """
    dense_report = run_scenario(churn_scenario(), driver="memory")
    split_report = run_scenario(bucketed(churn_scenario()), driver="memory")
    _emit_report(split_report, "load_churn_bucketed_memory")

    print("rekey publish wall: dense %.1f ms, bucketed %.1f ms"
          % (dense_report.rekey_publish_s * 1e3,
             split_report.rekey_publish_s * 1e3))
    # Strictly below the dense baseline: in total, and in every revoke
    # phase (where the membership change invalidates the ACV cache and
    # the elimination actually reruns).  Pure broadcast phases hit the
    # cache under BOTH strategies, so neither side pays a matrix there.
    assert split_report.rekey_publish_s < dense_report.rekey_publish_s
    dense_phases = {p.label: p for p in dense_report.phases}
    for phase in split_report.phases:
        if phase.kind == "revoke":
            assert phase.rekey_publish_s < dense_phases[phase.label].rekey_publish_s

    # Same membership trajectory on both sides (same seed, same spec).
    assert [p.members_alive for p in split_report.phases] == [
        p.members_alive for p in dense_report.phases
    ]
    assert split_report.params["members_total"] == (
        dense_report.params["members_total"]
    )


# -- the batched-rekey hot path ----------------------------------------------

N_MEMBERS = 64
K_REVOKED = 8
SEED = 0x4EC4


def _build_world():
    rng = random.Random(SEED)
    group = get_group("nist-p192")
    idp = IdentityProvider("hr", group, rng=rng)
    idmgr = IdentityManager(group, rng=rng)
    idmgr.trust_idp(idp)
    publisher = Publisher(
        "pub", idmgr.params, idmgr.public_key, gkm_field=FAST_FIELD,
        attribute_bits=8, rng=rng,
    )
    publisher.add_policy(parse_policy("clr >= 40", ["body"], "doc"))
    table_rng = random.Random(SEED + 1)
    for i in range(N_MEMBERS):
        publisher.table.set(
            "pn-%04d" % i, "clr >= 40",
            bytes(table_rng.randrange(256) for _ in range(16)),
        )
    return publisher


DOC = Document.of("doc", {"body": b"bulletin body"})


def test_batched_revoke_rekey_is_one_matrix_build():
    nyms = ["pn-%04d" % i for i in range(K_REVOKED)]

    def naive():
        publisher = _build_world()
        for nym in nyms:  # one matrix build per revocation
            assert publisher.revoke_subscription(nym)
            publisher.publish(DOC)

    def batched():
        publisher = _build_world()
        assert publisher.revoke_subscriptions(nyms) == K_REVOKED
        publisher.publish(DOC)  # ONE matrix build for the whole storm

    naive_m = avg_time(naive, rounds=3)
    batched_m = avg_time(batched, rounds=3)

    print()
    print(format_table(
        "revoke-storm rekey, N=%d members, k=%d revoked"
        % (N_MEMBERS, K_REVOKED),
        ["strategy", "mean ms", "min ms", "max ms"],
        [
            ["revoke+publish x k", naive_m.mean_ms, naive_m.minimum * 1e3,
             naive_m.maximum * 1e3],
            ["batch revoke, 1 publish", batched_m.mean_ms,
             batched_m.minimum * 1e3, batched_m.maximum * 1e3],
        ],
    ))
    path = emit_bench_json(
        "load_rekey_batching",
        op="revoke-storm-rekey",
        params={"n_members": N_MEMBERS, "k_revoked": K_REVOKED,
                "gkm_field": "fast"},
        measurements={"naive_per_revoke": naive_m, "batched": batched_m},
    )
    print("wrote %s" % path)

    # Both end in the same table; the batched path must be decisively
    # cheaper (k matrix builds vs one, so roughly k-fold).
    assert batched_m.mean < naive_m.mean

    # And the resulting broadcast is equivalent: the remaining members'
    # rows derive the key, the revoked ones are locked out.
    publisher = _build_world()
    publisher.revoke_subscriptions(nyms)
    package = publisher.publish(DOC)
    header = package.headers[0]
    gkm = publisher._gkm
    key = publisher.last_keys[("doc", header.config_id)]
    survivor_css = publisher.table.get("pn-%04d" % K_REVOKED, "clr >= 40")
    assert gkm.derive(header.acv, (survivor_css,)) == key
