"""Recovery-time benchmark: snapshot+replay vs cold re-registration.

The number this whole subsystem exists for: restoring a publisher's CSS
table from disk must be orders of magnitude cheaper than re-earning it
through N OCBE registrations (the O(N)-unicast storm a stateless restart
causes).  Three recovery shapes are measured --

* ``wal_replay``      -- no snapshot yet: genesis + N journal records;
* ``snapshot_load``   -- after compaction: one snapshot, empty WAL;
* ``cold_reregistration`` -- no durable state: every subscriber runs the
  full wire registration again.

-- and emitted as ``BENCH_store_recovery.json`` via the shared
machine-readable reporter, so the recovery-cost trajectory is trackable
across PRs next to the wall-clock tables this file prints.
"""

import os
import random

from repro.bench.runner import avg_time, emit_bench_json, format_table
from repro.gkm.acv import FAST_FIELD
from repro.groups import get_group
from repro.policy.acp import parse_policy
from repro.store import PublisherPersistence
from repro.store.state import SNAPSHOT_FILE
from repro.system.idmgr import IdentityManager
from repro.system.idp import IdentityProvider
from repro.system.publisher import Publisher
from repro.system.service import (
    DisseminationService,
    SubscriberClient,
    run_until_idle,
)
from repro.system.subscriber import Subscriber
from repro.system.transport import InMemoryTransport

N_SUBS = 16
SEED = 0xC4A5


def _build_publisher(rng):
    group = get_group("nist-p192")
    idp = IdentityProvider("hr", group, rng=rng)
    idmgr = IdentityManager(group, rng=rng)
    idmgr.trust_idp(idp)
    pub = Publisher(
        "pub", idmgr.params, idmgr.public_key, gkm_field=FAST_FIELD,
        attribute_bits=8, rng=rng,
    )
    pub.add_policy(parse_policy("role = doc", ["body"], "doc"))
    return idp, idmgr, pub


def _enroll(idp, idmgr, pub, rng):
    clients_input = []
    for i in range(N_SUBS):
        name = "user%d" % i
        idp.enroll(name, "role", "doc")
        sub = Subscriber(idmgr.assign_pseudonym(), pub.params, rng=rng)
        token, x, r = idmgr.issue_token(
            sub.nym, idp.assert_attribute(name, "role"), rng=rng
        )
        sub.hold_token(token, x, r)
        clients_input.append(sub)
    return clients_input


def _register_all(pub, subscribers):
    """One full cold registration pass; returns the transport."""
    transport = InMemoryTransport()
    service = DisseminationService(pub, transport)
    clients = [
        SubscriberClient(sub, transport, pub.name) for sub in subscribers
    ]
    for client in clients:
        client.register_all_attributes()
    run_until_idle([service, *clients])
    assert pub.table.cell_count() == N_SUBS
    return transport


def _dir_size(path, name_filter=lambda n: True):
    return sum(
        os.path.getsize(os.path.join(path, n))
        for n in os.listdir(path)
        if name_filter(n)
    )


def test_recovery_vs_cold_reregistration(tmp_path):
    data_dir = str(tmp_path / "pub-data")

    # -- populate the durable state once (also the cold-path timing) ------
    rng = random.Random(SEED)
    idp, idmgr, pub = _build_publisher(rng)
    subscribers = _enroll(idp, idmgr, pub, rng)
    persistence = PublisherPersistence.attach(data_dir, pub, sync=False)
    cold = avg_time(lambda: _register_all(pub, subscribers), rounds=1)
    persistence.close()
    wal_bytes = _dir_size(data_dir, lambda n: n.startswith("wal-"))

    def rebuild():
        _, _, fresh = _build_publisher(random.Random(SEED))
        return fresh

    # -- recovery shape 1: WAL replay (journal only, no compaction) -------
    def recover():
        p = PublisherPersistence.attach(data_dir, rebuild(), sync=False)
        assert p.entity.table.cell_count() == N_SUBS
        p.close()

    wal_replay = avg_time(recover, rounds=5)

    # -- recovery shape 2: snapshot load (after compaction) ---------------
    p = PublisherPersistence.attach(data_dir, rebuild(), sync=False)
    p.snapshot_now()
    p.close()
    snapshot_bytes = _dir_size(data_dir, lambda n: n == SNAPSHOT_FILE)
    snapshot_load = avg_time(recover, rounds=5)

    print()
    print(format_table(
        "Publisher recovery, N=%d registered subscribers" % N_SUBS,
        ["path", "mean ms", "min ms", "max ms"],
        [
            ["cold re-registration", cold.mean_ms, cold.minimum * 1e3,
             cold.maximum * 1e3],
            ["WAL replay", wal_replay.mean_ms, wal_replay.minimum * 1e3,
             wal_replay.maximum * 1e3],
            ["snapshot load", snapshot_load.mean_ms,
             snapshot_load.minimum * 1e3, snapshot_load.maximum * 1e3],
        ],
    ))

    path = emit_bench_json(
        "store_recovery",
        op="publisher-recovery",
        params={"n_subscribers": N_SUBS, "group": "nist-p192",
                "gkm_field": "fast", "conditions_per_sub": 1},
        measurements={
            "cold_reregistration": cold,
            "wal_replay": wal_replay,
            "snapshot_load": snapshot_load,
        },
        bytes_counts={"wal": wal_bytes, "snapshot": snapshot_bytes},
    )
    print("wrote %s" % path)

    # The whole point of the subsystem: recovery beats re-registration.
    assert wal_replay.mean < cold.mean
    assert snapshot_load.mean < cold.mean
