"""Dense-vs-bucketed ablation through the REAL publish path.

``benchmarks/test_ablation_buckets.py`` measures the raw Section VIII-C
scheme; this file measures what PR 5 wired up: ``Publisher.publish``
under the ``gkm`` strategy knob, cold (cache disabled -- the honest
elimination cost) and warm (the (member-row set, epoch) ACV build cache
across consecutive publishes of an unchanged table).

Emits ``BENCH_gkm_bucketed_rekey.json``, the artifact CI's bench-gate
tracks: per-N cold publish means for both strategies plus the warm
cache-hit mean, and the exact broadcast sizes (the bucketed trade-off:
~B^2 faster elimination for a slightly larger header).
"""

import random

from repro.bench.runner import avg_time, emit_bench_json, format_table
from repro.documents.model import Document
from repro.gkm.acv import FAST_FIELD
from repro.gkm.buckets import BucketedHeader
from repro.groups import get_group
from repro.policy.acp import parse_policy
from repro.system.idmgr import IdentityManager
from repro.system.idp import IdentityProvider
from repro.system.publisher import Publisher

POPULATIONS = (64, 256, 512)
SEED = 0xB0CA

DOC = Document.of("doc", {"body": b"bulletin body"})


def _build_publisher(n, gkm, acv_cache):
    rng = random.Random(SEED)
    group = get_group("nist-p192")
    idp = IdentityProvider("hr", group, rng=rng)
    idmgr = IdentityManager(group, rng=rng)
    idmgr.trust_idp(idp)
    publisher = Publisher(
        "pub", idmgr.params, idmgr.public_key, gkm_field=FAST_FIELD,
        attribute_bits=8, rng=rng, gkm=gkm, acv_cache=acv_cache,
    )
    publisher.add_policy(parse_policy("clr >= 40", ["body"], "doc"))
    table_rng = random.Random(SEED + 1)
    for i in range(n):
        publisher.table.set(
            "pn-%04d" % i, "clr >= 40",
            bytes(table_rng.randrange(256) for _ in range(16)),
        )
    return publisher


def test_bucketed_publish_path_beats_dense():
    measurements = {}
    bytes_counts = {}
    rows = []
    for n in POPULATIONS:
        cold = {}
        for gkm in ("dense", "bucketed"):
            publisher = _build_publisher(n, gkm, acv_cache=False)
            cold[gkm] = avg_time(lambda p=publisher: p.publish(DOC), rounds=2)
            measurements["%s_n%d" % (gkm, n)] = cold[gkm]
            package = publisher.publish(DOC)
            bytes_counts["%s_n%d_package" % (gkm, n)] = package.byte_size()
            if gkm == "bucketed":
                acv = package.headers[0].acv
                assert isinstance(acv, BucketedHeader)
                assert len(acv.buckets) > 1
        # Warm: consecutive publishes of an unchanged table hit the ACV
        # build cache and skip the elimination entirely.
        warm_pub = _build_publisher(n, "dense", acv_cache=True)
        warm_pub.publish(DOC)  # populate the cache
        warm = avg_time(lambda: warm_pub.publish(DOC), rounds=3)
        assert warm_pub.acv_cache_stats()["hits"] >= 3
        measurements["dense_n%d_cached" % n] = warm
        rows.append([
            n, cold["dense"].mean_ms, cold["bucketed"].mean_ms,
            cold["dense"].mean / max(cold["bucketed"].mean, 1e-9),
            warm.mean_ms,
            bytes_counts["dense_n%d_package" % n],
            bytes_counts["bucketed_n%d_package" % n],
        ])
        # The tentpole claim, on the publish path itself: the bucketed
        # strategy is strictly faster than one dense elimination at
        # every measured population, and the cache beats both.
        assert cold["bucketed"].mean < cold["dense"].mean
        assert warm.mean < cold["bucketed"].mean

    print()
    print(format_table(
        "Publisher.publish, dense vs bucketed (auto bucket policy)",
        ["N", "dense ms", "bucketed ms", "speedup", "cached ms",
         "dense B", "bucketed B"],
        rows,
    ))
    path = emit_bench_json(
        "gkm_bucketed_rekey",
        op="publish-path-rekey",
        params={
            "populations": list(POPULATIONS),
            "gkm_field": "fast",
            "bucket_policy": "auto",
            "seed": SEED,
        },
        measurements=measurements,
        bytes_counts=bytes_counts,
    )
    print("wrote %s" % path)
