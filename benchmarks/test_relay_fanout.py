"""Relay fan-out latency vs chain depth, and the deep chain at scale.

The federation tier's reason to exist is fan-out: one broadcast frame
travels the chain once per hop and the *deepest* relay pays the
per-subscriber push, so adding depth must cost hops (microseconds), not
population (the N pushes happen exactly once wherever the subscribers
sit).  Two experiments pin that:

* ``test_fanout_latency_vs_depth`` -- raw transport, N=256 subscribers
  all attached at the deepest relay of a depth-1/2/3 chain, measuring
  storm completion wall time.  The acceptance number: depth-3 completes
  within 2x depth-1.  Emits ``BENCH_relay_fanout.json`` (the fast CI
  job runs this file directly; the nightly slow tier repeats it).

* ``test_deep_chain_churn_at_scale`` -- the full churn scenario
  (registration, revoke storms, flap waves; bucketed GKM) at N=256
  behind a 3-deep chain of real relay OS processes, with every
  invariant (lockout, derivation, zero-unicast rekey, per-hop
  exactly-once) asserted by the engine after each phase -- then the
  same population on the single in-memory broker, asserting the relay
  tier added *zero* protocol traffic: byte-identical accounting.
"""

import time

from repro.bench.runner import Measurement, emit_bench_json
from repro.load import bucketed, churn_scenario, run_scenario, with_relays
from repro.net.relay import request_local_stats
from repro.net.runtime import BrokerThread, RelayThread, wait_until_quiet
from repro.net.transport import TcpTransport

N_SUBS = 256
ROUNDS = 4          # broadcasts per storm
STORMS = 2          # repeat the storm; min wall is the stable number
PAYLOAD = b"\xcd" * 4096
DEPTHS = (1, 2, 3)


def _chain(broker, depth):
    """``depth`` relays, each hanging off the previous (relay1 at root)."""
    relays = []
    upstream_host, upstream_port = broker.host, broker.port
    for index in range(depth):
        relay = RelayThread(
            "relay%d" % (index + 1), upstream_host, upstream_port
        )
        relays.append(relay)
        upstream_host, upstream_port = relay.host, relay.port
    return relays


def _storm_wall(transport, receivers):
    """Broadcast ``ROUNDS`` frames; wall time until everyone has them all."""
    t0 = time.perf_counter()
    for _ in range(ROUNDS):
        transport.broadcast("pub", "pkg", PAYLOAD)
    deadline = t0 + 120.0
    got = {name: 0 for name in receivers}
    while not all(count == ROUNDS for count in got.values()):
        assert time.perf_counter() < deadline, (
            "fan-out stalled: %d/%d complete"
            % (sum(1 for c in got.values() if c == ROUNDS), len(got)),
        )
        for name in receivers:
            if got[name] < ROUNDS:
                got[name] += len(transport.poll(name))
    return time.perf_counter() - t0


def test_fanout_latency_vs_depth():
    timings = {}
    for depth in DEPTHS:
        with BrokerThread() as broker:
            relays = _chain(broker, depth)
            deepest = relays[-1]
            try:
                with TcpTransport(broker.host, broker.port) as transport:
                    transport.register("pub")  # the origin, at the root
                    receivers = ["sub%03d" % i for i in range(N_SUBS)]
                    for name in receivers:
                        # Worst case: the whole population at the far end
                        # of the chain, every frame riding the full depth.
                        transport.set_attach_point(
                            name, deepest.host, deepest.port
                        )
                        transport.register(name)
                    walls = [
                        _storm_wall(transport, receivers)
                        for _ in range(STORMS)
                    ]
                    wait_until_quiet(transport)
                    # Exactly-once per hop: every relay forwarded each
                    # multicast once, deduped nothing, and only the
                    # deepest paid the per-subscriber push.
                    for index, relay in enumerate(relays):
                        local = request_local_stats(relay.host, relay.port)
                        assert local.counter("depth") == index + 1
                        assert (
                            local.counter("broadcasts_down")
                            == STORMS * ROUNDS
                        )
                        assert local.counter("dupes_dropped") == 0
                        assert local.counter("unicast_down") == 0
                        expected = (
                            STORMS * ROUNDS * N_SUBS
                            if relay is deepest else 0
                        )
                        assert (
                            local.counter("broadcast_deliveries") == expected
                        )
            finally:
                for relay in reversed(relays):
                    relay.stop()
        timings[depth] = Measurement(
            mean=sum(walls) / len(walls),
            minimum=min(walls),
            maximum=max(walls),
            rounds=len(walls),
        )

    print("\nfan-out storm (%d x %d frames x %d subscribers, %d-byte payload)"
          % (STORMS, ROUNDS, N_SUBS, len(PAYLOAD)))
    for depth in DEPTHS:
        m = timings[depth]
        print("  depth %d: min %7.1fms  mean %7.1fms"
              % (depth, m.minimum * 1e3, m.mean_ms))
    path = emit_bench_json(
        "relay_fanout",
        op="broadcast-storm-completion",
        params={"n_subscribers": N_SUBS, "rounds": ROUNDS,
                "storms": STORMS, "payload": len(PAYLOAD),
                "depths": list(DEPTHS)},
        measurements={
            "depth%d" % depth: timings[depth] for depth in DEPTHS
        },
        # Deterministic by construction (and depth-independent): what one
        # completed storm delivers.  The bytes-only fallback gate can
        # compare this exactly on any hardware.
        bytes_counts={"delivered_per_storm": ROUNDS * N_SUBS * len(PAYLOAD)},
    )
    print("wrote %s" % path)

    # The acceptance number: two extra hops cost two extra loopback
    # frame forwards for the *inbound* frame only -- the N-subscriber
    # push happens exactly once either way -- so a 3-deep chain must
    # complete the storm within 2x the single-relay wall.  Min-of-storms
    # is the comparison: the first storm on a fresh chain can pay
    # one-off warmup (allocator, socket autotuning) that is not a
    # depth effect.
    assert timings[3].minimum <= 2.0 * timings[1].minimum, (
        "depth-3 fan-out %.1fms exceeded 2x depth-1 %.1fms"
        % (timings[3].minimum * 1e3, timings[1].minimum * 1e3)
    )


def test_deep_chain_churn_at_scale():
    """The ISSUE-6 acceptance run: churn at N=256 behind 3 chained relay
    processes, every engine invariant asserted per phase, and accounting
    byte-identical to the relay-free in-memory run."""
    base = bucketed(churn_scenario(subscribers=256))
    chained = with_relays(base, 3)
    assert chained.phases[0].count >= 256
    assert len(chained.topology) == 3

    tcp = run_scenario(chained, driver="tcp")
    print()
    print(tcp.format())
    path = tcp.emit_bench("load_churn_relay_tcp")
    print("wrote %s" % path)

    memory = run_scenario(base, driver="memory")

    # The relay tier is pure routing: same protocol traffic, byte for
    # byte, frame for frame, as the single in-memory broker -- no
    # unicast rekeys appeared, no frame crossed the accounting log
    # twice.  (Per-hop exactly-once was already asserted per phase by
    # check_relay_hops inside the engine.)
    assert tcp.bytes_by_kind() == memory.bytes_by_kind()
    assert [p.frames for p in tcp.phases] == [p.frames for p in memory.phases]
    for report in (tcp, memory):
        assert report.params["members_total"] >= 256
        assert all(p.rekeys >= 1 for p in report.phases)
