"""Registration-wave benchmark: the OCBE wall, before and after.

Registration is the system's throughput wall: every joining Sub costs
the Pub one OCBE envelope per matching condition, and each envelope is a
handful of fixed-base exponentiations.  This file measures a full join
wave end to end over the wire stack (token issuance, registration
frames, envelope builds, receiver opens) in three configurations --

* ``serial_naive``   -- fixed-base tables disabled: every ``g^x`` walks
  the generic square-and-multiply ladder (the pre-acceleration shape);
* ``serial_fast``    -- fixed-base windowed tables (the default);
* ``pool_fast``      -- tables plus the ``--ocbe-workers`` process pool
  (only a win on multi-core runners; single-core machines record it
  without asserting a speedup).

-- and emits ``BENCH_ocbe_registration.json`` so CI tracks the wave
wall per push and gates regressions.  Wire bytes are deterministic in
the seed and serve as the committed bytes-only baseline.

The quick case (small N) runs per push in the fast-tier workflow step;
the N=500 wave runs nightly with the rest of the slow tier.
"""

import multiprocessing
import random

from repro.bench.runner import avg_time, emit_bench_json, format_table
from repro.gkm.acv import FAST_FIELD
from repro.groups import get_group
from repro.groups._native import BACKEND
from repro.policy.acp import parse_policy
from repro.system.idmgr import IdentityManager
from repro.system.idp import IdentityProvider
from repro.system.publisher import Publisher
from repro.system.service import (
    DisseminationService,
    SubscriberClient,
    run_until_idle,
)
from repro.system.subscriber import Subscriber
from repro.system.transport import InMemoryTransport

SEED = 0xBE7C


class _NaiveTable:
    """Stand-in for :class:`FixedBaseTable` that never precomputes."""

    def __init__(self, base, window=None):
        self.base = base

    def pow(self, exponent):
        return self.base ** exponent


def _legacy_compose_with(self, commitment, aux, message, drawn):
    """The seed's bitwise build: two full pows per bit, no sharing.

    Reproduces the pre-acceleration arithmetic exactly (``(c_i)^y`` and
    ``(c_i g^{-1})^y`` computed independently) so ``serial_naive`` is
    the honest before-this-PR baseline, not a half-accelerated hybrid.
    """
    from typing import List, Tuple

    from repro.errors import ProtocolStateError
    from repro.ocbe.ge import BitwiseEnvelope

    if aux is None or len(aux.commitments) != self.predicate.ell:
        raise ProtocolStateError(
            "expected %d bit commitments" % self.predicate.ell
        )
    params = self.setup.pedersen
    hash_fn = self.setup.hash_fn
    acc = aux.commitments[-1].value
    for i in range(self.predicate.ell - 2, -1, -1):
        acc = acc * acc * aux.commitments[i].value
    if acc != self._check_target(commitment):
        raise ProtocolStateError("bit commitments do not recombine to c")
    y, key_shares, nonce = drawn
    eta = params.h ** y
    g_inv = params.g.inverse()
    bit_ciphers: List[Tuple[bytes, bytes]] = []
    for c_i, k_i in zip(aux.commitments, key_shares):
        row = []
        base = c_i.value
        for j in (0, 1):
            sigma = (base if j == 0 else base * g_inv) ** y
            pad = hash_fn.digest(b"repro/ocbe/bit" + sigma.to_bytes())
            row.append(bytes(a ^ b for a, b in zip(pad, k_i)))
        bit_ciphers.append((row[0], row[1]))
    key = self.setup.envelope_key(b"".join(key_shares))
    return BitwiseEnvelope(
        eta=eta,
        bit_ciphers=tuple(bit_ciphers),
        ciphertext=self.setup.cipher.encrypt(key, message, nonce=nonce),
    )


def _disable_acceleration(monkeypatch):
    """Restore the seed's arithmetic: no tables, no shared-pow algebra."""
    from repro.crypto import pedersen, schnorr_sig
    from repro.ocbe import ge

    monkeypatch.setattr(pedersen, "shared_table", _NaiveTable)
    monkeypatch.setattr(
        schnorr_sig, "generator_table", lambda group: _NaiveTable(group.generator())
    )
    monkeypatch.setattr(ge, "FixedBaseTable", _NaiveTable)
    monkeypatch.setattr(
        ge._BitwiseSenderBase, "compose_with", _legacy_compose_with
    )


def _build_world(n_subs, conditions_per_sub=2):
    rng = random.Random(SEED)
    group = get_group("nist-p192")
    idp = IdentityProvider("hr", group, rng=rng)
    idmgr = IdentityManager(group, rng=rng)
    idmgr.trust_idp(idp)
    pub = Publisher(
        "pub", idmgr.params, idmgr.public_key, gkm_field=FAST_FIELD,
        attribute_bits=16, rng=rng,
    )
    pub.add_policy(parse_policy("level >= 40", ["s1"], "d"))
    if conditions_per_sub > 1:
        pub.add_policy(parse_policy("level < 10", ["s2"], "d"))
    subscribers = []
    for i in range(n_subs):
        name = "user%d" % i
        idp.enroll(name, "level", 41 + i)
        sub = Subscriber(idmgr.assign_pseudonym(), pub.params, rng=rng)
        token, x, r = idmgr.issue_token(
            sub.nym, idp.assert_attribute(name, "level"), rng=rng
        )
        sub.hold_token(token, x, r)
        subscribers.append(sub)
    return pub, subscribers


def _wave(n_subs, workers, conditions_per_sub=2):
    """One full join wave; returns the transport for byte accounting."""
    pub, subscribers = _build_world(n_subs, conditions_per_sub)
    transport = InMemoryTransport()
    service = DisseminationService(pub, transport, ocbe_workers=workers)
    try:
        clients = [
            SubscriberClient(sub, transport, pub.name) for sub in subscribers
        ]
        for client in clients:
            client.register_all_attributes()
        run_until_idle([service, *clients])
        assert pub.table.cell_count() == n_subs * conditions_per_sub
        for sub in subscribers:
            assert "level >= 40" in sub.css_store
    finally:
        service.close()
    return transport


def _emit(name, n_subs, conditions_per_sub, workers, measurements, transport):
    path = emit_bench_json(
        name,
        op="registration-wave",
        params={
            "n_subscribers": n_subs,
            "conditions_per_sub": conditions_per_sub,
            "group": "nist-p192",
            "math_backend": BACKEND,
            "ocbe_workers": workers,
            "cpus": multiprocessing.cpu_count(),
        },
        measurements=measurements,
        bytes_counts={
            "sub_to_pub": sum(
                transport.bytes_sent_by(e)
                for e in transport.entities() if e != "pub"
            ),
            "pub_to_subs": transport.bytes_sent_by("pub"),
        },
    )
    print("wrote %s" % path)


def test_registration_quick(monkeypatch):
    """Per-push microbenchmark: a small wave, naive vs accelerated."""
    n_subs, conds = 8, 2
    workers = 2 if multiprocessing.cpu_count() > 1 else 1

    _disable_acceleration(monkeypatch)
    naive = avg_time(lambda: _wave(n_subs, 0, conds), rounds=1)
    monkeypatch.undo()

    transports = []
    fast = avg_time(
        lambda: transports.append(_wave(n_subs, 0, conds)), rounds=2
    )
    pooled = avg_time(lambda: _wave(n_subs, workers, conds), rounds=1)
    transport = transports[0]

    print()
    print(format_table(
        "OCBE registration wave, N=%d x %d conditions" % (n_subs, conds),
        ["configuration", "mean ms", "speedup vs naive"],
        [
            ["serial, tables off", naive.mean_ms, 1.0],
            ["serial, tables on", fast.mean_ms, naive.mean / fast.mean],
            ["pool x%d, tables on" % workers, pooled.mean_ms,
             naive.mean / pooled.mean],
        ],
    ))

    _emit(
        "ocbe_registration", n_subs, conds, workers,
        {"serial_naive": naive, "serial_fast": fast, "pool_fast": pooled},
        transport,
    )

    # Fixed-base precomputation alone must carry >= 2x end to end; the
    # raw generator-pow speedup is ~6x, so 2x leaves margin for the
    # non-exponentiation share of the wave (framing, GKM, hashing).
    assert naive.mean / fast.mean >= 2.0


def test_registration_wave_64x2(monkeypatch):
    """Nightly 64-subscriber wave: the churn-scale join, before/after."""
    n_subs, conds = 64, 2
    cpus = multiprocessing.cpu_count()
    workers = min(4, cpus)

    _disable_acceleration(monkeypatch)
    naive = avg_time(lambda: _wave(n_subs, 0, conds), rounds=1)
    monkeypatch.undo()

    transports = []
    fast = avg_time(lambda: transports.append(_wave(n_subs, 0, conds)), rounds=1)
    pooled = avg_time(lambda: _wave(n_subs, workers, conds), rounds=1)

    print()
    print(format_table(
        "OCBE registration wave, N=%d x %d conditions" % (n_subs, conds),
        ["configuration", "mean ms", "speedup vs naive"],
        [
            ["serial, tables off", naive.mean_ms, 1.0],
            ["serial, tables on", fast.mean_ms, naive.mean / fast.mean],
            ["pool x%d, tables on" % workers, pooled.mean_ms,
             naive.mean / pooled.mean],
        ],
    ))

    _emit(
        "ocbe_registration_wave", n_subs, conds, workers,
        {"serial_naive": naive, "serial_fast": fast, "pool_fast": pooled},
        transports[0],
    )

    assert naive.mean / fast.mean >= 2.0
    if cpus >= 4:
        # The pool only helps with real cores underneath; the combined
        # claim (tables + workers) is gated where it can hold.
        assert naive.mean / pooled.mean >= 3.0


def test_registration_wave_n500():
    """Nightly N=500 join wave: the paper-scale shape, in wall seconds."""
    n_subs, conds = 500, 2
    workers = min(4, multiprocessing.cpu_count())

    transports = []
    wave = avg_time(
        lambda: transports.append(_wave(n_subs, workers, conds)), rounds=1
    )
    transport = transports[0]

    print()
    print(format_table(
        "OCBE registration wave, N=%d x %d conditions" % (n_subs, conds),
        ["configuration", "wall s"],
        [["pool x%d, tables on" % workers, wave.mean]],
    ))

    _emit(
        "ocbe_registration_n500", n_subs, conds, workers,
        {"wave": wave}, transport,
    )

    # The tentpole target: a 500-subscriber wave in single-digit
    # seconds on the nightly runner (gmpy2 + real cores); pure-Python
    # single-core machines get a looser absolute backstop.
    bound = 10.0 if BACKEND == "gmpy2" and workers >= 2 else 120.0
    assert wave.mean < bound
