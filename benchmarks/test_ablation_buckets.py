"""Ablation A3: bucketized ACV generation (Section VIII-C).

For a fixed population, generation cost should drop roughly as 1/B^2 with
B buckets (B solves of size (n/B)^3 instead of one n^3 solve), at the
price of a slightly larger total broadcast.
"""

import random

import pytest

from repro.gkm.acv import FAST_FIELD
from repro.gkm.buckets import BucketedAcvBgkm
from repro.workloads.generator import make_css_rows

POPULATION = 256


@pytest.mark.parametrize("bucket_size", [32, 128, POPULATION])
def test_bucketed_generation(benchmark, bucket_size):
    rng = random.Random(bucket_size)
    rows = make_css_rows(POPULATION, rng=rng)
    bucketed = BucketedAcvBgkm(bucket_size=bucket_size, field=FAST_FIELD)
    benchmark.pedantic(
        lambda: bucketed.generate(rows, rng=rng), rounds=2, iterations=1
    )


def test_bucketing_preserves_correctness_and_size_tradeoff():
    rng = random.Random(3)
    rows = make_css_rows(POPULATION, rng=rng)
    flat = BucketedAcvBgkm(bucket_size=POPULATION, field=FAST_FIELD)
    split = BucketedAcvBgkm(bucket_size=32, field=FAST_FIELD)
    key_flat, header_flat = flat.generate(rows, rng=rng)
    key_split, header_split = split.generate(rows, rng=rng)
    assert len(header_flat.buckets) == 1
    assert len(header_split.buckets) == 8
    # Spot-check derivations in different buckets.
    assert split.derive(header_split, rows[0], bucket=0) == key_split
    assert split.derive(header_split, rows[200], bucket=200 // 32) == key_split
