"""Incremental ACV maintenance vs from-scratch re-solve on joins.

The PR-10 tentpole claim: once a publisher's build cache carries a
configuration's :class:`~repro.gkm.acv.AcvFactorization`, a membership
*join* costs one O(m^2) row/column extension plus a recombination --
not the O(m^3) elimination (plus the O(m*n) hash matrix rebuild) the
from-scratch path pays.  This file measures that through the REAL
publish path at N=256: the incremental leg joins a member, calls the
pure-join cache notification and publishes; the scratch leg
(``acv_cache=False``) does the same joins with a full solve each time.

Emits ``BENCH_gkm_incremental_join.json``, tracked by CI's bench-gate
(bytes-only on untuned runners; wall-clock guarded by the assertion
below on every explicit per-push run).  The nightly leg drives the same
workload end-to-end through the load engine's warm-churn scenario.
"""

import random

import pytest

from repro.bench.runner import avg_time, emit_bench_json, format_table
from repro.documents.model import Document
from repro.gkm.acv import FAST_FIELD
from repro.groups import get_group
from repro.policy.acp import parse_policy
from repro.system.idmgr import IdentityManager
from repro.system.idp import IdentityProvider
from repro.system.publisher import Publisher

POPULATION = 256
JOINS = 8
SEED = 0x10C2

DOC = Document.of("doc", {"body": b"bulletin body"})


def _build_publisher(n, acv_cache):
    rng = random.Random(SEED)
    group = get_group("nist-p192")
    idp = IdentityProvider("hr", group, rng=rng)
    idmgr = IdentityManager(group, rng=rng)
    idmgr.trust_idp(idp)
    publisher = Publisher(
        "pub", idmgr.params, idmgr.public_key, gkm_field=FAST_FIELD,
        attribute_bits=8, rng=rng, gkm="dense", acv_cache=acv_cache,
    )
    publisher.add_policy(parse_policy("clr >= 40", ["body"], "doc"))
    table_rng = random.Random(SEED + 1)
    for i in range(n):
        publisher.table.set(
            "pn-%04d" % i, "clr >= 40",
            bytes(table_rng.randrange(256) for _ in range(16)),
        )
    return publisher


def _join_and_publish(publisher, counter, incremental):
    """One join (a brand-new CSS cell) followed by the rekeying publish."""
    index = POPULATION + counter[0]
    counter[0] += 1
    publisher.table.set(
        "pn-%04d" % index, "clr >= 40",
        bytes(random.Random(SEED + 2 + index).randrange(256) for _ in range(16)),
    )
    if incremental:
        publisher._note_acv_join()
    publisher.publish(DOC)


def test_incremental_join_quick():
    measurements = {}
    bytes_counts = {}

    incr = _build_publisher(POPULATION, acv_cache=True)
    incr.publish(DOC)  # warm: seed the factorization for the base rows
    counter = [0]
    incr_time = avg_time(
        lambda: _join_and_publish(incr, counter, incremental=True),
        rounds=JOINS,
    )
    stats = incr.acv_cache_stats()
    # Every join must have taken the extension path, never a re-solve
    # (each publish exact-misses on the grown row set, then extends; the
    # only full elimination is the warm-up's).
    assert stats["extends"] == JOINS, stats
    assert stats["misses"] == JOINS + 1, stats
    bytes_counts["incremental_n%d_package" % POPULATION] = (
        incr.publish(DOC).byte_size()
    )

    scratch = _build_publisher(POPULATION, acv_cache=False)
    scratch.publish(DOC)  # parity with the incremental leg's warm-up
    counter = [0]
    scratch_time = avg_time(
        lambda: _join_and_publish(scratch, counter, incremental=False),
        rounds=JOINS,
    )
    assert scratch.acv_cache_stats()["extends"] == 0
    bytes_counts["scratch_n%d_package" % POPULATION] = (
        scratch.publish(DOC).byte_size()
    )

    measurements["incremental_join_n%d" % POPULATION] = incr_time
    measurements["scratch_join_n%d" % POPULATION] = scratch_time
    speedup = scratch_time.mean / max(incr_time.mean, 1e-9)

    print()
    print(format_table(
        "Per-join publish, incremental extension vs from-scratch solve",
        ["N", "joins", "incremental ms", "scratch ms", "speedup"],
        [[POPULATION, JOINS, incr_time.mean_ms, scratch_time.mean_ms,
          speedup]],
    ))
    path = emit_bench_json(
        "gkm_incremental_join",
        op="join-rekey-publish",
        params={
            "population": POPULATION,
            "joins": JOINS,
            "gkm": "dense",
            "gkm_field": "fast",
            "seed": SEED,
        },
        measurements=measurements,
        bytes_counts=bytes_counts,
        extra={"speedup": speedup},
    )
    print("wrote %s" % path)

    # The acceptance floor: >= 3x over the from-scratch solve at N=256.
    assert incr_time.mean * 3 <= scratch_time.mean, (
        "incremental join %.2fms not 3x faster than scratch %.2fms"
        % (incr_time.mean_ms, scratch_time.mean_ms)
    )


@pytest.mark.slow
def test_warm_churn_end_to_end_n256():
    """The nightly leg: the same claim through the load engine.

    ``warm_churn_scenario(subscribers=256)`` interleaves joins and
    broadcasts on warm publishers, so every post-wave rekey must ride
    the ``acv.update`` path; the from-scratch twin (``acv_cache=False``)
    must deliver byte-identical plaintexts while never extending.
    """
    import dataclasses

    from repro.load.engine import LoadEngine
    from repro.load.scenarios import warm_churn_scenario

    scenario = warm_churn_scenario(subscribers=256, waves=3)

    def run(spec):
        with LoadEngine(spec, driver="memory") as engine:
            engine.run()
            docs = {
                member.user: {
                    name: dict(texts)
                    for name, texts in member.client.documents.items()
                }
                for member in engine.members.values()
                if member.client is not None
            }
            stats = {
                name: service.publisher.acv_cache_stats()
                for name, service in engine.services.items()
            }
            return docs, stats

    warm_docs, warm_stats = run(scenario)
    cold_docs, cold_stats = run(
        dataclasses.replace(
            scenario, name="warm-churn-scratch", acv_cache=False
        ).validate()
    )
    assert warm_docs == cold_docs
    extends = {name: stats["extends"] for name, stats in warm_stats.items()}
    assert all(count > 0 for count in extends.values()), extends
    assert all(
        stats == {"hits": 0, "misses": 0, "extends": 0, "epoch": 0,
                  "entries": 0}
        for stats in cold_stats.values()
    ), cold_stats

    print()
    print("warm-churn n256 extends per publisher: %s" % extends)
