"""The observability overhead gate (nightly slow tier).

Runs the builtin smoke scenario over real TCP sockets twice -- once with
the full observability stack enabled (every WAL fsync timed, every
decrypt counted, every phase sampled, *and* causal span parenting
writing duration records to an ``obs_dir``) and once with all of it
disabled -- and gates the difference:

* wall overhead of instrumentation must stay within 5% (plus a small
  absolute epsilon so a sub-second scenario cannot fail on scheduler
  noise alone);
* the byte-accounting stream must be *identical* frame for frame: with
  no ``--metrics-interval`` push configured, metrics collection rides
  only the engine's phase-boundary probe frames, which the broker
  answers directly and never accounts, and span ids never travel on
  the wire at all (the analyzer infers cross-process edges from hop
  timestamps).  Observability must not change what the bandwidth
  experiments measure.

Emits ``BENCH_obs_overhead.json`` so the on/off ratio is a trend CI can
watch across PRs.
"""

import tempfile

from repro.bench.runner import Measurement, emit_bench_json, format_table
from repro.load import run_scenario, smoke_scenario
from repro.obs.metrics import get_registry

ROUNDS = 2
#: Allowed instrumentation cost: 5% relative plus 50 ms absolute (the
#: smoke scenario settles in about a second; a pure ratio would gate on
#: scheduler jitter, not on instrumentation).
REL_OVERHEAD = 0.05
ABS_EPSILON_S = 0.05


def _run_once(enabled: bool):
    registry = get_registry()
    registry.reset()
    registry.enabled = enabled
    try:
        if enabled:
            # The enabled leg carries the whole stack: metrics registry
            # plus the span-parented obs.jsonl stream the attribution
            # analyzer stitches.
            with tempfile.TemporaryDirectory() as obs_dir:
                return run_scenario(
                    smoke_scenario(), driver="tcp", broker="thread",
                    obs_dir=obs_dir,
                )
        return run_scenario(smoke_scenario(), driver="tcp", broker="thread")
    finally:
        registry.enabled = True
        registry.reset()


def _measure(enabled: bool):
    walls = []
    reports = []
    for _ in range(ROUNDS):
        report = _run_once(enabled)
        walls.append(report.wall_s)
        reports.append(report)
    return (
        Measurement(
            mean=sum(walls) / len(walls),
            minimum=min(walls),
            maximum=max(walls),
            rounds=len(walls),
        ),
        reports,
    )


def test_obs_overhead_within_budget():
    off_m, off_reports = _measure(enabled=False)
    on_m, on_reports = _measure(enabled=True)

    print()
    print(format_table(
        "smoke scenario over TCP, metrics registry on vs off",
        ["registry", "mean ms", "min ms", "max ms"],
        [
            ["off", off_m.mean_ms, off_m.minimum * 1e3, off_m.maximum * 1e3],
            ["on", on_m.mean_ms, on_m.minimum * 1e3, on_m.maximum * 1e3],
        ],
    ))
    path = emit_bench_json(
        "obs_overhead",
        op="obs-on-vs-off",
        params={"scenario": "smoke", "driver": "tcp", "rounds": ROUNDS},
        measurements={"metrics_off": off_m, "metrics_on": on_m},
        extra={
            "overhead_ratio": (
                on_m.minimum / off_m.minimum if off_m.minimum else 0.0
            ),
            "frames_per_phase": [
                p.frames for p in on_reports[0].phases
            ],
        },
    )
    print("wrote %s" % path)

    # Gate on the minimum (the stable estimator under scheduler noise).
    assert on_m.minimum <= off_m.minimum * (1 + REL_OVERHEAD) + ABS_EPSILON_S, (
        "instrumentation overhead %.1f ms exceeds %d%% + %d ms of the "
        "%.1f ms baseline"
        % ((on_m.minimum - off_m.minimum) * 1e3, REL_OVERHEAD * 100,
           ABS_EPSILON_S * 1e3, off_m.minimum * 1e3)
    )

    # With no metrics interval configured, the accounted protocol traffic
    # is bit-for-bit unchanged by observability: same frame counts, same
    # per-kind byte totals, every run, on or off.
    baseline = off_reports[0]
    for report in off_reports[1:] + on_reports:
        assert [p.frames for p in report.phases] == [
            p.frames for p in baseline.phases
        ]
        assert report.bytes_by_kind() == baseline.bytes_by_kind()

    # The enabled run actually collected something: the phase samples
    # carry live counters from every vantage (local registry + broker).
    last = on_reports[0].phases[-1]
    assert last.obs is not None
    assert last.obs["local"]["counters"].get("wal.appends", 0) > 0
    assert last.obs["root"]["counters"].get("broker.deliver", 0) > 0
    # And the disabled run's local registry stayed silent.
    off_last = off_reports[0].phases[-1]
    assert off_last.obs["local"]["counters"] == {}
