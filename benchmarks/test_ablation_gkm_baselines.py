"""Ablation A1: ACV-BGKM against every baseline GKM scheme.

Measures publisher rekey time and subscriber derivation time at a fixed
group size, and asserts the broadcast-size ordering the related-work
section predicts (secure lock's CRT payload largest; naive delivery and
the polynomial/marker schemes linear; LKH smallest in steady state).
"""

import random

import pytest

from repro.gkm import (
    AcPolyGkm,
    AcvBroadcastGkm,
    FAST_FIELD,
    LkhGkm,
    MarkerBroadcastGkm,
    NaiveGkm,
    SecureLockGkm,
)

N_MEMBERS = 64

FACTORIES = {
    "acv-bgkm": lambda: AcvBroadcastGkm(field=FAST_FIELD),
    "marker": MarkerBroadcastGkm,
    "secure-lock": SecureLockGkm,
    "lkh": LkhGkm,
    "ac-polynomial": AcPolyGkm,
    "naive": NaiveGkm,
}


def build(name):
    rng = random.Random(42)
    scheme = FACTORIES[name]()
    secrets = []
    for i in range(N_MEMBERS):
        secret = bytes(rng.randrange(256) for _ in range(16))
        secrets.append(secret)
        scheme.join("m%03d" % i, secret)
    scheme.rekey(rng)  # flush join transients (LKH)
    return scheme, secrets, rng


@pytest.mark.parametrize("name", list(FACTORIES))
def test_rekey(benchmark, name):
    scheme, _, rng = build(name)
    benchmark.pedantic(lambda: scheme.rekey(rng), rounds=3, iterations=1)


@pytest.mark.parametrize("name", list(FACTORIES))
def test_derive(benchmark, name):
    scheme, secrets, rng = build(name)
    key, broadcast = scheme.rekey(rng)
    result = benchmark.pedantic(
        lambda: scheme.derive(secrets[7], broadcast), rounds=3, iterations=1
    )
    assert result == key


def test_broadcast_size_ordering():
    """Steady-state broadcast bytes: LKH constant; others linear in n."""
    sizes = {}
    for name in FACTORIES:
        scheme, _, rng = build(name)
        _, broadcast = scheme.rekey(rng)
        sizes[name] = broadcast.byte_size()
    assert sizes["lkh"] < sizes["naive"]
    assert sizes["lkh"] < sizes["secure-lock"]
    # The CRT lock carries sum(log N_i) ~ 64 * 160 bits, the largest load
    # among the single-value broadcasts.
    assert sizes["secure-lock"] > sizes["ac-polynomial"]
