"""The latency-attribution acceptance gate (nightly slow tier).

Runs the churn scenario -- 64 subscribers, sustained revoke/flap
schedule -- over real TCP sockets behind a 2-deep relay chain with the
span writer and the cProfile window recorder both enabled, then holds
the analyzer to the numbers the harness exists to produce:

* >= 95% of publish traces must stitch fully across every process's
  ``obs.jsonl`` (engine, root broker, both relays);
* the *named* stages -- ``ocbe.build``, ``acv.solve``, ``wal.fsync``,
  ``decrypt``, ``hop.transit`` and friends -- must account for >= 80%
  of the end-to-end publish wall, leaving no anonymous blob where the
  OCBE cost hides;
* the merged profile must attribute the join wave's cost to named
  functions (the elliptic-curve inner loop, in practice), because "the
  join wave is slow" is only actionable as "``_jac_double`` is 40% of
  it".

Emits ``BENCH_obs_attribution.json`` and ``BENCH_profile_ocbe.json``
so both tables become trend artifacts CI watches across PRs.
"""

import tempfile

from repro.load import churn_scenario, run_scenario, with_relays
from repro.obs.analyze import (
    OTHER_STAGE,
    TRANSIT_STAGE,
    _emit_bench as emit_attribution_bench,
    analyze_paths,
    format_attribution,
)
from repro.obs.profile import (
    _emit_bench as emit_profile_bench,
    discover_profiles,
    merge_profiles,
    top_functions,
)

RELAY_DEPTH = 2
MIN_STITCHED = 0.95
MIN_NAMED_SHARE = 0.80
#: The stages the paper's cost model names; everything the analyzer
#: attributes is named, but these are the ones the gate's story is
#: about -- at least some of them must appear with non-zero self time.
EXPECTED_STAGES = ("ocbe.build", "acv.solve", "wal.fsync", "decrypt",
                   TRANSIT_STAGE)


def test_churn_attribution_and_profile():
    scenario = with_relays(churn_scenario(), RELAY_DEPTH)
    with tempfile.TemporaryDirectory() as obs_dir, \
            tempfile.TemporaryDirectory() as profile_dir:
        report = run_scenario(
            scenario, driver="tcp", broker="thread", timeout=600.0,
            obs_dir=obs_dir, profile_dir=profile_dir,
        )
        assert report.wall_s > 0.0

        analysis = analyze_paths([obs_dir])
        table = analysis.publish_attribution()
        print()
        print(format_attribution(
            table, "churn-relay%d publish attribution" % RELAY_DEPTH))
        path = emit_attribution_bench("obs_attribution", analysis, table)
        print("wrote %s" % path)

        # Every process's clock folded into one frame, and nearly every
        # publish trace stitched end to end across it.
        assert analysis.stitched_fraction >= MIN_STITCHED, (
            "only %.1f%% of publish traces stitched fully (problems: %s)"
            % (analysis.stitched_fraction * 100.0,
               sorted({p.kind for p in analysis.problems}))
        )

        # Named stages carry the publish wall: whatever is not in the
        # table is in OTHER_STAGE, so the named share is the coverage.
        named = sum(
            cut["share"] for name, cut in table["stages"].items()
            if name != OTHER_STAGE
        )
        assert named >= MIN_NAMED_SHARE, (
            "named stages cover %.1f%% of the publish wall, need %.0f%% "
            "(stages: %s)"
            % (named * 100.0, MIN_NAMED_SHARE * 100.0,
               sorted(table["stages"]))
        )
        present = [s for s in EXPECTED_STAGES if s in table["stages"]]
        assert len(present) >= 3, (
            "expected the cost-model stages in the table, got %s"
            % sorted(table["stages"])
        )

        # The profiler saw the join wave and can say *which functions*
        # the OCBE wall is made of -- function names only, never values.
        merged = merge_profiles(discover_profiles([profile_dir]))
        assert "join" in merged["stages"], (
            "no join window profiled (stages: %s)" % sorted(merged["stages"])
        )
        top = top_functions(merged, "join", 10)
        assert top, "join window profiled but attributed to no functions"
        for key, calls, tot, _cum in top:
            assert key.count(":") >= 2  # basename:lineno:function, no args
            assert calls >= 1 and tot >= 0.0
        path = emit_profile_bench("profile_ocbe", merged, 10)
        print("wrote %s" % path)
