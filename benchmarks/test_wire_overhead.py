"""Wire bandwidth: measured bytes on the router vs the paper's claims.

The paper's cost model (Section VI-B.3): registration is interactive but
per-(token, condition) -- a GE/LE exchange transmits ``l`` bit
commitments and ``2l`` bit-ciphers, so registration bandwidth is O(l) in
the attribute bit length; broadcast keying material is O(l'N) in the
subscriber population N, and rekeying triggers **zero** unicast traffic.

Unlike the Figure-5 benchmark (which sizes the ACV header object), these
tests measure the *transport*: every byte counted here actually crossed
the router as a serialized frame, so framing, tokens and acks are all
included -- the number an operator would see on the network.
"""

import random


from repro.documents.model import Document
from repro.gkm.acv import FAST_FIELD
from repro.groups import get_group
from repro.policy.acp import parse_policy
from repro.system.idmgr import IdentityManager
from repro.system.idp import IdentityProvider
from repro.system.publisher import Publisher
from repro.system.service import DisseminationService, SubscriberClient, run_until_idle
from repro.system.subscriber import Subscriber
from repro.system.transport import BROADCAST, InMemoryTransport

REGISTRATION_KINDS = (
    "condition-query",
    "condition-list",
    "token+condition-request",
    "registration-ack",
    "ocbe-bit-commitments",
    "ocbe-envelope",
)


def _build_world(n_subs, attribute_bits, seed, value=5, threshold=3):
    rng = random.Random(seed)
    group = get_group("nist-p192")
    idp = IdentityProvider("hr", group, rng=rng)
    idmgr = IdentityManager(group, rng=rng)
    idmgr.trust_idp(idp)
    pub = Publisher(
        "pub", idmgr.params, idmgr.public_key, gkm_field=FAST_FIELD,
        attribute_bits=attribute_bits, rng=rng,
    )
    pub.add_policy(parse_policy("clearance >= %d" % threshold, ["body"], "doc"))
    transport = InMemoryTransport()
    service = DisseminationService(pub, transport)
    clients = []
    for i in range(n_subs):
        name = "user%d" % i
        idp.enroll(name, "clearance", value)
        sub = Subscriber(idmgr.assign_pseudonym(), pub.params, rng=rng)
        token, x, r = idmgr.issue_token(
            sub.nym, idp.assert_attribute(name, "clearance"), rng=rng
        )
        sub.hold_token(token, x, r)
        clients.append(SubscriberClient(sub, transport, pub.name))
    for client in clients:
        client.register_all_attributes()
    run_until_idle([service, *clients])
    return service, clients, transport


def _registration_bytes(transport):
    return sum(
        m.size for m in transport.messages if m.kind in REGISTRATION_KINDS
    )


class TestRegistrationBandwidth:
    def test_linear_in_attribute_bits(self):
        """GE-OCBE traffic is O(l): l commitments out, 2l bit-ciphers back."""
        sizes = {}
        for ell in (8, 16, 32):
            _, _, transport = _build_world(1, ell, seed=ell)
            sizes[ell] = _registration_bytes(transport)
        print("registration bytes per l:", sizes)
        assert sizes[16] > sizes[8]
        assert sizes[32] > sizes[16]
        # Linear, not quadratic: 4x the bits costs clearly less than 8x.
        assert sizes[32] < 8 * sizes[8]
        # And the growth is real: doubling l should add >= 50% traffic.
        assert sizes[32] > 1.5 * sizes[16]

    def test_proportional_to_population(self):
        """Each subscriber pays the same interactive registration cost."""
        sizes = {}
        for n in (2, 6):
            _, _, transport = _build_world(n, 16, seed=100 + n)
            sizes[n] = _registration_bytes(transport)
        per_sub = {n: size / n for n, size in sizes.items()}
        print("registration bytes per subscriber:", per_sub)
        assert abs(per_sub[2] - per_sub[6]) < 0.05 * per_sub[2]


class TestBroadcastBandwidth:
    def test_package_grows_linearly_in_population(self):
        """The multicast frame is O(l'N): headers grow with N, payload
        does not."""
        document = Document.of("doc", {"body": b"payload" * 16})
        sizes = {}
        for n in (4, 8, 16):
            service, clients, transport = _build_world(n, 8, seed=200 + n)
            before = transport.bytes_sent_by(service.name)
            service.publish(document)
            run_until_idle([service, *clients])
            broadcast = [
                m for m in transport.messages
                if m.kind == "broadcast-package" and m.receiver == BROADCAST
            ]
            assert len(broadcast) == 1  # multicast: accounted once, not per Sub
            sizes[n] = broadcast[0].size
            assert transport.bytes_sent_by(service.name) - before == sizes[n]
        print("broadcast frame bytes per N:", sizes)
        assert sizes[8] > sizes[4]
        assert sizes[16] > sizes[8]
        assert sizes[16] < 8 * sizes[4]  # linear-ish, never quadratic

    def test_rekey_is_pure_broadcast(self):
        """Revocation + rekey adds zero subscriber->publisher traffic."""
        document = Document.of("doc", {"body": b"payload" * 16})
        service, clients, transport = _build_world(5, 8, seed=400)
        service.publish(document)
        run_until_idle([service, *clients])
        inbound_before = transport.bytes_received_by(service.name)
        service.publisher.revoke_subscription(clients[0].subscriber.nym)
        service.publish(document)  # the rekey
        run_until_idle([service, *clients])
        assert transport.bytes_received_by(service.name) == inbound_before
        for client in clients[1:]:
            assert client.latest_plaintexts()["body"] == b"payload" * 16
        assert clients[0].latest_plaintexts() == {}
