"""Ablation A2: group-backend cost for the commitment/OCBE layers.

Pedersen commitment and EQ-OCBE composition across the Schnorr subgroup,
the EC backend and the paper's genus-2 Jacobian.  The paper used genus-2
via C++; in pure Python the EC backend wins, which is why it is the
default while genus-2 remains available for faithful runs.
"""

import random

import pytest

from repro.crypto.pedersen import PedersenParams
from repro.groups import get_group
from repro.ocbe.base import OCBESetup
from repro.ocbe.eq import EqOCBESender
from repro.ocbe.predicates import EqPredicate

BACKENDS = ["schnorr-256", "nist-p192", "nist-p256", "paper-genus2"]


@pytest.mark.parametrize("backend", BACKENDS)
def test_pedersen_commit(benchmark, backend):
    rng = random.Random(5)
    params = PedersenParams(get_group(backend))
    benchmark.pedantic(
        lambda: params.commit(123456789, rng=rng), rounds=3, iterations=1
    )


@pytest.mark.parametrize("backend", BACKENDS)
def test_eq_ocbe_compose(benchmark, backend):
    rng = random.Random(6)
    setup = OCBESetup(pedersen=PedersenParams(get_group(backend)))
    commitment, _ = setup.pedersen.commit(28, rng=rng)
    sender = EqOCBESender(setup, EqPredicate(28), rng)
    benchmark.pedantic(
        lambda: sender.compose(commitment, None, b"payload"), rounds=3, iterations=1
    )


@pytest.mark.parametrize("backend", BACKENDS)
def test_scalar_multiplication(benchmark, backend):
    """The primitive everything above reduces to."""
    rng = random.Random(7)
    group = get_group(backend)
    g = group.generator()
    k = group.random_scalar(rng)
    benchmark.pedantic(lambda: g ** k, rounds=3, iterations=1)
