"""Figure 2: GE-OCBE per-step cost vs the bit length l.

Paper trend: all three steps grow linearly in l (about 900 ms total at
l = 40 on their genus-2/C++ stack).  We sweep l on the EC backend (same
O(l) scalar-multiplication structure); the genus-2 point at l = 10 pins
the faithful backend's cost.
"""

import pytest

from repro.ocbe.ge import GeOCBEReceiver, GeOCBESender
from repro.ocbe.predicates import GePredicate

MESSAGE = b"conditional-subscription-secret!"
ELLS = [5, 20, 40]


def _parts(setup, ell, rng):
    predicate = GePredicate(3, ell)
    x = 37 if ell > 5 else 7
    commitment, r = setup.pedersen.commit(x, rng=rng)
    receiver = GeOCBEReceiver(setup, predicate, x, r, commitment, rng)
    aux = receiver.commitment_message()
    sender = GeOCBESender(setup, predicate, rng)
    envelope = sender.compose(commitment, aux, MESSAGE)
    return predicate, x, r, commitment, receiver, aux, sender, envelope


@pytest.mark.parametrize("ell", ELLS)
def test_create_commitments_sub(benchmark, ell, ec_setup, rng):
    predicate, x, r, commitment, *_ = _parts(ec_setup, ell, rng)

    def step():
        receiver = GeOCBEReceiver(ec_setup, predicate, x, r, commitment, rng)
        return receiver.commitment_message()

    benchmark.pedantic(step, rounds=3, iterations=1)


@pytest.mark.parametrize("ell", ELLS)
def test_compose_envelope_pub(benchmark, ell, ec_setup, rng):
    _, _, _, commitment, _, aux, sender, _ = _parts(ec_setup, ell, rng)
    benchmark.pedantic(
        lambda: sender.compose(commitment, aux, MESSAGE), rounds=3, iterations=1
    )


@pytest.mark.parametrize("ell", ELLS)
def test_open_envelope_sub(benchmark, ell, ec_setup, rng):
    _, _, _, _, receiver, _, _, envelope = _parts(ec_setup, ell, rng)
    result = benchmark.pedantic(
        lambda: receiver.open(envelope), rounds=3, iterations=1
    )
    assert result == MESSAGE


def test_genus2_faithful_point(benchmark, genus2_setup, rng):
    """One faithful genus-2 datapoint (l=10) for cross-backend scaling."""
    _, _, _, commitment, _, aux, sender, _ = _parts(genus2_setup, 10, rng)
    benchmark.pedantic(
        lambda: sender.compose(commitment, aux, MESSAGE), rounds=1, iterations=1
    )
