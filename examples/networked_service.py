"""The EHR lifecycle across real OS processes over TCP.

Where ``wire_protocol.py`` runs every entity in one process on the
in-memory router, this example deploys the same system the way the paper
evaluates it: a broker and each entity as its own OS process, exchanging
nothing but serialized frames over loopback TCP.

    broker      python -m repro.net.broker       routes + accounts frames
    idmgr       python -m repro.net.idmgr        issues identity tokens
    carol/erin/dave  python -m repro.net.subscriber   one process per Sub
    publisher   python -m repro.net.publisher    registrations + broadcasts

The orchestrator (this script) only writes the scenario file, supervises
the processes, and reads their JSON reports -- it never touches a live
crypto object, so everything it verifies crossed a socket:

* token issuance -> OCBE registration -> broadcast -> decryption;
* revocation + rekey: carol decrypts broadcast #1, is locked out of
  broadcast #2, while dave's access survives untouched;
* the broker's byte accounting still shows multicast broadcasts
  (accounted once, receiver ``"*"``) and **zero** subscriber->publisher
  bytes for the revoke+rekey step.

Run:  PYTHONPATH=src python examples/networked_service.py
"""

import json
import os
import sys
import tempfile

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
)

import repro  # noqa: E402  (resolve the package once, for child PYTHONPATH)
from repro.net._cli import parse_endpoint  # noqa: E402
from repro.net.bootstrap import write_json  # noqa: E402
from repro.net.runtime import (  # noqa: E402
    ProcessSupervisor,
    wait_for_file,
    wait_until_quiet,
)
from repro.net.transport import TcpTransport  # noqa: E402

SCENARIO = {
    "group": "nist-p192",
    "seed": 2010,
    "attribute_bits": 8,
    "gkm_field": "fast",
    "idp": "hospital-hr",
    "idmgr": "idmgr",
    "publisher": "datacenter",
    "policies": [
        {"condition": "role = doc", "segments": ["Clinical"], "document": "EHR"},
        {"condition": "level >= 50", "segments": ["Billing"], "document": "EHR"},
    ],
    "users": {
        "carol": {"role": "doc", "level": 70},
        "erin": {"role": "nur", "level": 40},
        "dave": {"role": "doc"},
    },
    "documents": [
        {
            "name": "EHR",
            "segments": {
                "Clinical": "MRI unremarkable.",
                "Billing": "Acct 99-1234.",
            },
        }
    ],
    "revoke": ["carol"],
}


def main() -> None:
    # Children must find the repro package regardless of their cwd.
    env = dict(os.environ)
    src = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")

    with tempfile.TemporaryDirectory(prefix="repro-net-") as workdir, \
            ProcessSupervisor() as supervisor:
        scenario_path = os.path.join(workdir, "scenario.json")
        bundle_path = os.path.join(workdir, "bundle.json")
        port_file = os.path.join(workdir, "broker.port")
        write_json(scenario_path, SCENARIO)

        # --- the broker: every other process only knows this address -----
        supervisor.spawn_module(
            "repro.net.broker", "--port", "0", "--port-file", port_file,
            name="broker", env=env,
        )
        broker_at = wait_for_file(port_file).strip()
        print("broker up at %s" % broker_at)

        common = ["--broker", broker_at, "--scenario", scenario_path,
                  "--bundle", bundle_path]

        # --- one process per entity ---------------------------------------
        supervisor.spawn_module("repro.net.idmgr", *common, name="idmgr", env=env)
        reports = {}
        for user in sorted(SCENARIO["users"]):
            reports[user] = os.path.join(workdir, "%s.json" % user)
            supervisor.spawn_module(
                "repro.net.subscriber", *common,
                "--user", user, "--expect-broadcasts", "2",
                "--report", reports[user],
                name="sub-%s" % user, env=env,
            )
        publisher_report = os.path.join(workdir, "publisher.json")
        supervisor.spawn_module(
            "repro.net.publisher", *common, "--report", publisher_report,
            name="publisher", env=env,
        )
        print("spawned idmgr, %d subscribers, publisher"
              % len(SCENARIO["users"]))

        # --- the lifecycle runs entirely between those processes ----------
        assert supervisor.wait("publisher", timeout=300) == 0, "publisher failed"
        for user, path in reports.items():
            wait_for_file(path, timeout=60)
        supervisor.assert_alive()

        with open(publisher_report, encoding="utf-8") as handle:
            pub_report = json.load(handle)
        subs = {}
        for user, path in reports.items():
            with open(path, encoding="utf-8") as handle:
                subs[user] = json.load(handle)

        # --- what each subscriber could read, per broadcast ---------------
        print("\ndecryption outcomes (broadcast #1 / #2 = after revoking carol):")
        for user in sorted(subs):
            rounds = [sorted(b["segments"]) for b in subs[user]["broadcasts"]]
            print("    %-6s %s / %s" % (user, rounds[0] or "[]", rounds[1] or "[]"))

        carol, erin, dave = (subs[u]["broadcasts"] for u in ("carol", "erin", "dave"))
        assert sorted(carol[0]["segments"]) == ["Billing", "Clinical"]
        assert carol[0]["segments"]["Clinical"] == "MRI unremarkable."
        assert carol[1]["segments"] == {}, "revoked carol still decrypts!"
        assert erin[0]["segments"] == {} and erin[1]["segments"] == {}
        assert sorted(dave[0]["segments"]) == ["Clinical"]
        assert sorted(dave[1]["segments"]) == ["Clinical"], "rekey broke dave"

        # Registration outcomes never left the subscriber processes; the
        # publisher's table is shape-identical for all (privacy), which
        # its report confirms via the expected cell count.
        assert (
            pub_report["table_cells_registered"]
            == pub_report["expected_registrations"]
        )
        assert (
            pub_report["table_cells_after_revoke"]
            < pub_report["table_cells_registered"]
        )

        # --- the bandwidth claims, measured on the broker ------------------
        assert (
            pub_report["inbound_bytes_after_rekey"]
            == pub_report["inbound_bytes_before_rekey"]
        ), "rekey drew subscriber->publisher traffic"
        sizes = pub_report["broadcast_frame_sizes"]
        assert len(sizes) == 2, "broadcasts must be multicast, accounted once"
        print("\nrekey: zero unicast; broadcast frames of %s bytes (multicast, "
              "headers O(l'N) in the %d subscribers)" % (sizes, len(subs)))

        host, port = parse_endpoint(broker_at)
        with TcpTransport(host, port) as observer:
            observer.register("observer")
            wait_until_quiet(observer)
            snapshot = observer.snapshot()
            print("\nwire traffic by message kind (count, bytes):")
            for kind, count in sorted(snapshot.kinds_count().items()):
                total = sum(m.size for m in snapshot.messages if m.kind == kind)
                print("    %-24s %3d msgs  %6d B" % (kind, count, total))
            observer.request_broker_shutdown()
        assert supervisor.wait("broker", timeout=10) == 0

    print("\nfull lifecycle verified across %d OS processes over TCP"
          % (2 + len(SCENARIO["users"]) + 1))


if __name__ == "__main__":
    main()
