"""The wire-protocol API: entities as endpoints exchanging only bytes.

Where ``quickstart.py`` wires live objects together through the
compatibility helpers, this example runs the system the way a deployment
would: IdMgr, Publisher and Subscribers are independent endpoints on a
message router, and every interaction -- token issuance, registration,
broadcast -- crosses the transport as a serialized, versioned frame.

Run:  PYTHONPATH=src python examples/wire_protocol.py
"""

import random

from repro.documents.model import Document
from repro.gkm.acv import FAST_FIELD
from repro.groups import get_group
from repro.policy.acp import parse_policy
from repro.system import (
    DisseminationService,
    IdentityManager,
    IdentityManagerEndpoint,
    IdentityProvider,
    InMemoryTransport,
    Publisher,
    Subscriber,
    SubscriberClient,
    run_until_idle,
)


def main():
    rng = random.Random(2010)
    group = get_group("nist-p192")

    # --- the fixed infrastructure: IdP, IdMgr, Publisher -----------------
    idp = IdentityProvider("hospital-hr", group, rng=rng)
    idmgr = IdentityManager(group, rng=rng)
    idmgr.trust_idp(idp)
    publisher = Publisher(
        "datacenter", idmgr.params, idmgr.public_key,
        gkm_field=FAST_FIELD, attribute_bits=16, rng=rng,
    )
    publisher.add_policy(parse_policy("role = doc", ["Clinical"], "EHR"))
    publisher.add_policy(parse_policy("level >= 50", ["Billing"], "EHR"))

    # --- one router, one endpoint per entity -----------------------------
    transport = InMemoryTransport()
    service = DisseminationService(publisher, transport)
    idmgr_ep = IdentityManagerEndpoint(idmgr, transport)

    clients = {}
    for name, attrs in (
        ("carol", {"role": "doc", "level": 70}),
        ("erin", {"role": "nur", "level": 40}),
    ):
        for attr, value in attrs.items():
            idp.enroll(name, attr, value)
        sub = Subscriber(idmgr.assign_pseudonym(), publisher.params, rng=rng)
        clients[name] = SubscriberClient(sub, transport, publisher.name)

    endpoints = [service, idmgr_ep, *clients.values()]

    # --- token issuance + registration, all over the wire ----------------
    for name, client in clients.items():
        for attr in ("role", "level"):
            client.request_token(attr, assertion=idp.assert_attribute(name, attr))
    run_until_idle(endpoints)
    for client in clients.values():
        client.register_all_attributes()
    run_until_idle(endpoints)

    for name, client in clients.items():
        print("%s registration outcomes (known only to %s):" % (name, name))
        for attribute, outcomes in sorted(client.results.items()):
            for key, extracted in sorted(outcomes.items()):
                print("    %-14s -> %s" % (key, "CSS" if extracted else "no CSS"))

    # --- broadcast: one multicast frame, per-subscriber decryption -------
    document = Document.of(
        "EHR", {"Clinical": b"MRI unremarkable.", "Billing": b"Acct 99-1234."}
    )
    service.publish(document)
    run_until_idle(endpoints)
    for name, client in clients.items():
        print("%s decrypted: %s" % (name, sorted(client.latest_plaintexts())))

    # --- revocation: the next broadcast IS the rekey ---------------------
    publisher.revoke_subscription(clients["carol"].subscriber.nym)
    service.publish(document)
    run_until_idle(endpoints)
    print("after revoking carol:")
    for name, client in clients.items():
        print("    %s decrypted: %s" % (name, sorted(client.latest_plaintexts())))

    # --- what actually crossed the wire ----------------------------------
    print("wire traffic by message kind (count, bytes):")
    totals = {}
    for record in transport.messages:
        count, size = totals.get(record.kind, (0, 0))
        totals[record.kind] = (count + 1, size + record.size)
    for kind, (count, size) in sorted(totals.items()):
        print("    %-24s %3d msgs  %6d B" % (kind, count, size))


if __name__ == "__main__":
    main()
