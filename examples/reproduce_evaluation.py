"""Reproduce the paper's evaluation section (Table II, Figures 2-6).

Prints the same series the paper plots.  Default parameters are scaled
for a quick pure-Python run (~2 minutes); pass ``--paper`` for the
paper-scale sweep (N up to 1000; expect tens of minutes) whose results
are recorded in EXPERIMENTS.md.

Run:  python examples/reproduce_evaluation.py [--paper]
"""

import argparse
import random

from repro.bench.figures import fig2, fig3, fig4, fig5, fig6, table2
from repro.gkm.acv import FAST_FIELD, PAPER_FIELD


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--paper", action="store_true",
        help="run at the paper's scale (N up to 1000; slow)",
    )
    args = parser.parse_args()

    rng = random.Random(2010)

    print("#" * 72)
    table2(group_name="paper-genus2", rounds=3, verbose=True, rng=rng)

    print("#" * 72)
    if args.paper:
        fig2(ells=(5, 10, 15, 20, 25, 30, 35, 40), rounds=3, verbose=True, rng=rng)
    else:
        fig2(ells=(5, 10, 20, 40), rounds=1, verbose=True, rng=rng)

    sweep = (100, 200, 300, 400, 500, 600, 700, 800, 900, 1000) if args.paper \
        else (100, 200, 300, 400, 500)

    print("#" * 72)
    fig3(max_users=sweep, field=FAST_FIELD, rounds=1, verbose=True, rng=rng)

    print("#" * 72)
    fig4(max_users=sweep, field=FAST_FIELD, rounds=3, verbose=True, rng=rng)

    print("#" * 72)
    fig5(max_users=sweep, field=PAPER_FIELD, verbose=True, rng=rng)

    print("#" * 72)
    conds = tuple(range(1, 11)) if args.paper else (1, 2, 4, 6, 8, 10)
    n = 500 if args.paper else 250
    fig6(conditions=conds, max_users=n, field=FAST_FIELD, rounds=1,
         verbose=True, rng=rng)


if __name__ == "__main__":
    main()
