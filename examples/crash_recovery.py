"""Kill -9 the publisher; watch the system resume with zero unicast.

The durability story of ``repro/store/`` as a deployment you can watch:
the EHR scenario runs across real OS processes (broker, IdMgr, one
process per subscriber, publisher), every entity journaling to its own
``--data-dir``.  Mid-lifecycle -- registrations served, nothing broadcast
yet -- the publisher is SIGKILLed.  No shutdown handler runs; the only
survivors are its write-ahead log and snapshot.

A second publisher process then starts from the same data directory:

* it recovers the CSS table and GKM epoch, skips the registration wait;
* its first act is the rekey-on-recovery broadcast -- fresh ACV headers
  over the recovered table;
* the still-running subscriber processes decrypt it with the CSSs they
  extracted *before* the crash: no token request, no OCBE exchange, not
  one unicast frame anywhere in the recovery window (the broker's
  accounting proves it);
* revocation still works on the recovered table: carol is revoked and
  locked out of broadcast #2 while dave keeps reading.

Run:  PYTHONPATH=src python examples/crash_recovery.py
"""

import json
import os
import signal
import sys
import tempfile
import time

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
)

import repro  # noqa: E402
from repro.net._cli import parse_endpoint  # noqa: E402
from repro.net.bootstrap import expected_registrations, write_json  # noqa: E402
from repro.net.runtime import (  # noqa: E402
    ProcessSupervisor,
    wait_for_file,
    wait_until_quiet,
)
from repro.net.transport import TcpTransport  # noqa: E402

SCENARIO = {
    "group": "nist-p192",
    "seed": 41,
    "attribute_bits": 8,
    "gkm_field": "fast",
    "idp": "hospital-hr",
    "idmgr": "idmgr",
    "publisher": "datacenter",
    "policies": [
        {"condition": "role = doc", "segments": ["Clinical"], "document": "EHR"},
        {"condition": "level >= 50", "segments": ["Billing"], "document": "EHR"},
    ],
    "users": {
        "carol": {"role": "doc", "level": 70},
        "dave": {"role": "doc"},
    },
    "documents": [
        {
            "name": "EHR",
            "segments": {
                "Clinical": "MRI unremarkable.",
                "Billing": "Acct 99-1234.",
            },
        }
    ],
    "revoke": ["carol"],
}

REGISTRATION_KINDS = {
    "token-request", "token-grant", "condition-query", "condition-list",
    "token+condition-request", "registration-ack", "ocbe-bit-commitments",
    "ocbe-envelope",
}


def main() -> None:
    env = dict(os.environ)
    src = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")

    with tempfile.TemporaryDirectory(prefix="repro-crash-") as workdir, \
            ProcessSupervisor() as supervisor:
        scenario_path = os.path.join(workdir, "scenario.json")
        bundle_path = os.path.join(workdir, "bundle.json")
        port_file = os.path.join(workdir, "broker.port")
        data_dir = lambda name: os.path.join(workdir, "state", name)  # noqa: E731
        write_json(scenario_path, SCENARIO)

        supervisor.spawn_module(
            "repro.net.broker", "--port", "0", "--port-file", port_file,
            name="broker", env=env,
        )
        broker_at = wait_for_file(port_file).strip()
        host, port = parse_endpoint(broker_at)
        print("broker up at %s" % broker_at)

        common = ["--broker", broker_at, "--scenario", scenario_path,
                  "--bundle", bundle_path]
        supervisor.spawn_module(
            "repro.net.idmgr", *common, "--data-dir", data_dir("idmgr"),
            name="idmgr", env=env,
        )
        reports = {}
        for user in sorted(SCENARIO["users"]):
            reports[user] = os.path.join(workdir, "%s.json" % user)
            supervisor.spawn_module(
                "repro.net.subscriber", *common,
                "--user", user, "--expect-broadcasts", "2",
                "--data-dir", data_dir("sub-%s" % user),
                "--report", reports[user],
                name="sub-%s" % user, env=env,
            )

        # --- publisher #1: serves registrations, then dies hard -----------
        publisher1 = supervisor.spawn_module(
            "repro.net.publisher", *common, "--serve",
            "--data-dir", data_dir("publisher"),
            name="publisher-1", env=env,
        )
        expected = expected_registrations(SCENARIO)
        with TcpTransport(host, port) as observer:
            observer.register("observer")
            # Quiet alone is not enough (the broker is also quiet before
            # anyone speaks): wait until every OCBE envelope went out AND
            # the system settled.
            deadline = time.monotonic() + 120
            while True:
                wait_until_quiet(observer, timeout=120)
                envelopes = observer.snapshot().kinds_count().get(
                    "ocbe-envelope", 0
                )
                if envelopes >= expected:
                    break
                if time.monotonic() > deadline:
                    raise SystemExit(
                        "registrations stalled: %d/%d envelopes"
                        % (envelopes, expected)
                    )
                time.sleep(0.1)
            print("all %d registrations served and journaled" % expected)

            publisher1.kill()  # SIGKILL: no shutdown path runs
            publisher1.wait(10)
            assert publisher1.returncode == -signal.SIGKILL
            print("publisher SIGKILLed mid-lifecycle (nothing broadcast yet)")
            accounted_before = len(observer.snapshot().messages)

            # --- publisher #2: same data dir, recovers and resumes --------
            publisher_report = os.path.join(workdir, "publisher.json")
            publisher2 = supervisor.spawn_module(
                "repro.net.publisher", *common,
                "--data-dir", data_dir("publisher"),
                "--report", publisher_report,
                name="publisher-2", env=env,
            )
            # The observer receives the multicasts too; keep draining it or
            # its unacked deliveries would hold global quiescence hostage.
            deadline = time.monotonic() + 300
            while publisher2.poll() is None:
                observer.poll("observer")
                observer.flush_acks()
                if time.monotonic() > deadline:
                    raise SystemExit("publisher-2 did not finish")
                time.sleep(0.05)
            assert publisher2.returncode == 0, supervisor.output("publisher-2")
            for user, path in reports.items():
                wait_for_file(path, timeout=60)
            # (assert_alive would flag publisher-1's deliberate -9 here;
            # the reports above already prove everyone else finished.)
            observer.poll("observer")

            # --- what crossed the wire during recovery --------------------
            wait_until_quiet(observer, timeout=60)
            window = observer.snapshot().messages[accounted_before:]
            by_kind = {}
            for message in window:
                by_kind[message.kind] = by_kind.get(message.kind, 0) + 1
            print("\nrecovery-window traffic: %s" % by_kind)
            assert not set(by_kind) & REGISTRATION_KINDS, \
                "recovery drew registration traffic!"
            assert all(m.receiver == "*" for m in window), \
                "recovery drew unicast frames!"
            observer.request_broker_shutdown()

        with open(publisher_report, encoding="utf-8") as handle:
            pub_report = json.load(handle)
        assert pub_report["recovered_cells"] == expected
        assert pub_report["inbound_bytes_after_rekey"] == \
            pub_report["inbound_bytes_before_rekey"]

        subs = {}
        for user, path in reports.items():
            with open(path, encoding="utf-8") as handle:
                subs[user] = json.load(handle)
        print("\ndecryption outcomes (broadcast #1 / #2 = after revoking carol):")
        for user in sorted(subs):
            rounds = [sorted(b["segments"]) for b in subs[user]["broadcasts"]]
            print("    %-6s %s / %s" % (user, rounds[0] or "[]", rounds[1] or "[]"))
        carol, dave = subs["carol"]["broadcasts"], subs["dave"]["broadcasts"]
        assert sorted(carol[0]["segments"]) == ["Billing", "Clinical"]
        assert carol[1]["segments"] == {}, "revoked carol still decrypts!"
        assert sorted(dave[0]["segments"]) == ["Clinical"]
        assert sorted(dave[1]["segments"]) == ["Clinical"]

    print("\npublisher crashed and recovered: table intact, subscribers "
          "resumed on the rekey-on-recovery broadcast, revocation on the "
          "recovered table held, zero unicast throughout")


if __name__ == "__main__":
    main()
