"""Subscription lifecycle: join, credential update, revocation, secrecy.

Demonstrates the four rekey triggers of Section V-C (new subscription,
credential update, credential revocation, subscription revocation) and
verifies forward/backward secrecy at the system level.

Run:  python examples/subscription_lifecycle.py
"""

import random

from repro import Document, IdentityManager, IdentityProvider, Publisher, Subscriber
from repro import default_group, parse_policy
from repro.gkm.acv import FAST_FIELD
from repro.system import register_all_attributes, register_for_attribute


def enroll_subscriber(idp, idmgr, pub, name, attributes, rng):
    for attr, value in attributes.items():
        idp.enroll(name, attr, value)
    nym = idmgr.assign_pseudonym()
    sub = Subscriber(nym, pub.params, rng=rng)
    for attr in attributes:
        token, x, r = idmgr.issue_token(
            nym, idp.assert_attribute(name, attr), rng=rng
        )
        sub.hold_token(token, x, r)
    register_all_attributes(pub, sub)
    return sub


def main() -> None:
    rng = random.Random(99)
    group = default_group()
    idp = IdentityProvider("corp-hr", group, rng=rng)
    idmgr = IdentityManager(group, rng=rng)
    idmgr.trust_idp(idp)
    pub = Publisher(
        "newsroom", idmgr.params, idmgr.public_key, gkm_field=FAST_FIELD,
        attribute_bits=16, rng=rng,
    )
    pub.add_policy(parse_policy("tier >= 2", ["premium"], "daily"))
    doc = Document.of("daily", {"premium": b"premium analysis content",
                                "teaser": b"public teaser"})

    # -- Day 1: one premium subscriber ------------------------------------
    ann = enroll_subscriber(idp, idmgr, pub, "ann", {"tier": 3}, rng)
    day1 = pub.publish(doc, rng=rng)
    print("day 1: ann ->", sorted(ann.receive(day1)))

    # -- Day 2: ben joins (backward secrecy: day 1 stays sealed) ----------
    ben = enroll_subscriber(idp, idmgr, pub, "ben", {"tier": 2}, rng)
    day2 = pub.publish(doc, rng=rng)
    print("day 2: ben  ->", sorted(ben.receive(day2)))
    print("       ben on day-1 broadcast ->", sorted(ben.receive(day1)),
          "(backward secrecy)")

    # -- Day 3: ann downgraded -- credential update -----------------------
    # HR reissues her tier token with value 1; she re-registers, which
    # overwrites her CSSs at the publisher.
    idp.enroll("ann", "tier", 1)
    token, x, r = idmgr.issue_token(ann.nym, idp.assert_attribute("ann", "tier"),
                                    rng=rng)
    ann.hold_token(token, x, r)
    register_for_attribute(pub, ann, "tier")
    day3 = pub.publish(doc, rng=rng)
    print("day 3: ann (downgraded to tier 1) ->",
          sorted(ann.receive(day3)) or "(nothing)")
    print("       ben ->", sorted(ben.receive(day3)))

    # -- Day 4: ben revoked entirely -- forward secrecy --------------------
    pub.revoke_subscription(ben.nym)
    day4 = pub.publish(doc, rng=rng)
    print("day 4: ben (revoked) ->", sorted(ben.receive(day4)) or "(nothing)",
          "(forward secrecy)")
    print("       ben can still read day 2:", sorted(ben.receive(day2)))

    assert ben.receive(day4) == {} and ann.receive(day3) == {}
    print("OK: all four lifecycle transitions behaved as Section V-C specifies.")


if __name__ == "__main__":
    main()
