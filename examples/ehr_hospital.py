"""The paper's Example 4: a hospital broadcasting EHR.xml to its staff.

Shows the policy configurations (Pc1..Pc6), the CSS table (Table I
shape), the per-role decrypted views -- including the level-58 nurse who
satisfies neither acp3 nor acp4 -- and a revocation rekey.

Run:  python examples/ehr_hospital.py
"""

import random

from repro.workloads import build_hospital


def main() -> None:
    hospital = build_hospital(rng=random.Random(2010))
    pub = hospital.publisher

    print("=== Policies ===")
    for i, policy in enumerate(pub.policies, start=1):
        print("acp%d = %s" % (i, policy.describe()))

    print("\n=== Policy configurations (the paper's Pc1..Pc6) ===")
    plan = pub.plan(hospital.document)
    for config_id, config, subdocs in plan.groups:
        print("%-4s %-30s <-> %s" % (config_id, ", ".join(subdocs),
                                     config.describe() or "{}"))

    print("\n=== CSS table T at the publisher (cf. Table I) ===")
    print(pub.table.render())

    print("\n=== Broadcast ===")
    package = pub.publish(hospital.document)
    print("package: %d bytes, %d keying-header bytes"
          % (package.byte_size(), package.header_overhead()))

    print("\n=== What each employee can read ===")
    for name, sub in hospital.subscribers.items():
        role = hospital.employees[name]["role"]
        level = hospital.employees[name]["level"]
        got = sorted(sub.receive(package))
        print("%-7s (role=%s, level=%d): %s"
              % (name, role, level, ", ".join(got) or "(nothing)"))

    print("\n=== Revocation: carol (the doctor) loses her subscription ===")
    pub.revoke_subscription(hospital.nyms["carol"])
    package2 = pub.publish(hospital.document)
    carol_after = hospital.subscribers["carol"].receive(package2)
    dave_after = sorted(hospital.subscribers["dave"].receive(package2))
    print("carol now decrypts: %s" % (sorted(carol_after) or "(nothing)"))
    print("dave still decrypts: %s" % ", ".join(dave_after))
    print("note: no subscriber contacted the publisher for the rekey --")
    print("      the new keys come from the fresh broadcast headers alone.")


if __name__ == "__main__":
    main()
