"""Privacy audit: compare the publisher's complete view across two worlds.

World A: the subscriber's hidden clearance is 7 (satisfies the policy).
World B: the same subscriber's clearance is 1 (does not).

Everything the publisher observes -- registration requests, OCBE message
kinds and sizes, the CSS table shape -- is shown side by side; the two
transcripts are indistinguishable, which is the paper's headline privacy
property.

Run:  python examples/privacy_audit.py
"""

import random

from repro import Document, IdentityManager, IdentityProvider, Publisher, Subscriber
from repro import default_group, parse_policy
from repro.gkm.acv import FAST_FIELD
from repro.system import InMemoryTransport, register_all_attributes


def build_world(clearance, seed):
    rng = random.Random(seed)
    group = default_group()
    idp = IdentityProvider("agency", group, rng=rng)
    idmgr = IdentityManager(group, rng=rng)
    idmgr.trust_idp(idp)
    pub = Publisher(
        "archive", idmgr.params, idmgr.public_key, gkm_field=FAST_FIELD,
        attribute_bits=8, rng=rng,
    )
    pub.add_policy(parse_policy("clearance >= 5", ["dossier"], "records"))
    pub.add_policy(parse_policy("clearance < 5", ["summary"], "records"))
    idp.enroll("agent", "clearance", clearance)
    nym = idmgr.assign_pseudonym()
    sub = Subscriber(nym, pub.params, rng=rng)
    token, x, r = idmgr.issue_token(
        nym, idp.assert_attribute("agent", "clearance"), rng=rng
    )
    sub.hold_token(token, x, r)
    transport = InMemoryTransport()
    register_all_attributes(pub, sub, transport)
    return pub, sub, transport


def main() -> None:
    pub_a, sub_a, t_a = build_world(clearance=7, seed=123)
    pub_b, sub_b, t_b = build_world(clearance=1, seed=123)

    print("=== Publisher's transcript, world A (clearance=7) ===")
    for message in t_a.messages:
        print("  %-28s %5d bytes  (%s)" % (message.kind, message.size, message.note))
    print("=== Publisher's transcript, world B (clearance=1) ===")
    for message in t_b.messages:
        print("  %-28s %5d bytes  (%s)" % (message.kind, message.size, message.note))

    same = [(m.kind, m.size, m.note) for m in t_a.messages] == [
        (m.kind, m.size, m.note) for m in t_b.messages
    ]
    print("\ntranscripts identical in kind/size/condition:", same)

    print("\n=== CSS table shapes ===")
    print("world A:\n%s" % pub_a.table.render())
    print("world B:\n%s" % pub_b.table.render())
    print("(cells differ only in the random CSS values the publisher minted;")
    print(" both worlds have a CSS for BOTH mutually exclusive conditions.)")

    doc = Document.of("records", {"dossier": b"secret dossier",
                                  "summary": b"public summary"})
    got_a = sorted(sub_a.receive(pub_a.publish(doc)))
    got_b = sorted(sub_b.receive(pub_b.publish(doc)))
    print("\nonly the subscribers themselves learn the outcome:")
    print("  world A subscriber decrypts:", got_a)
    print("  world B subscriber decrypts:", got_b)

    assert same
    assert got_a == ["dossier"] and got_b == ["summary"]
    print("OK: access control enforced, publisher oblivious.")


if __name__ == "__main__":
    main()
