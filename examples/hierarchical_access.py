"""Section VIII-A: dominance relations induce hierarchical access control.

If configuration Pc_i dominates Pc_j (Pc_i is a subset of Pc_j), every
subscriber able to derive Pc_i's key satisfies some policy of Pc_j too and
can derive that key with the same CSSs.  In Example 4, Pc4 = {acp3, acp4}
(PhysicalExams/Plan) dominates Pc3 = {acp3, acp4, acp6} (Medication) and
Pc5 = {acp3, acp4, acp5} (LabRecords): reading an exam implies being able
to read the medication list and lab records.

Run:  python examples/hierarchical_access.py
"""

import random

from repro.policy.configuration import dominance_order
from repro.workloads import build_hospital


def main() -> None:
    hospital = build_hospital(rng=random.Random(81))
    pub = hospital.publisher
    plan = pub.plan(hospital.document)

    names = {config: config_id for config_id, config, _ in plan.groups}
    print("=== Strict dominance pairs among the EHR configurations ===")
    pairs = dominance_order([config for _, config, _ in plan.groups])
    for upper, lower in sorted(
        pairs, key=lambda p: (names[p[0]], names[p[1]])
    ):
        if upper.is_empty:
            continue  # the empty configuration trivially dominates all
        print("  %s dominates %s" % (names[upper], names[lower]))

    print("\n=== Verified on a live broadcast ===")
    package = pub.publish(hospital.document)
    for name in ("carol", "dave"):
        sub = hospital.subscribers[name]
        got = set(sub.receive(package))
        if "PhysicalExams" in got:  # can derive Pc4's key...
            assert {"Medication", "LabRecords"} <= got  # ...then Pc3/Pc5 too
            print("  %s reads PhysicalExams => also Medication and "
                  "LabRecords (dominance honoured)" % name)

    print("\nconsequence for the publisher (the paper's optimisation")
    print("hook): rows computed for a dominating configuration can be")
    print("reused when building dominated configurations' matrices.")


if __name__ == "__main__":
    main()
