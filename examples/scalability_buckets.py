"""Section VIII-C: bucketized ACV generation for large populations.

Splits a large subscriber population into buckets, generates one ACV per
bucket carrying the SAME document key, and compares generation time and
broadcast size against the single-matrix approach.

Run:  python examples/scalability_buckets.py
"""

import random
import time

from repro.gkm.acv import FAST_FIELD
from repro.gkm.buckets import BucketedAcvBgkm
from repro.workloads.generator import make_css_rows


def main() -> None:
    rng = random.Random(88)
    population = 600
    rows = make_css_rows(population, rng=rng)

    print("population: %d subscribers, field: %d-bit prime"
          % (population, FAST_FIELD.bit_length))
    print("%-12s %-14s %-14s %-10s" % ("bucket size", "generation (s)",
                                       "broadcast (KB)", "buckets"))
    for bucket_size in (population, 300, 150, 75):
        scheme = BucketedAcvBgkm(bucket_size=bucket_size, field=FAST_FIELD)
        start = time.perf_counter()
        key, header = scheme.generate(rows, rng=rng)
        elapsed = time.perf_counter() - start
        # verify three spread-out subscribers
        for index in (0, population // 2, population - 1):
            assert scheme.derive(header, rows[index],
                                 bucket=index // bucket_size) == key
        print("%-12d %-14.2f %-14.1f %-10d"
              % (bucket_size, elapsed, header.byte_size() / 1024,
                 len(header.buckets)))

    print("\nsmaller buckets: much faster generation (B solves of size")
    print("(n/B)^3), slightly larger broadcast -- the paper's exact")
    print("trade-off, and each bucket can be computed in parallel.")


if __name__ == "__main__":
    main()
