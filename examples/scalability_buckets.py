"""Section VIII-C: bucketized ACV generation for large populations.

Splits a large subscriber population into buckets, generates one ACV per
bucket carrying the SAME document key, and compares generation time and
broadcast size against the single-matrix approach -- first on the raw
scheme, then through the real ``Publisher.publish`` pipeline via the
``gkm="bucketed"`` strategy knob (including the ACV build cache that
makes an unchanged-membership re-publish nearly free).

Run:  python examples/scalability_buckets.py
"""

import random
import time

from repro.documents.model import Document
from repro.gkm.acv import FAST_FIELD
from repro.gkm.buckets import BucketedAcvBgkm, BucketedHeader
from repro.groups import get_group
from repro.policy.acp import parse_policy
from repro.system.idmgr import IdentityManager
from repro.system.idp import IdentityProvider
from repro.system.publisher import Publisher
from repro.workloads.generator import make_css_rows


def main() -> None:
    rng = random.Random(88)
    population = 600
    rows = make_css_rows(population, rng=rng)

    print("population: %d subscribers, field: %d-bit prime"
          % (population, FAST_FIELD.bit_length))
    print("%-12s %-14s %-14s %-10s" % ("bucket size", "generation (s)",
                                       "broadcast (KB)", "buckets"))
    for bucket_size in (population, 300, 150, 75):
        scheme = BucketedAcvBgkm(bucket_size=bucket_size, field=FAST_FIELD)
        start = time.perf_counter()
        key, header = scheme.generate(rows, rng=rng)
        elapsed = time.perf_counter() - start
        # verify three spread-out subscribers
        for index in (0, population // 2, population - 1):
            assert scheme.derive(header, rows[index],
                                 bucket=index // bucket_size) == key
        print("%-12d %-14.2f %-14.1f %-10d"
              % (bucket_size, elapsed, header.byte_size() / 1024,
                 len(header.buckets)))

    print("\nsmaller buckets: much faster generation (B solves of size")
    print("(n/B)^3), slightly larger broadcast -- the paper's exact")
    print("trade-off, and each bucket can be computed in parallel.")

    publish_path_demo()


def _publisher(gkm: str, n: int = 256) -> Publisher:
    rng = random.Random(0xB0CA)
    group = get_group("nist-p192")
    idp = IdentityProvider("hr", group, rng=rng)
    idmgr = IdentityManager(group, rng=rng)
    idmgr.trust_idp(idp)
    publisher = Publisher(
        "pub", idmgr.params, idmgr.public_key, gkm_field=FAST_FIELD,
        attribute_bits=8, rng=rng, gkm=gkm,
    )
    publisher.add_policy(parse_policy("clr >= 40", ["body"], "doc"))
    table_rng = random.Random(0xB0CB)
    for i in range(n):
        publisher.table.set(
            "pn-%04d" % i, "clr >= 40",
            bytes(table_rng.randrange(256) for _ in range(16)),
        )
    return publisher


def publish_path_demo(n: int = 256) -> None:
    """The same trade-off through the real dissemination pipeline."""
    doc = Document.of("doc", {"body": b"bulletin body"})
    print("\n-- publish path: Publisher(gkm=...) at N=%d ------------" % n)
    for gkm in ("dense", "bucketed"):
        publisher = _publisher(gkm, n)
        start = time.perf_counter()
        package = publisher.publish(doc)
        cold = time.perf_counter() - start
        start = time.perf_counter()
        publisher.publish(doc)  # unchanged table: ACV build cache hit
        warm = time.perf_counter() - start
        acv = package.headers[0].acv
        buckets = len(acv.buckets) if isinstance(acv, BucketedHeader) else 1
        print("%-9s cold publish %7.1f ms, cached re-publish %5.1f ms, "
              "%d bucket(s), %d bytes"
              % (gkm, cold * 1e3, warm * 1e3, buckets, package.byte_size()))
        assert publisher.acv_cache_stats()["hits"] >= 1
    print("the strategy knob (and the (rows, epoch) ACV cache) ship the")
    print("paper's bucketing straight through Publisher.publish: same")
    print("subscribers, same CSSs, same plaintexts -- proven equivalent")
    print("by tests/gkm/test_differential.py.")


if __name__ == "__main__":
    main()
