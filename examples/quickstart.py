"""Quickstart: build a minimal system by hand and broadcast one document.

Run:  python examples/quickstart.py
"""

import random

from repro import (
    Document,
    IdentityManager,
    IdentityProvider,
    Publisher,
    Subscriber,
    default_group,
    parse_policy,
)
from repro.gkm.acv import FAST_FIELD
from repro.system import register_all_attributes


def main() -> None:
    rng = random.Random(7)
    group = default_group()

    # --- Identity infrastructure -----------------------------------------
    idp = IdentityProvider("hr", group, rng=rng)
    idmgr = IdentityManager(group, rng=rng)
    idmgr.trust_idp(idp)

    # --- Publisher with one policy (the paper's Example 2) ---------------
    pub = Publisher(
        "pub", idmgr.params, idmgr.public_key, gkm_field=FAST_FIELD,
        attribute_bits=16, rng=rng,
    )
    pub.add_policy(
        parse_policy(
            'level >= 58 AND role = "nurse"',
            ["physical_exam", "treatment_plan"],
            "EHR.xml",
        )
    )

    # --- A subscriber obtains identity tokens ----------------------------
    idp.enroll("bob", "role", "nurse")
    idp.enroll("bob", "level", 61)
    nym = idmgr.assign_pseudonym()
    bob = Subscriber(nym, pub.params, rng=rng)
    for attr in ("role", "level"):
        token, x, r = idmgr.issue_token(
            nym, idp.assert_attribute("bob", attr), rng=rng
        )
        bob.hold_token(token, x, r)

    # --- Oblivious registration: pub learns nothing about bob ------------
    outcome = register_all_attributes(pub, bob)
    print("registration outcome (known only to bob):", outcome)

    # --- Broadcast --------------------------------------------------------
    doc = Document.of(
        "EHR.xml",
        {
            "physical_exam": b"BP 118/76; BMI 23.4",
            "treatment_plan": b"rest and hydration",
            "billing": b"account 99-1234 (nobody is authorized)",
        },
    )
    package = pub.publish(doc, rng=rng)
    print("broadcast package: %d bytes (%d header overhead)"
          % (package.byte_size(), package.header_overhead()))

    # --- Reception ----------------------------------------------------------
    plaintexts = bob.receive(package)
    for name in doc.subdocument_names():
        status = plaintexts.get(name, b"<no access>")
        print("%-15s -> %s" % (name, status))

    assert set(plaintexts) == {"physical_exam", "treatment_plan"}
    print("OK: bob read exactly the portions his hidden attributes allow.")


if __name__ == "__main__":
    main()
